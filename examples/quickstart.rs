//! Quickstart: anonymize a basket dataset end-to-end and inspect the
//! release.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cahd::prelude::*;

fn main() {
    // 1. Get data. Real deployments load a `.dat` file
    //    (`cahd::data::io::read_dat_file`); here we synthesize a
    //    BMS-WebView-1-like sample: ~3k transactions over 497 items.
    let data = cahd::data::profiles::bms1_like(0.05, 42);
    let stats = DatasetStats::compute(&data);
    println!("dataset: {stats}");

    // 2. Declare which items are privacy-sensitive. `select_random` mimics
    //    the paper's evaluation setup; real deployments pass an explicit
    //    item list to `SensitiveSet::new`.
    let mut rng = rand_seed(7);
    let sensitive =
        SensitiveSet::select_random(&data, 10, 20, &mut rng).expect("enough low-support items");
    println!("sensitive items: {:?}", sensitive.items());

    // 3. Anonymize with privacy degree p = 10: no transaction can be linked
    //    to a sensitive item with probability above 1/10.
    let p = 10;
    let result = Anonymizer::new(AnonymizerConfig::with_privacy_degree(p))
        .anonymize(&data, &sensitive)
        .expect("feasible: sensitive supports are bounded");

    println!(
        "anonymized into {} groups in {:.3}s (RCM {:.3}s + grouping {:.3}s)",
        result.published.n_groups(),
        result.total_time.as_secs_f64(),
        result.rcm_time.as_secs_f64(),
        result.cahd_stats.elapsed.as_secs_f64(),
    );
    if let Some(band) = &result.band {
        println!(
            "band reorganization: mean row span {:.1} -> {:.1}",
            band.before.mean_row_span, band.after.mean_row_span
        );
    }

    // 4. Verify the release independently of the algorithm.
    verify_published(&data, &sensitive, &result.published, p).expect("release is valid");
    println!(
        "verified: privacy degree {:?} (required {p})",
        result.published.privacy_degree()
    );

    // 5. Inspect one group: exact QID rows, summarized sensitive items.
    let group = result
        .published
        .groups
        .iter()
        .find(|g| !g.sensitive_counts.is_empty())
        .expect("some group has sensitive items");
    println!(
        "example group: {} members, sensitive summary {:?}, first QID row {:?}",
        group.size(),
        group.sensitive_counts,
        group.qid_rows[0]
    );

    // 6. Measure utility: how well can an analyst reconstruct the
    //    distribution of a sensitive item over QID patterns?
    let queries = generate_workload_seeded(&data, &sensitive, 4, 100, 99);
    let summary = evaluate_workload(&data, &result.published, &queries);
    println!(
        "reconstruction error over {} queries: mean KL {:.4}, median {:.4}",
        summary.n_queries, summary.mean_kl, summary.median_kl
    );
}
