//! The analyst's workflow the paper motivates: mine patterns from the
//! *published* data and compare with ground truth.
//!
//! Pipeline: synthesize a basket log -> anonymize with CAHD (p = 10) ->
//! mine frequent itemsets and association rules on both sides -> report
//! what survived exactly (QID-only patterns) and how accurate the
//! estimated sensitive rules are.
//!
//! ```sh
//! cargo run --release --example mining_workflow
//! ```

use cahd::eval::mining::{published_qid_support, top_k_itemsets};
use cahd::eval::rules::{confidence_error, mine_rules, published_confidence};
use cahd::prelude::*;

fn main() {
    let data = cahd::data::profiles::bms1_like(0.1, 2024);
    println!("log: {}", DatasetStats::compute(&data));

    let mut rng = rand_seed(3);
    let sensitive = SensitiveSet::select_random(&data, 10, 20, &mut rng).unwrap();
    let p = 10;
    let release = Anonymizer::new(AnonymizerConfig::with_privacy_degree(p))
        .anonymize(&data, &sensitive)
        .unwrap()
        .published;
    verify_published(&data, &sensitive, &release, p).unwrap();
    println!("anonymized into {} groups at p = {p}\n", release.n_groups());

    // --- Frequent itemsets: QID-only patterns are preserved verbatim.
    let top = top_k_itemsets(&data, 15, 2, 3);
    println!("top itemsets (len >= 2): support original = published?");
    let mut preserved = 0;
    for set in &top {
        if set.items.iter().any(|&i| sensitive.contains(i)) {
            continue;
        }
        let pub_support = published_qid_support(&release, &set.items);
        let ok = pub_support == set.support;
        preserved += ok as usize;
        println!(
            "  {:?}: {} = {} {}",
            set.items,
            set.support,
            pub_support,
            if ok { "(exact)" } else { "(MISMATCH!)" }
        );
    }
    println!("-> {preserved} QID itemsets preserved exactly\n");

    // --- Association rules: QID rules exact; sensitive-consequent rules
    // estimated with bounded error.
    let min_support = (data.n_transactions() / 200).max(3);
    let rules = mine_rules(&data, min_support, 0.3, 3);
    println!(
        "mined {} rules (support >= {min_support}, confidence >= 0.3)",
        rules.len()
    );

    let qid_rules: Vec<_> = rules
        .iter()
        .filter(|r| {
            !sensitive.contains(r.consequent)
                && r.antecedent.iter().all(|&i| !sensitive.contains(i))
        })
        .cloned()
        .collect();
    let sens_rules: Vec<_> = rules
        .iter()
        .filter(|r| {
            sensitive.contains(r.consequent) && r.antecedent.iter().all(|&i| !sensitive.contains(i))
        })
        .cloned()
        .collect();
    if let Some(err) = confidence_error(&data, &release, &qid_rules) {
        println!(
            "QID-only rules ({}): mean confidence error {err:.6}",
            qid_rules.len()
        );
    }
    match confidence_error(&data, &release, &sens_rules) {
        Some(err) => println!(
            "sensitive-consequent rules ({}): mean confidence error {err:.4}",
            sens_rules.len()
        ),
        None => println!("no sensitive-consequent rules above thresholds"),
    }

    // --- A single rule, end to end, with the analytic uncertainty the
    // release supports (hypergeometric CI on the joint count).
    if let Some(rule) = sens_rules.first() {
        let est_conf = published_confidence(&release, rule).unwrap();
        let ce = cahd::eval::estimate_count(&release, rule.consequent, &rule.antecedent);
        let (lo, hi) = ce.interval(1.96);
        println!(
            "\nexample sensitive rule {:?} -> {}: actual confidence {:.3}, \
             estimated {:.3}; joint count {} estimated as {:.2} (95% CI {:.2}..{:.2})",
            rule.antecedent,
            rule.consequent,
            rule.confidence,
            est_conf,
            rule.support,
            ce.estimate,
            lo,
            hi
        );
    }
}
