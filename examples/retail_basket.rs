//! Retail scenario from the paper's introduction: a retailer publishes
//! purchase transactions so a third party can mine item correlations,
//! without exposing who bought the sensitive products.
//!
//! Demonstrates:
//! * an explicit sensitive-item catalog (not random selection),
//! * the motivating re-identification attack (Eve knows a few of Claire's
//!   innocuous purchases) before anonymization,
//! * that association rules among QID items survive publishing exactly,
//!   while sensitive associations are bounded by `1/p`.
//!
//! ```sh
//! cargo run --release --example retail_basket
//! ```

use cahd::prelude::*;

/// A small human-readable product catalog. The first `SENSITIVE_FROM` ids
/// are ordinary products; the rest are sensitive (pharmacy-style).
const CATALOG: &[&str] = &[
    "wine",
    "meat",
    "cream",
    "strawberries",
    "bread",
    "milk",
    "cheese",
    "coffee",
    "tea",
    "chocolate",
    "pasta",
    "tomatoes",
    "olive-oil",
    "butter",
    "eggs",
    "rice",
    "apples",
    "bananas",
    "salmon",
    "beer",
    // sensitive products
    "pregnancy-test",
    "hiv-test",
    "antidepressant",
    "viagra",
];
const SENSITIVE_FROM: usize = 20;

fn main() {
    // Build a synthetic purchase log over the catalog: QID items follow a
    // Quest-style basket model; each sensitive product is bought by ~1% of
    // customers, independently.
    let qid_part = cahd::data::QuestGenerator::new(
        cahd::data::QuestConfig {
            n_transactions: 150,
            n_items: SENSITIVE_FROM,
            avg_txn_len: 5.0,
            n_patterns: 40,
            avg_pattern_len: 3.0,
            ..Default::default()
        },
        13,
    )
    .generate();
    let mut rng = rand_seed(17);
    let rows: Vec<Vec<ItemId>> = (0..qid_part.n_transactions())
        .map(|t| {
            let mut row = qid_part.transaction(t).to_vec();
            for s in SENSITIVE_FROM..CATALOG.len() {
                if rand::Rng::gen_bool(&mut rng, 0.02) {
                    row.push(s as ItemId);
                }
            }
            row
        })
        .collect();
    let data = TransactionSet::from_rows(&rows, CATALOG.len());
    let sensitive = SensitiveSet::new(
        (SENSITIVE_FROM as ItemId..CATALOG.len() as ItemId).collect(),
        CATALOG.len(),
    );
    println!("{}", DatasetStats::compute(&data));

    // --- The attack the paper opens with: how often do 2-3 known innocuous
    // purchases pin down a unique transaction?
    for k in [2usize, 3] {
        let mut rng = rand_seed(100 + k as u64);
        if let Some(pr) = reidentification_probability(&data, Some(&sensitive), k, 10_000, &mut rng)
        {
            println!(
                "attacker knowing {k} ordinary purchases re-identifies a basket with p = {:.1}%",
                pr * 100.0
            );
        }
    }

    // --- Anonymize.
    let p = 10;
    let result = Anonymizer::new(AnonymizerConfig::with_privacy_degree(p))
        .anonymize(&data, &sensitive)
        .expect("2% sensitive incidence keeps p = 10 feasible");
    verify_published(&data, &sensitive, &result.published, p).unwrap();
    println!(
        "published {} groups; overall privacy degree {:?}",
        result.published.n_groups(),
        result.published.privacy_degree()
    );

    // --- QID-only patterns survive exactly: the support of any ordinary
    // item pair is identical before and after, because QID rows are
    // published verbatim. Demonstrate with the most frequent pair.
    let (a, b, support_before) = {
        let mut best = (0u32, 1u32, 0usize);
        for a in 0..SENSITIVE_FROM as ItemId {
            for b in (a + 1)..SENSITIVE_FROM as ItemId {
                let s = data
                    .iter()
                    .filter(|t| t.contains(&a) && t.contains(&b))
                    .count();
                if s > best.2 {
                    best = (a, b, s);
                }
            }
        }
        best
    };
    let support_after: usize = result
        .published
        .groups
        .iter()
        .flat_map(|g| g.qid_rows.iter())
        .filter(|r| r.contains(&a) && r.contains(&b))
        .count();
    println!(
        "support({{{}, {}}}): original {support_before}, published {support_after} (lossless)",
        CATALOG[a as usize], CATALOG[b as usize]
    );

    // --- Sensitive correlations are only estimable, with error bounded by
    // the group structure; compare actual vs reconstructed for one rule.
    let preg = SENSITIVE_FROM as ItemId; // pregnancy-test
    let query = GroupByQuery::new(preg, vec![2, 3]); // cream, strawberries
    let act = cahd::eval::actual_pdf(&data, &query).expect("item occurs");
    let est = cahd::eval::estimated_pdf(&result.published, &query).expect("item published");
    println!(
        "P(cell | {}) over (cream, strawberries): actual {:?}",
        CATALOG[preg as usize],
        act.iter().map(|v| format!("{v:.2}")).collect::<Vec<_>>()
    );
    println!(
        "                                     estimated {:?} (KL {:.4})",
        est.iter().map(|v| format!("{v:.2}")).collect::<Vec<_>>(),
        kl_divergence(&act, &est, cahd::eval::DEFAULT_SMOOTHING)
    );

    // --- And the privacy guarantee the analyst-side estimate rests on:
    // within every group, each sensitive item is at most 1/p likely per
    // member.
    let worst = result
        .published
        .groups
        .iter()
        .filter_map(cahd::prelude::AnonymizedGroup::privacy_degree)
        .min()
        .unwrap();
    println!("worst-case association probability: 1/{worst} (required <= 1/{p})");
}
