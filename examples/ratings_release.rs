//! Non-binary (ratings) data — the paper's future-work direction made
//! concrete.
//!
//! The paper's conclusion points at the Netflix Prize release (movie
//! ratings of 500k subscribers, 80% re-identifiable from 6 known reviews)
//! as the reason transaction anonymization matters beyond binary baskets.
//! This example builds a Netflix-like ratings matrix (1-5 stars), shows the
//! re-identification risk, and publishes it with the weighted CAHD
//! pipeline: exact (item, rating) QID rows, sensitive titles summarized per
//! group.
//!
//! ```sh
//! cargo run --release --example ratings_release
//! ```

use cahd::core::weighted::{anonymize_weighted, verify_weighted, WeightedSimilarity};
use cahd::prelude::*;
use cahd_data::WeightedTransactionSet;

fn main() {
    // --- Build a ratings matrix: 4,000 users over 600 titles. Ratings
    // come from the Quest basket model (which titles a user watches) plus
    // a per-user bias (how generously they rate).
    let pattern = cahd::data::QuestGenerator::new(
        cahd::data::QuestConfig {
            n_transactions: 4_000,
            n_items: 600,
            avg_txn_len: 8.0,
            n_patterns: 80,
            avg_pattern_len: 5.0,
            correlation: 0.6,
            ..Default::default()
        },
        77,
    )
    .generate();
    let mut rng = rand_seed(9);
    let rows: Vec<Vec<(ItemId, u32)>> = (0..pattern.n_transactions())
        .map(|t| {
            let bias = rand::Rng::gen_range(&mut rng, 0..2);
            pattern
                .transaction(t)
                .iter()
                .map(|&title| {
                    let stars = 1 + bias + rand::Rng::gen_range(&mut rng, 0..4).min(3);
                    (title, stars.min(5))
                })
                .collect()
        })
        .collect();
    let ratings = WeightedTransactionSet::from_rows(&rows, 600);
    println!(
        "ratings matrix: {} users, {} titles, {} ratings",
        ratings.n_transactions(),
        ratings.n_items(),
        ratings.pattern().nnz()
    );

    // --- The Narayanan–Shmatikov risk: knowing a handful of titles someone
    // rated re-identifies them (counts ignored — presence alone suffices).
    let binary = ratings.to_binary();
    for k in [2usize, 4, 6] {
        let mut rng = rand_seed(k as u64);
        if let Some(p) = reidentification_probability(&binary, None, k, 10_000, &mut rng) {
            println!(
                "attacker knows {k} rated titles: re-identification {:5.1}%",
                p * 100.0
            );
        }
    }

    // --- Declare "sensitive" titles (say, titles revealing health or
    // political leanings) and anonymize with p = 8.
    let mut rng = rand_seed(31);
    let sensitive = SensitiveSet::select_random(&binary, 8, 10, &mut rng).unwrap();
    let p = 8;
    let (release, stats) = anonymize_weighted(
        &ratings,
        &sensitive,
        &CahdConfig::new(p),
        WeightedSimilarity::MinCount,
    )
    .expect("support-bounded sensitive titles keep p feasible");
    verify_weighted(&ratings, &sensitive, &release, p).expect("release is valid");
    println!(
        "published {} groups ({} regular, leftover {}), all verified at p = {p}",
        release.groups.len(),
        stats.groups_formed,
        stats.fallback_group_size,
    );

    // --- Ratings on non-sensitive titles are published verbatim: the mean
    // star rating of any ordinary title is exactly preserved.
    let title = ratings
        .item_quantities()
        .iter()
        .enumerate()
        .filter(|&(i, _)| !sensitive.contains(i as u32))
        .max_by_key(|&(_, &q)| q)
        .map(|(i, _)| i as u32)
        .unwrap();
    let mean_orig = mean_rating_original(&ratings, title);
    let mean_pub = mean_rating_published(&release, title);
    println!(
        "most-rated title {title}: mean {mean_orig:.3} stars original, {mean_pub:.3} published (lossless)"
    );

    // --- Sensitive titles: only group-level frequencies are released, so
    // the association of any user with a sensitive title is <= 1/p.
    let worst = release
        .groups
        .iter()
        .flat_map(|g| {
            g.sensitive_counts
                .iter()
                .map(move |&(_, f)| f as f64 / g.size() as f64)
        })
        .fold(0.0f64, f64::max);
    println!(
        "worst sensitive association probability: {worst:.3} (bound 1/{p} = {:.3})",
        1.0 / p as f64
    );
}

fn mean_rating_original(data: &WeightedTransactionSet, title: u32) -> f64 {
    let mut sum = 0u64;
    let mut n = 0u64;
    for t in 0..data.n_transactions() {
        let c = data.count_of(t, title);
        if c > 0 {
            sum += c as u64;
            n += 1;
        }
    }
    sum as f64 / n.max(1) as f64
}

fn mean_rating_published(release: &cahd::core::weighted::WeightedPublished, title: u32) -> f64 {
    let mut sum = 0u64;
    let mut n = 0u64;
    for g in &release.groups {
        for row in &g.qid_rows {
            if let Ok(k) = row.binary_search_by_key(&title, |&(i, _)| i) {
                sum += row[k].1 as u64;
                n += 1;
            }
        }
    }
    sum as f64 / n.max(1) as f64
}
