//! Streaming anonymization of an append-only purchase log.
//!
//! A retailer releases anonymized batches continuously instead of
//! re-processing the full history. Demonstrates the
//! [`StreamingAnonymizer`]: batch releases, burst carry-over when a
//! sensitive item spikes, and suppression as the last-resort repair for a
//! final infeasible flush.
//!
//! ```sh
//! cargo run --release --example streaming_log
//! ```

use cahd::prelude::*;

fn main() {
    let p = 5;
    let sensitive = SensitiveSet::new(vec![98, 99], 100);
    let mut stream = StreamingAnonymizer::new(
        AnonymizerConfig::with_privacy_degree(p),
        sensitive.clone(),
        500, // transactions per release batch
    );

    // Simulate a day of traffic: mostly ordinary baskets, plus a burst of
    // sensitive purchases mid-day (a flu outbreak, say).
    let mut rng = rand_seed(11);
    let mut chunks = Vec::new();
    for minute in 0..2_000u32 {
        let mut basket: Vec<ItemId> = (0..3)
            .map(|_| rand::Rng::gen_range(&mut rng, 0..98))
            .collect();
        let burst = (700..1000).contains(&minute);
        let p_sensitive = if burst { 0.45 } else { 0.02 };
        if rand::Rng::gen_bool(&mut rng, p_sensitive) {
            // The burst concentrates on one item — exactly the case that
            // makes a single batch infeasible.
            basket.push(if burst || minute % 2 == 0 { 98 } else { 99 });
        }
        match stream.push(basket) {
            Ok(Some(chunk)) => {
                println!(
                    "released batch {}: {} transactions in {} groups (degree {:?})",
                    chunks.len() + 1,
                    chunk.stream_ids.len(),
                    chunk.published.n_groups(),
                    chunk.published.privacy_degree(),
                );
                chunks.push(chunk);
            }
            Ok(None) => {}
            Err(e) => {
                println!("batch failed: {e}");
                return;
            }
        }
    }
    println!(
        "burst handling: {} sensitive transactions deferred to later batches",
        stream.carried_over()
    );

    // Final flush; if the tail is infeasible, suppress and retry manually.
    match stream.finish() {
        Ok(Some(chunk)) => {
            println!(
                "final batch: {} transactions in {} groups",
                chunk.stream_ids.len(),
                chunk.published.n_groups()
            );
            chunks.push(chunk);
        }
        Ok(None) => {}
        Err(CahdError::Infeasible {
            item, support, n, ..
        }) => {
            println!(
                "final batch infeasible (item {item}: {support} of {n}); \
                 a real deployment would suppress via enforce_feasibility"
            );
        }
        Err(e) => println!("final batch failed: {e}"),
    }

    let total: usize = chunks.iter().map(|c| c.stream_ids.len()).sum();
    let audited =
        chunks
            .iter()
            .map(|c| privacy_report(&c.published))
            .fold((usize::MAX, 0.0f64), |acc, r| {
                (
                    acc.0.min(r.min_privacy_degree.unwrap_or(usize::MAX)),
                    acc.1.max(r.max_association_probability),
                )
            });
    println!(
        "\nstream summary: {total} transactions released in {} chunks; \
         worst privacy degree {}, worst association probability {:.3} (bound {:.3})",
        chunks.len(),
        audited.0,
        audited.1,
        1.0 / p as f64
    );
}
