//! A tour of the band-matrix machinery (the paper's Section III): how
//! Reverse Cuthill-McKee turns a scattered sparse transaction matrix into a
//! band matrix, and why that matters for anonymization.
//!
//! Prints ASCII density plots (the paper's Fig. 6) for three correlation
//! levels and reports the band metrics.
//!
//! ```sh
//! cargo run --release --example band_matrix_tour
//! ```

use cahd::prelude::*;
use cahd::sparse::viz::DensityGrid;

fn main() {
    for corr in [0.1, 0.5, 0.9] {
        // 1000 x 1000 Quest data with ~20 items per transaction, exactly
        // like the paper's Fig. 6 workload.
        let data = cahd::data::profiles::fig6_like(corr, 2026);
        let red = reduce_unsymmetric(data.matrix(), UnsymOptions::default());

        println!("=== correlation {corr:.1} ===");
        println!(
            "mean row span: {:>6.1} -> {:>6.1}   ({:.1}x tighter)",
            red.before.mean_row_span,
            red.after.mean_row_span,
            red.before.mean_row_span / red.after.mean_row_span.max(1e-9),
        );
        println!(
            "rcm time: {:.3}s ({} A*A^T)",
            red.rcm_time.as_secs_f64(),
            if red.used_explicit_aat {
                "explicit"
            } else {
                "implicit"
            },
        );

        let id_r = Permutation::identity(data.n_transactions());
        let id_c = Permutation::identity(data.n_items());
        let before = DensityGrid::new(data.matrix(), &id_r, &id_c, 20, 40);
        let after = DensityGrid::new(data.matrix(), &red.row_perm, &red.col_perm, 20, 40);

        // Render before and after side by side.
        let left: Vec<&str> = before_lines(&before);
        let right: Vec<&str> = before_lines(&after);
        println!("{:^40}   {:^40}", "original", "after RCM");
        for (l, r) in left.iter().zip(&right) {
            println!("{l}   {r}");
        }
        println!();

        fn before_lines(g: &DensityGrid) -> Vec<&str> {
            // Leak is fine in a short-lived example; keeps lifetimes simple.
            Box::leak(g.to_ascii().into_boxed_str()).lines().collect()
        }
    }

    // Why the band matters: neighboring rows share items, so CAHD groups
    // of adjacent rows have high QID overlap and low reconstruction error.
    let data = cahd::data::profiles::fig6_like(0.9, 2026);
    let red = reduce_unsymmetric(data.matrix(), UnsymOptions::default());
    let permuted = data.permute(&red.row_perm);
    let mut overlap_band = 0usize;
    let mut overlap_orig = 0usize;
    let n = data.n_transactions();
    for t in 0..n - 1 {
        overlap_band +=
            CsrMatrix::intersection_len(permuted.transaction(t), permuted.transaction(t + 1));
        overlap_orig += CsrMatrix::intersection_len(data.transaction(t), data.transaction(t + 1));
    }
    println!(
        "avg items shared by consecutive transactions: original {:.2}, band order {:.2}",
        overlap_orig as f64 / (n - 1) as f64,
        overlap_band as f64 / (n - 1) as f64,
    );
}
