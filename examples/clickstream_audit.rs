//! Clickstream scenario (BMS-WebView-2-like): a high-dimensional, sparse
//! web log where the item universe is large (3,340 pages) and transactions
//! are short — the regime where generalization-based anonymization
//! collapses and CAHD's band-matrix approach shines.
//!
//! Runs a privacy audit: re-identification risk of the raw log (Table II
//! style), then compares the utility of CAHD against PermMondrian and
//! random (Anatomy-style) grouping at several privacy degrees.
//!
//! ```sh
//! cargo run --release --example clickstream_audit
//! ```

use cahd::prelude::*;

fn main() {
    let data = cahd::data::profiles::bms2_like(0.1, 99);
    println!("clickstream log: {}", DatasetStats::compute(&data));

    // --- Step 1: audit the raw log (this is what the paper's Table II
    // quantifies — a handful of known pages re-identifies a visitor).
    println!("\nraw-log re-identification risk:");
    for k in 1..=4 {
        let mut rng = rand_seed(k as u64);
        if let Some(p) = reidentification_probability(&data, None, k, 10_000, &mut rng) {
            println!("  attacker knows {k} page(s): {:5.1}%", p * 100.0);
        }
    }

    // --- Step 2: declare sensitive pages (e.g. health-condition related)
    // and anonymize at increasing privacy degrees.
    let mut rng = rand_seed(5);
    let sensitive =
        SensitiveSet::select_random(&data, 10, 20, &mut rng).expect("eligible items exist");

    println!("\nutility comparison (mean KL over 100 queries, r = 4):");
    println!("{:>4}  {:>8}  {:>8}  {:>8}", "p", "CAHD", "PM", "Random");
    let band = reduce_unsymmetric(data.matrix(), UnsymOptions::default());
    let permuted = data.permute(&band.row_perm);
    for p in [5usize, 10, 20] {
        // CAHD on the band-ordered data.
        let (cahd_pub, _) = cahd(&permuted, &sensitive, &CahdConfig::new(p)).unwrap();
        // Baselines on the raw data.
        let (pm_pub, _) = perm_mondrian(&data, &sensitive, &PmConfig::new(p)).unwrap();
        let rnd_pub = random_grouping(&data, &sensitive, p, 31).unwrap();

        let queries = generate_workload_seeded(&data, &sensitive, 4, 100, 1000 + p as u64);
        // Reconstruction only reads QID rows + summaries, so evaluating the
        // CAHD release against the permuted original is equivalent.
        let kl_cahd = evaluate_workload(&permuted, &cahd_pub, &queries).mean_kl;
        let kl_pm = evaluate_workload(&data, &pm_pub, &queries).mean_kl;
        let kl_rnd = evaluate_workload(&data, &rnd_pub, &queries).mean_kl;
        println!("{p:>4}  {kl_cahd:>8.4}  {kl_pm:>8.4}  {kl_rnd:>8.4}");
    }

    // --- Step 3: export the chosen release. Groups carry exact QID rows
    // and per-group sensitive summaries; `strip_members` removes the
    // internal back-references before the data leaves the building.
    let (release, stats) = cahd(&permuted, &sensitive, &CahdConfig::new(10)).unwrap();
    let release = release.strip_members();
    println!(
        "\nfinal release at p = 10: {} groups ({} regular + leftover of {}), {} rollbacks",
        release.n_groups(),
        stats.groups_formed,
        stats.fallback_group_size,
        stats.rollbacks,
    );
    let out = std::env::temp_dir().join("cahd_clickstream_release.dat");
    // Publish the QID rows in plain .dat alongside the group summaries.
    let qid_rows: Vec<Vec<ItemId>> = release
        .groups
        .iter()
        .flat_map(|g| g.qid_rows.iter().cloned())
        .collect();
    let qid_data = TransactionSet::from_rows(&qid_rows, release.n_items);
    cahd::data::io::write_dat_file(&out, &qid_data).expect("writable temp dir");
    println!("QID rows written to {}", out.display());
}
