//! # CAHD — anonymization of sparse high-dimensional transaction data
//!
//! A complete Rust implementation of *"On the Anonymization of Sparse
//! High-Dimensional Data"* (Ghinita, Tao, Kalnis — ICDE 2008): the CAHD
//! algorithm, the band-matrix (Reverse Cuthill-McKee) data reorganization
//! it builds on, the PermMondrian and Anatomy-style baselines it is
//! evaluated against, and the full utility-evaluation methodology
//! (reconstruction queries, KL divergence, re-identification risk).
//!
//! This crate is an umbrella that re-exports the workspace members:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`sparse`] | `cahd-sparse` | CSR binary matrices, graphs, `A x A^T`, bandwidth metrics, visualization |
//! | [`rcm`] | `cahd-rcm` | Reverse Cuthill-McKee, pseudo-peripheral roots, unsymmetric reduction |
//! | [`data`] | `cahd-data` | transaction model, `.dat` I/O, Quest-style generator, BMS-like profiles |
//! | [`core`] | `cahd-core` | privacy model, the CAHD heuristic, pipeline, verifier |
//! | [`baselines`] | `cahd-baselines` | PermMondrian and random (Anatomy-style) grouping |
//! | [`eval`] | `cahd-eval` | group-by queries, PDF reconstruction, KL divergence, re-identification |
//!
//! # Quick start
//!
//! ```
//! use cahd::prelude::*;
//!
//! // Synthesize a small basket dataset (or load one with
//! // `cahd::data::io::read_dat_file`).
//! let data = cahd::data::profiles::bms1_like(0.01, 42);
//!
//! // Pick 5 sensitive items (bounded support keeps p = 10 feasible).
//! let mut rng = rand_seed(7);
//! let sensitive = SensitiveSet::select_random(&data, 5, 10, &mut rng).unwrap();
//!
//! // Anonymize with privacy degree 10: band-matrix reorganization + CAHD.
//! let result = Anonymizer::new(AnonymizerConfig::with_privacy_degree(10))
//!     .anonymize(&data, &sensitive)
//!     .unwrap();
//!
//! // Independently verify the release.
//! verify_published(&data, &sensitive, &result.published, 10).unwrap();
//! assert!(result.published.satisfies(10));
//! ```

pub use cahd_baselines as baselines;
pub use cahd_core as core;
pub use cahd_data as data;
pub use cahd_eval as eval;
pub use cahd_rcm as rcm;
pub use cahd_sparse as sparse;

/// The most commonly used types and functions, re-exported flat.
pub mod prelude {
    pub use cahd_baselines::{perm_mondrian, random_grouping, PmConfig};
    // `cahd_core::cahd` names both a module and a function; import only the
    // function (value namespace) so the glob doesn't shadow the `cahd`
    // crate itself.
    pub use cahd_core::cahd::cahd;
    pub use cahd_core::{
        cahd_sharded, enforce_feasibility, privacy_report, verify_published, AnonymizedGroup,
        Anonymizer, AnonymizerConfig, CahdConfig, CahdError, ParallelConfig, PrivacyReport,
        PublishedDataset, ShardedStats, StreamingAnonymizer, SuppressionReport,
    };
    pub use cahd_data::{DatasetStats, ItemId, SensitiveSet, TransactionSet};
    pub use cahd_eval::{
        estimate_count, evaluate_workload, generate_workload_seeded, kl_divergence, mine_rules,
        reidentification_probability, GroupByQuery,
    };
    pub use cahd_rcm::{reduce_unsymmetric, reverse_cuthill_mckee, UnsymOptions};
    pub use cahd_sparse::{CsrMatrix, Permutation};

    /// A seeded standard RNG — saves examples/doc-tests an explicit `rand`
    /// dependency dance.
    pub fn rand_seed(seed: u64) -> impl rand::Rng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(seed)
    }
}
