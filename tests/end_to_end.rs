//! Cross-crate integration tests: the complete anonymization pipeline on
//! realistic (BMS-like) workloads, all three methods, verified end to end.

use cahd::prelude::*;

fn bms1_small() -> (TransactionSet, SensitiveSet) {
    let data = cahd::data::profiles::bms1_like(0.03, 12);
    let mut rng = rand_seed(5);
    let sens = SensitiveSet::select_random(&data, 10, 20, &mut rng).unwrap();
    (data, sens)
}

fn bms2_small() -> (TransactionSet, SensitiveSet) {
    let data = cahd::data::profiles::bms2_like(0.02, 12);
    let mut rng = rand_seed(5);
    let sens = SensitiveSet::select_random(&data, 10, 20, &mut rng).unwrap();
    (data, sens)
}

#[test]
fn cahd_pipeline_verifies_across_privacy_degrees() {
    let (data, sens) = bms1_small();
    for p in [2usize, 5, 10, 20] {
        let res = Anonymizer::new(AnonymizerConfig::with_privacy_degree(p))
            .anonymize(&data, &sens)
            .unwrap_or_else(|e| panic!("p={p}: {e}"));
        verify_published(&data, &sens, &res.published, p).unwrap_or_else(|e| panic!("p={p}: {e}"));
        // Published degree meets or exceeds the requirement.
        assert!(res.published.privacy_degree().is_none_or(|d| d >= p));
    }
}

#[test]
fn all_methods_verify_on_both_profiles() {
    for (data, sens) in [bms1_small(), bms2_small()] {
        let p = 10;
        let cahd_pub = Anonymizer::new(AnonymizerConfig::with_privacy_degree(p))
            .anonymize(&data, &sens)
            .unwrap()
            .published;
        let (pm_pub, _) = perm_mondrian(&data, &sens, &PmConfig::new(p)).unwrap();
        let rnd_pub = random_grouping(&data, &sens, p, 77).unwrap();
        for (name, pub_) in [("cahd", &cahd_pub), ("pm", &pm_pub), ("random", &rnd_pub)] {
            verify_published(&data, &sens, pub_, p).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}

#[test]
fn cahd_beats_pm_on_correlated_data() {
    // The paper's headline claim, on strongly block-structured data where
    // the outcome is not noise-driven: transactions come from two disjoint
    // item universes, each with its own sensitive item.
    let mut rows = Vec::new();
    for i in 0..200u32 {
        let base = if i % 2 == 0 { 0u32 } else { 20 };
        let mut row = vec![base + (i / 2) % 10, base + (i / 2 + 3) % 10, base + 19];
        if i % 20 == 0 {
            row.push(40 + (i % 2)); // sensitive item per block
        }
        rows.push(row);
    }
    let data = TransactionSet::from_rows(&rows, 42);
    let sens = SensitiveSet::new(vec![40, 41], 42);
    let p = 5;

    let cahd_pub = Anonymizer::new(AnonymizerConfig::with_privacy_degree(p))
        .anonymize(&data, &sens)
        .unwrap()
        .published;
    let rnd_pub = random_grouping(&data, &sens, p, 3).unwrap();

    let queries: Vec<GroupByQuery> = vec![
        GroupByQuery::new(40, vec![19, 0, 3]),
        GroupByQuery::new(41, vec![39, 20, 23]),
        GroupByQuery::new(40, vec![19, 39]),
        GroupByQuery::new(41, vec![39, 19]),
    ];
    let kl_cahd = evaluate_workload(&data, &cahd_pub, &queries).mean_kl;
    let kl_rnd = evaluate_workload(&data, &rnd_pub, &queries).mean_kl;
    // CAHD keeps each sensitive item's group inside its own block, so the
    // block-membership cells reconstruct essentially exactly; random
    // grouping mixes blocks.
    assert!(
        kl_cahd < kl_rnd,
        "cahd {kl_cahd} should beat random {kl_rnd} on block data"
    );
}

#[test]
fn qid_patterns_survive_exactly() {
    let (data, sens) = bms1_small();
    let res = Anonymizer::new(AnonymizerConfig::with_privacy_degree(10))
        .anonymize(&data, &sens)
        .unwrap();
    // Pick the two most frequent QID items; pair support must be identical
    // in the release (permutation publishing is lossless on QID).
    let supports = data.item_supports();
    let mut qid_items: Vec<(usize, u32)> = supports
        .iter()
        .enumerate()
        .filter(|&(i, _)| !sens.contains(i as u32))
        .map(|(i, &s)| (s, i as u32))
        .collect();
    qid_items.sort_unstable();
    let (_, a) = qid_items[qid_items.len() - 1];
    let (_, b) = qid_items[qid_items.len() - 2];
    let orig = data
        .iter()
        .filter(|t| t.contains(&a) && t.contains(&b))
        .count();
    let published = res
        .published
        .groups
        .iter()
        .flat_map(|g| g.qid_rows.iter())
        .filter(|r| r.contains(&a) && r.contains(&b))
        .count();
    assert_eq!(orig, published);
}

#[test]
fn anonymization_reduces_sensitive_linkability() {
    let (data, sens) = bms1_small();
    let p = 10;
    let res = Anonymizer::new(AnonymizerConfig::with_privacy_degree(p))
        .anonymize(&data, &sens)
        .unwrap();
    // In every group, the association probability of any member with any
    // sensitive item is at most 1/p by construction; check the exact bound
    // from the published summaries.
    for g in &res.published.groups {
        for &(_, f) in &g.sensitive_counts {
            assert!(f as f64 / g.size() as f64 <= 1.0 / p as f64 + 1e-12);
        }
    }
}

#[test]
fn sharded_pipeline_verifies_and_matches_sequential_at_one_shard() {
    let (data, sens) = bms1_small();
    for p in [2usize, 5, 10] {
        let seq = Anonymizer::new(AnonymizerConfig::with_privacy_degree(p))
            .anonymize(&data, &sens)
            .unwrap();
        // shards = 1: the parallel config must not change the release,
        // whatever the thread count (threads only touch the A·Aᵀ build).
        let one = Anonymizer::new(
            AnonymizerConfig::with_privacy_degree(p).with_parallel(ParallelConfig::new(1, 8)),
        )
        .anonymize(&data, &sens)
        .unwrap();
        assert_eq!(seq.published, one.published, "p={p}");
        assert!(one.sharded_stats.is_none());
        // Genuinely sharded runs verify end to end.
        for shards in [2usize, 5, 16] {
            let par = Anonymizer::new(
                AnonymizerConfig::with_privacy_degree(p)
                    .with_parallel(ParallelConfig::new(shards, 4)),
            )
            .anonymize(&data, &sens)
            .unwrap();
            verify_published(&data, &sens, &par.published, p)
                .unwrap_or_else(|e| panic!("p={p} shards={shards}: {e}"));
            let stats = par.sharded_stats.expect("sharded run must report stats");
            assert_eq!(stats.shards, shards.min(data.n_transactions()));
        }
    }
}

#[test]
fn sharded_pipeline_handles_shard_with_fewer_than_p_sensitive_rows() {
    // 4 shards of 8 rows. Shard 2 (rows 16..24) holds exactly ONE
    // sensitive transaction — fewer than p = 4 — so its CAHD scan can
    // never assemble a full group from sensitive pivots alone and must
    // fall back to candidate neighbors or the pooled leftover. The other
    // sensitive occurrences sit in shard 0.
    let mut rows: Vec<Vec<u32>> = Vec::new();
    for i in 0..32u32 {
        let mut row = vec![i / 8, 4 + i % 3];
        match i {
            0 | 4 => row.push(10), // two occurrences in shard 0
            18 => row.push(11),    // lone sensitive row in shard 2
            _ => {}
        }
        row.sort_unstable();
        rows.push(row);
    }
    let data = TransactionSet::from_rows(&rows, 12);
    let sens = SensitiveSet::new(vec![10, 11], 12);
    let p = 4;
    // Drive cahd_sharded directly (no RCM) so the shard boundaries above
    // are exactly the ones the scan sees.
    let (published, stats) = cahd_sharded(
        &data,
        &sens,
        &CahdConfig::new(p),
        &ParallelConfig::new(4, 2),
    )
    .unwrap();
    verify_published(&data, &sens, &published, p).unwrap();
    assert!(published.satisfies(p));
    assert_eq!(published.n_transactions(), 32);
    assert_eq!(stats.shards, 4);
    // The lone sensitive row was still published exactly once.
    let times_seen = published
        .groups
        .iter()
        .flat_map(|g| g.members.iter())
        .filter(|&&m| m == 18)
        .count();
    assert_eq!(times_seen, 1);
}

#[test]
fn infeasible_privacy_reported_not_violated() {
    let (data, _) = bms1_small();
    // Make the most frequent item sensitive: high support -> infeasible
    // for large p.
    let supports = data.item_supports();
    let top = (0..data.n_items() as u32)
        .max_by_key(|&i| supports[i as usize])
        .unwrap();
    let sens = SensitiveSet::new(vec![top], data.n_items());
    let p = data.n_transactions() / supports[top as usize] + 1;
    let err = Anonymizer::new(AnonymizerConfig::with_privacy_degree(p))
        .anonymize(&data, &sens)
        .unwrap_err();
    assert!(matches!(err, CahdError::Infeasible { item, .. } if item == top));
}
