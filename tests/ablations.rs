//! Ablation studies for the design choices called out in DESIGN.md:
//! RCM on/off, candidate-list width, explicit vs implicit `A x A^T`,
//! PM split heuristics.

use cahd::prelude::*;
use cahd::rcm::ColumnOrder;

fn setup() -> (TransactionSet, SensitiveSet) {
    let data = cahd::data::profiles::bms2_like(0.01, 21);
    let mut rng = rand_seed(8);
    let sens = SensitiveSet::select_random(&data, 8, 20, &mut rng).unwrap();
    (data, sens)
}

#[test]
fn rcm_improves_cahd_utility() {
    // On correlated block data, running CAHD without the band
    // reorganization must not beat the full pipeline.
    let mut rows = Vec::new();
    for i in 0..300u32 {
        let block = i % 3;
        let base = block * 15;
        let mut row = vec![base + (i / 3) % 7, base + (i / 3 + 2) % 7, base + 14];
        if i % 30 == block {
            row.push(45 + block);
        }
        rows.push(row);
    }
    let data = TransactionSet::from_rows(&rows, 48);
    let sens = SensitiveSet::new(vec![45, 46, 47], 48);
    let p = 6;

    let with_rcm = Anonymizer::new(AnonymizerConfig::with_privacy_degree(p))
        .anonymize(&data, &sens)
        .unwrap()
        .published;
    let without_rcm = Anonymizer::new(AnonymizerConfig::with_privacy_degree(p).without_rcm())
        .anonymize(&data, &sens)
        .unwrap()
        .published;

    let queries: Vec<GroupByQuery> = (0..3)
        .map(|b| GroupByQuery::new(45 + b, vec![b * 15 + 14, b * 15, b * 15 + 2]))
        .collect();
    let kl_with = evaluate_workload(&data, &with_rcm, &queries).mean_kl;
    let kl_without = evaluate_workload(&data, &without_rcm, &queries).mean_kl;
    // The input interleaves the blocks, so order-based grouping without RCM
    // mixes them; RCM separates them.
    assert!(
        kl_with <= kl_without,
        "with rcm {kl_with} should be <= without {kl_without}"
    );
}

#[test]
fn wider_candidate_lists_do_not_hurt_utility_much() {
    let (data, sens) = setup();
    let band = reduce_unsymmetric(data.matrix(), UnsymOptions::default());
    let permuted = data.permute(&band.row_perm);
    let queries = generate_workload_seeded(&data, &sens, 4, 50, 31);
    let mut kls = Vec::new();
    for alpha in [1usize, 3, 5] {
        let (pub_, _) = cahd(&permuted, &sens, &CahdConfig::new(10).with_alpha(alpha)).unwrap();
        kls.push(evaluate_workload(&permuted, &pub_, &queries).mean_kl);
    }
    // Fig. 13's finding: alpha brings modest gains; assert no blow-up in
    // either direction (within 3x of each other).
    let min = kls.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = kls.iter().cloned().fold(0.0f64, f64::max);
    assert!(max <= min * 3.0 + 1e-9, "alpha sweep too unstable: {kls:?}");
}

#[test]
fn explicit_and_implicit_aat_give_identical_pipelines() {
    let (data, sens) = setup();
    let explicit = UnsymOptions {
        edge_budget: usize::MAX,
        ..Default::default()
    };
    let implicit = UnsymOptions {
        edge_budget: 0,
        ..Default::default()
    };
    let red_e = reduce_unsymmetric(data.matrix(), explicit);
    let red_i = reduce_unsymmetric(data.matrix(), implicit);
    assert!(red_e.used_explicit_aat);
    assert!(!red_i.used_explicit_aat);
    assert_eq!(
        red_e.row_perm.new_to_old_slice(),
        red_i.row_perm.new_to_old_slice()
    );
    // Identical permutations -> identical releases.
    let (pub_e, _) = cahd(&data.permute(&red_e.row_perm), &sens, &CahdConfig::new(5)).unwrap();
    let (pub_i, _) = cahd(&data.permute(&red_i.row_perm), &sens, &CahdConfig::new(5)).unwrap();
    assert_eq!(pub_e, pub_i);
}

#[test]
fn column_order_does_not_affect_grouping() {
    // Column permutations are presentation-only: CAHD depends on row order.
    let (data, sens) = setup();
    for order in [
        ColumnOrder::MeanRowPos,
        ColumnOrder::FirstOccurrence,
        ColumnOrder::Identity,
    ] {
        let red = reduce_unsymmetric(
            data.matrix(),
            UnsymOptions {
                column_order: order,
                ..Default::default()
            },
        );
        let (pub_, _) = cahd(&data.permute(&red.row_perm), &sens, &CahdConfig::new(5)).unwrap();
        assert!(pub_.satisfies(5));
    }
}

#[test]
fn pm_enhanced_split_forms_no_fewer_groups() {
    // The enhanced heuristic exists to keep splits possible deeper in the
    // recursion; at minimum both variants are valid, and enhanced should
    // not produce grossly coarser partitions.
    let (data, sens) = setup();
    let (enh, enh_stats) = perm_mondrian(&data, &sens, &PmConfig::new(10)).unwrap();
    let plain_cfg = PmConfig {
        enhanced_split: false,
        ..PmConfig::new(10)
    };
    let (plain, plain_stats) = perm_mondrian(&data, &sens, &plain_cfg).unwrap();
    verify_published(&data, &sens, &enh, 10).unwrap();
    verify_published(&data, &sens, &plain, 10).unwrap();
    assert!(
        enh_stats.groups * 2 >= plain_stats.groups,
        "enhanced {} vs plain {}",
        enh_stats.groups,
        plain_stats.groups
    );
}

#[test]
fn proximity_tie_break_is_behavior_preserving_for_privacy() {
    let (data, sens) = setup();
    let band = reduce_unsymmetric(data.matrix(), UnsymOptions::default());
    let permuted = data.permute(&band.row_perm);
    for proximity in [true, false] {
        let cfg = CahdConfig {
            proximity_tie_break: proximity,
            ..CahdConfig::new(10)
        };
        let (pub_, _) = cahd(&permuted, &sens, &cfg).unwrap();
        assert!(pub_.satisfies(10));
    }
}
