//! Integration tests for the beyond-the-paper features, through the facade
//! crate's public surface.

use cahd::core::refine::{intra_group_overlap, refine_groups};
use cahd::core::weighted::{anonymize_weighted, verify_weighted, WeightedSimilarity};
use cahd::eval::attack::{attack_published, attack_raw};
use cahd::prelude::*;
use cahd_data::WeightedTransactionSet;

fn setup() -> (TransactionSet, SensitiveSet) {
    let data = cahd::data::profiles::bms1_like(0.02, 33);
    let mut rng = rand_seed(4);
    let sens = SensitiveSet::select_random(&data, 8, 20, &mut rng).unwrap();
    (data, sens)
}

#[test]
fn attack_bound_holds_through_the_facade() {
    let (data, sens) = setup();
    let p = 10;
    let release = Anonymizer::new(AnonymizerConfig::with_privacy_degree(p))
        .anonymize(&data, &sens)
        .unwrap()
        .published;
    let mut rng = rand_seed(1);
    let raw = attack_raw(&data, &sens, 2, 1_000, &mut rng).unwrap();
    let mut rng = rand_seed(1);
    let rel = attack_published(&data, &sens, &release, 2, 1_000, &mut rng).unwrap();
    assert!(rel.max_posterior <= 1.0 / p as f64 + 1e-9);
    assert!(rel.mean_true_posterior < raw.mean_true_posterior);
}

#[test]
fn refine_then_verify_then_report() {
    let (data, sens) = setup();
    let p = 10;
    let mut release = Anonymizer::new(AnonymizerConfig::with_privacy_degree(p))
        .anonymize(&data, &sens)
        .unwrap()
        .published;
    let before = intra_group_overlap(&release);
    refine_groups(&mut release, &data, &sens, p, 2, 2);
    assert!(intra_group_overlap(&release) >= before);
    verify_published(&data, &sens, &release, p).unwrap();
    let report = privacy_report(&release);
    assert!(report.min_privacy_degree.unwrap() >= p);
    assert!(report.max_association_probability <= 1.0 / p as f64 + 1e-12);
}

#[test]
fn suppression_unblocks_a_hot_sensitive_item() {
    let (data, _) = setup();
    // Force infeasibility: declare the most frequent item sensitive.
    let supports = data.item_supports();
    let hot = (0..data.n_items() as u32)
        .max_by_key(|&i| supports[i as usize])
        .unwrap();
    let sens = SensitiveSet::new(vec![hot], data.n_items());
    // Pick p just past the feasibility boundary for that item.
    let p = data.n_transactions() / supports[hot as usize] + 1;
    assert!(Anonymizer::new(AnonymizerConfig::with_privacy_degree(p))
        .anonymize(&data, &sens)
        .is_err());
    let (repaired, report) = enforce_feasibility(&data, &sens, p, 5);
    assert!(!report.is_empty());
    let release = Anonymizer::new(AnonymizerConfig::with_privacy_degree(p))
        .anonymize(&repaired, &sens)
        .unwrap()
        .published;
    verify_published(&repaired, &sens, &release, p).unwrap();
}

#[test]
fn weighted_pipeline_through_the_facade() {
    let (data, sens) = setup();
    let rows: Vec<Vec<(ItemId, u32)>> = data
        .iter()
        .enumerate()
        .map(|(t, items)| items.iter().map(|&i| (i, 1 + (t as u32 + i) % 5)).collect())
        .collect();
    let wdata = WeightedTransactionSet::from_rows(&rows, data.n_items());
    let p = 10;
    let (release, _) = anonymize_weighted(
        &wdata,
        &sens,
        &CahdConfig::new(p),
        WeightedSimilarity::MinCount,
    )
    .unwrap();
    verify_weighted(&wdata, &sens, &release, p).unwrap();
    // Quantities on QID items survive verbatim: the global sum per item
    // matches between original and release.
    let mut orig = vec![0u64; wdata.n_items()];
    for (i, q) in wdata.item_quantities().iter().enumerate() {
        if !sens.contains(i as u32) {
            orig[i] = *q;
        }
    }
    let mut published = vec![0u64; wdata.n_items()];
    for g in &release.groups {
        for row in &g.qid_rows {
            for &(item, c) in row {
                published[item as usize] += c as u64;
            }
        }
    }
    assert_eq!(orig, published);
}

#[test]
fn streaming_composes_with_mining() {
    use cahd::eval::mining::published_qid_support;
    let (data, sens) = setup();
    let p = 5;
    let mut s =
        StreamingAnonymizer::new(AnonymizerConfig::with_privacy_degree(p), sens.clone(), 200);
    let mut chunks = Vec::new();
    for t in 0..data.n_transactions() {
        if let Some(c) = s.push(data.transaction(t).to_vec()).unwrap() {
            chunks.push(c);
        }
    }
    if let Some(c) = s.finish().unwrap() {
        chunks.push(c);
    }
    assert!(chunks.len() >= 2);
    // A QID itemset's support summed over chunk releases equals its global
    // support (chunks partition the stream; QID publishing is lossless).
    let supports = data.item_supports();
    let top_item = (0..data.n_items() as u32)
        .filter(|&i| !sens.contains(i))
        .max_by_key(|&i| supports[i as usize])
        .unwrap();
    let global = supports[top_item as usize];
    let summed: usize = chunks
        .iter()
        .map(|c| published_qid_support(&c.published, &[top_item]))
        .sum();
    assert_eq!(global, summed);
}

#[test]
fn cahd_beats_pm_with_bootstrap_significance() {
    use cahd::eval::bootstrap::paired_bootstrap_less;
    use cahd::eval::workload_kls;
    // Paper-style comparison with statistical teeth: paired per-query KL,
    // one-sided bootstrap test at p < 0.05.
    // Scale 0.1 is where the comparison stabilizes: at 0.05 individual
    // seeds can flip (see EXPERIMENTS.md on small-scale noise); at 0.1+
    // CAHD wins with p < 1e-3 across seeds.
    let data = cahd::data::profiles::bms1_like(0.1, 77);
    let mut rng = rand_seed(6);
    let sens = SensitiveSet::select_random(&data, 10, 20, &mut rng).unwrap();
    let p = 10;
    let cahd_rel = Anonymizer::new(AnonymizerConfig::with_privacy_degree(p))
        .anonymize(&data, &sens)
        .unwrap()
        .published;
    let (pm_rel, _) = perm_mondrian(&data, &sens, &cahd::baselines::PmConfig::new(p)).unwrap();
    let queries = generate_workload_seeded(&data, &sens, 4, 200, 17);
    let kl_cahd = workload_kls(&data, &cahd_rel, &queries);
    let kl_pm = workload_kls(&data, &pm_rel, &queries);
    // Keep only queries both releases answered (same sensitive universe, so
    // in practice all of them).
    let (a, b): (Vec<f64>, Vec<f64>) = kl_cahd
        .iter()
        .zip(&kl_pm)
        .filter_map(|(x, y)| Some((((*x)?), ((*y)?))))
        .unzip();
    assert!(a.len() > 100, "workload too small: {}", a.len());
    let mut rng = rand_seed(8);
    let p_value = paired_bootstrap_less(&a, &b, 5_000, &mut rng).unwrap();
    assert!(
        p_value < 0.05,
        "CAHD not significantly better than PM (p = {p_value})"
    );
}
