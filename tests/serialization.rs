//! Release serialization: the published dataset round-trips through JSON
//! (the wire format a data owner would actually ship).

use cahd::prelude::*;

fn release() -> (TransactionSet, SensitiveSet, PublishedDataset) {
    let data = cahd::data::profiles::bms1_like(0.01, 3);
    let mut rng = rand_seed(5);
    let sens = SensitiveSet::select_random(&data, 5, 10, &mut rng).unwrap();
    let pub_ = Anonymizer::new(AnonymizerConfig::with_privacy_degree(5))
        .anonymize(&data, &sens)
        .unwrap()
        .published;
    (data, sens, pub_)
}

#[test]
fn json_roundtrip_preserves_release() {
    let (data, sens, pub_) = release();
    let json = serde_json::to_string(&pub_).unwrap();
    let back: PublishedDataset = serde_json::from_str(&json).unwrap();
    assert_eq!(back, pub_);
    // The deserialized release still verifies against the original data.
    verify_published(&data, &sens, &back, 5).unwrap();
}

#[test]
fn stripped_release_omits_member_ids() {
    let (_, _, pub_) = release();
    let stripped = pub_.clone().strip_members();
    let json = serde_json::to_string(&stripped).unwrap();
    let back: PublishedDataset = serde_json::from_str(&json).unwrap();
    assert!(back.groups.iter().all(|g| g.members.is_empty()));
    // Group structure and summaries are intact.
    assert_eq!(back.n_groups(), pub_.n_groups());
    assert_eq!(back.n_transactions(), pub_.n_transactions());
    assert_eq!(back.privacy_degree(), pub_.privacy_degree());
}

#[test]
fn json_is_human_inspectable() {
    let (_, _, pub_) = release();
    let json = serde_json::to_string_pretty(&pub_).unwrap();
    assert!(json.contains("\"sensitive_items\""));
    assert!(json.contains("\"qid_rows\""));
    assert!(json.contains("\"sensitive_counts\""));
}

#[test]
fn checkpoint_fixture_resumes_and_tampered_one_fails_closed() {
    use cahd::core::checkpoint::StreamingCheckpoint;
    use cahd::core::streaming::StreamingAnonymizer;
    use cahd::core::CahdError;

    // The clean fixture (a real `--checkpoint` pause after one 40-row
    // batch of fixtures/demo.dat) validates and resumes.
    let text = std::fs::read_to_string("fixtures/demo_checkpoint.json").unwrap();
    let cp: StreamingCheckpoint = serde_json::from_str(&text).unwrap();
    cp.validate().unwrap();
    assert_eq!(cp.next_id, 40);
    let sens = SensitiveSet::new(vec![14, 26, 28], 30);
    let mut s =
        StreamingAnonymizer::resume(AnonymizerConfig::with_privacy_degree(4), sens.clone(), &cp)
            .unwrap();
    assert_eq!(s.next_stream_id(), 40);
    // It is live: feeding the rest of demo.dat releases the stream's
    // remaining chunks.
    let data = cahd::data::io::read_dat_file("fixtures/demo.dat", Some(30)).unwrap();
    let mut released = 0;
    for i in 40..data.n_transactions() {
        if s.push(data.transaction(i).to_vec()).unwrap().is_some() {
            released += 1;
        }
    }
    if s.finish().unwrap().is_some() {
        released += 1;
    }
    assert_eq!(released, 2, "80 remaining rows at batch 40");

    // The tampered twin (stream cursor advanced behind the digest's back)
    // fails closed before any state is trusted.
    let text = std::fs::read_to_string("fixtures/demo_checkpoint_tampered.json").unwrap();
    let bad: StreamingCheckpoint = serde_json::from_str(&text).unwrap();
    let err = bad.validate().unwrap_err();
    assert!(
        matches!(err, CahdError::CorruptCheckpoint { ref reason } if reason.contains("digest")),
        "{err:?}"
    );
    assert!(
        StreamingAnonymizer::resume(AnonymizerConfig::with_privacy_degree(4), sens, &bad,).is_err()
    );
}

#[test]
fn dat_roundtrip_through_disk() {
    let data = cahd::data::profiles::bms1_like(0.01, 9);
    let path = std::env::temp_dir().join(format!("cahd_it_{}.dat", std::process::id()));
    cahd::data::io::write_dat_file(&path, &data).unwrap();
    let back = cahd::data::io::read_dat_file(&path, Some(data.n_items())).unwrap();
    std::fs::remove_file(&path).ok();
    // The generator never emits empty transactions, so the roundtrip is
    // exact.
    assert_eq!(back, data);
}
