//! Release serialization: the published dataset round-trips through JSON
//! (the wire format a data owner would actually ship).

use cahd::prelude::*;

fn release() -> (TransactionSet, SensitiveSet, PublishedDataset) {
    let data = cahd::data::profiles::bms1_like(0.01, 3);
    let mut rng = rand_seed(5);
    let sens = SensitiveSet::select_random(&data, 5, 10, &mut rng).unwrap();
    let pub_ = Anonymizer::new(AnonymizerConfig::with_privacy_degree(5))
        .anonymize(&data, &sens)
        .unwrap()
        .published;
    (data, sens, pub_)
}

#[test]
fn json_roundtrip_preserves_release() {
    let (data, sens, pub_) = release();
    let json = serde_json::to_string(&pub_).unwrap();
    let back: PublishedDataset = serde_json::from_str(&json).unwrap();
    assert_eq!(back, pub_);
    // The deserialized release still verifies against the original data.
    verify_published(&data, &sens, &back, 5).unwrap();
}

#[test]
fn stripped_release_omits_member_ids() {
    let (_, _, pub_) = release();
    let stripped = pub_.clone().strip_members();
    let json = serde_json::to_string(&stripped).unwrap();
    let back: PublishedDataset = serde_json::from_str(&json).unwrap();
    assert!(back.groups.iter().all(|g| g.members.is_empty()));
    // Group structure and summaries are intact.
    assert_eq!(back.n_groups(), pub_.n_groups());
    assert_eq!(back.n_transactions(), pub_.n_transactions());
    assert_eq!(back.privacy_degree(), pub_.privacy_degree());
}

#[test]
fn json_is_human_inspectable() {
    let (_, _, pub_) = release();
    let json = serde_json::to_string_pretty(&pub_).unwrap();
    assert!(json.contains("\"sensitive_items\""));
    assert!(json.contains("\"qid_rows\""));
    assert!(json.contains("\"sensitive_counts\""));
}

#[test]
fn dat_roundtrip_through_disk() {
    let data = cahd::data::profiles::bms1_like(0.01, 9);
    let path = std::env::temp_dir().join(format!("cahd_it_{}.dat", std::process::id()));
    cahd::data::io::write_dat_file(&path, &data).unwrap();
    let back = cahd::data::io::read_dat_file(&path, Some(data.n_items())).unwrap();
    std::fs::remove_file(&path).ok();
    // The generator never emits empty transactions, so the roundtrip is
    // exact.
    assert_eq!(back, data);
}
