//! A tiny, self-contained subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the exact surface it uses: [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//! The generator is SplitMix64 — statistically fine for synthetic-data
//! generation and seeded tests, not a cryptographic RNG, and its streams
//! differ from the real `StdRng` (only self-consistency is relied upon).

/// The low-level source of randomness: raw 64-bit outputs.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Samples a uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Element types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform value in `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform value in `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                Self::sample_half_open(lo, hi, rng)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
///
/// Implemented blanket-style over the element type (as in the real crate)
/// so integer-literal ranges like `0..4` still default to `i32`.
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// The user-facing random-value API, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of an inferred [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a (half-open or inclusive) range.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator (SplitMix64 under the hood).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-mix the seed so tiny seeds (0, 1, 2...) diverge instantly.
            let mut rng = StdRng {
                state: state ^ 0x5851_F42D_4C95_7F2D,
            };
            rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn nearby_seeds_diverge() {
        for s in 0..32u64 {
            let mut a = StdRng::seed_from_u64(s);
            let mut b = StdRng::seed_from_u64(s + 1);
            assert_ne!(a.gen::<u64>(), b.gen::<u64>(), "seed {s}");
        }
        // cahd-core's suppression tests rely on seeds 1 and 2 choosing
        // different victims out of six.
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen_range(0..6usize), b.gen_range(0..6usize));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..=5i32);
            assert!((0..=5).contains(&w));
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unsized_access_compiles() {
        fn sum<R: Rng + ?Sized>(rng: &mut R) -> u32 {
            rng.gen_range(0..10u32) + rng.gen_range(0..10u32)
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sum(&mut rng) < 20);
    }
}
