//! Offline shim for the slice of `crossbeam` the workspace uses:
//! `crossbeam::thread::scope` with `Scope::spawn` / `ScopedJoinHandle::join`.
//!
//! Backed by `std::thread::scope` (Rust >= 1.63), which provides the same
//! structured-concurrency guarantee. The closure passed to `spawn` receives
//! a `&Scope` argument (usually ignored as `|_|`) to match crossbeam's
//! signature.

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    use std::any::Any;

    /// Spawn handle passed to the scope closure; wraps `std::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives this scope again,
        /// mirroring crossbeam's `spawn(|scope| ...)` signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Handle to a scoped thread; `join` returns `Err` if the thread panicked.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, yielding its result.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope in which spawned threads may borrow from the
    /// enclosing stack frame; all threads are joined before returning.
    ///
    /// Matches crossbeam's signature: the outer `Result` is `Err` only if a
    /// spawned thread panicked *and* its panic was not already observed via
    /// `join` (std re-raises such panics, so in practice this returns `Ok`
    /// whenever `f` itself completes).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join_in_order() {
        let items = vec![1u64, 2, 3, 4];
        let doubled = crate::thread::scope(|scope| {
            let handles: Vec<_> = items.iter().map(|x| scope.spawn(move |_| x * 2)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("thread panicked"))
                .collect::<Vec<_>>()
        })
        .expect("scope panicked");
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn join_surfaces_panics() {
        let res = crate::thread::scope(|scope| {
            let h = scope.spawn(|_| -> u32 { panic!("boom") });
            h.join()
        })
        .expect("scope itself should succeed");
        assert!(res.is_err());
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let v = crate::thread::scope(|scope| {
            let h = scope.spawn(|inner| inner.spawn(|_| 7u32).join().unwrap());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(v, 7);
    }
}
