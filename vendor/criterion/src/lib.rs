//! A minimal, offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `bench_with_input`
//! / `finish`, `BenchmarkId::from_parameter`, `Bencher::iter`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros — with simple
//! wall-clock timing instead of statistical analysis.
//!
//! Honors `--bench` (ignored filter args tolerated) and `--test` /
//! `CRITERION_SMOKE=1`, which run each benchmark exactly once so CI can
//! smoke-test bench targets quickly.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier; prevents the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one parameterized benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from the benchmark's parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with an explicit function name and parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state; hands out benchmark groups.
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_SMOKE").is_some();
        Criterion { smoke }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let smoke = self.smoke;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 100,
            smoke,
        }
    }

    /// Benches a standalone function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let smoke = self.smoke;
        run_one(id, 100, smoke, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    smoke: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets how many iterations each benchmark in the group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benches `f` under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(
            &format!("{}/{id}", self.name),
            self.sample_size,
            self.smoke,
            f,
        );
        self
    }

    /// Benches `f` with a borrowed input under `group_name/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{id}", self.name),
            self.sample_size,
            self.smoke,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (report flushing in real criterion; a no-op here).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, smoke: bool, mut f: F) {
    let samples = if smoke { 1 } else { sample_size as u64 };
    let mut b = Bencher {
        samples,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b
        .elapsed
        .checked_div(samples.max(1) as u32)
        .unwrap_or_default();
    println!("bench: {label:<50} {per_iter:>12.2?}/iter ({samples} iters)");
}

/// Declares a set of benchmark functions as one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    ($group:ident; $($rest:tt)*) => {
        $crate::criterion_group!($group, $($rest)*);
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        std::env::set_var("CRITERION_SMOKE", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(10);
        let mut hits = 0u32;
        g.bench_function("count", |b| b.iter(|| hits += 1));
        g.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
        assert!(hits >= 1);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::from_parameter(0.5).to_string(), "0.5");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
