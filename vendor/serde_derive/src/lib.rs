//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! Supports exactly what the workspace needs: non-generic structs with
//! named fields. The macro walks the raw token stream (no `syn`/`quote`
//! available offline) and emits impls of the shim's value-tree traits.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives `serde::Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let (name, fields) = match parse_struct(input) {
        Ok(parsed) => parsed,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = if serialize {
        let entries: String = fields
            .iter()
            .map(|f| {
                format!(
                    "(::std::string::String::from({f:?}), \
                     ::serde::Serialize::to_value(&self.{f})),"
                )
            })
            .collect();
        format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Object(::std::vec![{entries}])\n\
                 }}\n\
             }}"
        )
    } else {
        let inits: String = fields
            .iter()
            .map(|f| format!("{f}: ::serde::get_field(v, {f:?})?,"))
            .collect();
        format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name} {{ {inits} }})\n\
                 }}\n\
             }}"
        )
    };
    code.parse().unwrap()
}

/// Extracts the struct name and its field names from the derive input.
fn parse_struct(input: TokenStream) -> Result<(String, Vec<String>), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes_and_visibility(&tokens, &mut i);
    match tokens.get(i) {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => i += 1,
        _ => return Err("serde shim: only structs can derive Serialize/Deserialize".into()),
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(name)) => {
            i += 1;
            name.to_string()
        }
        _ => return Err("serde shim: expected a struct name".into()),
    };
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err("serde shim: generic structs are not supported".into());
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1,
            None => return Err("serde shim: only named-field structs are supported".into()),
        }
    };

    let body: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut j = 0;
    while j < body.len() {
        skip_attributes_and_visibility(&body, &mut j);
        let field = match body.get(j) {
            Some(TokenTree::Ident(f)) => f.to_string(),
            Some(other) => return Err(format!("serde shim: expected field name, got `{other}`")),
            None => break,
        };
        j += 1;
        match body.get(j) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => j += 1,
            _ => return Err(format!("serde shim: expected `:` after field `{field}`")),
        }
        // Skip the type: everything up to the next comma outside angle
        // brackets (brackets are punct pairs, not token groups).
        let mut depth = 0i32;
        while j < body.len() {
            match &body[j] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        fields.push(field);
    }
    if fields.is_empty() {
        return Err("serde shim: structs must have at least one named field".into());
    }
    Ok((name, fields))
}

/// Advances `i` past `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the `[...]` group
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(kw)) if kw.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}
