//! A tiny, self-contained subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the property-testing surface its test suites use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `prop_perturb`,
//! range and tuple strategies, [`collection::vec`] and
//! [`collection::btree_set`], [`Just`], the `proptest!` macro (both the
//! test-function and closure forms), and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from the real crate: no shrinking (failures report the raw
//! failing input), and case generation is deterministic per test name, so
//! failures always reproduce.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The deterministic generator handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed(state: u64) -> Self {
        TestRng {
            state: state ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Transforms generated values with access to the generator.
    fn prop_perturb<O, F: Fn(Self::Value, TestRng) -> O>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
    {
        Perturb { inner: self, f }
    }

    /// Keeps only values passing the predicate (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_perturb`].
#[derive(Clone, Debug)]
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value, TestRng) -> O> Strategy for Perturb<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        let value = self.inner.generate(rng);
        let fork = TestRng::seed(rng.next_u64());
        (self.f)(value, fork)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// String patterns are strategies, as in the real crate: the pattern is a
/// small regex subset — literal characters, escapes, character classes with
/// ranges (`[ -~\n]`), and the quantifiers `{n}`, `{lo,hi}`, `*`, `+`, `?`.
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

mod pattern {
    use super::TestRng;

    /// Generates a random string matching the supported regex subset.
    pub fn generate(pat: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let class = parse_atom(pat, &chars, &mut i);
            let (lo, hi) = parse_quantifier(pat, &chars, &mut i);
            let span = (hi - lo) as u64 + 1;
            let reps = lo + (rng.next_u64() % span) as usize;
            for _ in 0..reps {
                let k = (rng.next_u64() % class.len() as u64) as usize;
                out.push(class[k]);
            }
        }
        out
    }

    /// One atom = the set of characters it can produce.
    fn parse_atom(pat: &str, chars: &[char], i: &mut usize) -> Vec<char> {
        match chars[*i] {
            '[' => {
                *i += 1;
                let mut class = Vec::new();
                while *i < chars.len() && chars[*i] != ']' {
                    let lo = parse_class_char(pat, chars, i);
                    if *i + 1 < chars.len() && chars[*i] == '-' && chars[*i + 1] != ']' {
                        *i += 1;
                        let hi = parse_class_char(pat, chars, i);
                        assert!(lo <= hi, "empty range in pattern `{pat}`");
                        class.extend((lo..=hi).filter_map(char::from_u32));
                    } else {
                        class.extend(char::from_u32(lo));
                    }
                }
                assert!(*i < chars.len(), "unterminated `[` in pattern `{pat}`");
                *i += 1; // closing `]`
                assert!(!class.is_empty(), "empty class in pattern `{pat}`");
                class
            }
            '\\' => {
                let c = parse_class_char(pat, chars, i);
                vec![char::from_u32(c).expect("escape yields valid char")]
            }
            c @ ('(' | ')' | '|' | '.' | '^' | '$') => {
                panic!("proptest shim: regex operator `{c}` unsupported in `{pat}`")
            }
            c => {
                *i += 1;
                vec![c]
            }
        }
    }

    /// A literal or escaped character inside (or outside) a class.
    fn parse_class_char(pat: &str, chars: &[char], i: &mut usize) -> u32 {
        let c = chars[*i];
        *i += 1;
        if c != '\\' {
            return c as u32;
        }
        assert!(*i < chars.len(), "dangling `\\` in pattern `{pat}`");
        let esc = chars[*i];
        *i += 1;
        match esc {
            'n' => '\n' as u32,
            'r' => '\r' as u32,
            't' => '\t' as u32,
            '0' => 0,
            c @ ('\\' | '-' | ']' | '[' | '{' | '}' | '.' | '*' | '+' | '?' | '(' | ')' | '|'
            | '^' | '$' | '"' | '\'' | '/') => c as u32,
            c => panic!("proptest shim: escape `\\{c}` unsupported in `{pat}`"),
        }
    }

    /// `{n}`, `{lo,hi}`, `*`, `+`, `?`, or none (exactly once).
    fn parse_quantifier(pat: &str, chars: &[char], i: &mut usize) -> (usize, usize) {
        match chars.get(*i) {
            Some('{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated `{{` in pattern `{pat}`"));
                let body: String = chars[*i + 1..*i + close].iter().collect();
                *i += close + 1;
                let parse = |s: &str| {
                    s.trim()
                        .parse::<usize>()
                        .unwrap_or_else(|_| panic!("bad repeat `{body}` in pattern `{pat}`"))
                };
                match body.split_once(',') {
                    Some((lo, hi)) => (parse(lo), parse(hi)),
                    None => {
                        let n = parse(&body);
                        (n, n)
                    }
                }
            }
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            _ => (1, 1),
        }
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + (self.end - self.start) * unit
    }
}

/// `bool` strategy: uniform coin flip.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for collection strategies (inclusive bounds).
    ///
    /// Built via `From` impls that only exist for `usize` shapes, so bare
    /// range literals like `1..6` infer `usize` as in the real crate.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(self, rng: &mut TestRng) -> usize {
            assert!(self.lo <= self.hi, "cannot sample empty size range");
            let span = (self.hi - self.lo) as u64 + 1;
            self.lo + (rng.next_u64() % span) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "cannot sample empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// A `Vec` whose length is drawn from `size` (`0..8`, `n..=n`, `3`, ...)
    /// with elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` with up to `size` elements from `elem` (duplicates
    /// collapse, as in the real crate's best-effort filling).
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Bounded attempts: a narrow element domain may not be able to
            // fill the target size.
            for _ in 0..target.saturating_mul(4) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.elem.generate(rng));
            }
            out
        }
    }
}

/// Run-time configuration for the [`TestRunner`].
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Drives a strategy through a property closure; panics on the first
/// failing case with the input's debug representation.
#[derive(Clone, Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner with the given configuration.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `property` against `cases` generated inputs. The seed is
    /// derived from `name` so every test is deterministic in isolation.
    pub fn run_named<S: Strategy>(
        &mut self,
        name: &str,
        strategy: &S,
        mut property: impl FnMut(S::Value) -> Result<(), String>,
    ) where
        S::Value: Debug,
    {
        let base = fnv1a(name.as_bytes());
        for case in 0..self.config.cases {
            let mut rng =
                TestRng::seed(base ^ u64::from(case).wrapping_mul(0x51_7C_C1_B7_27_22_0A_95));
            let value = strategy.generate(&mut rng);
            let repr = format!("{value:?}");
            let outcome = catch_unwind(AssertUnwindSafe(|| property(value)));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(msg)) => panic!(
                    "proptest: property `{name}` failed at case {case}:\n{msg}\ninput: {repr}"
                ),
                Err(cause) => {
                    let msg = panic_message(&cause);
                    panic!(
                        "proptest: property `{name}` panicked at case {case}: {msg}\ninput: {repr}"
                    );
                }
            }
        }
    }
}

fn panic_message(cause: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = cause.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = cause.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything a test module usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, AnyBool, Just,
        ProptestConfig, Strategy, TestRng, TestRunner,
    };
}

/// Defines property tests (`#[test]` functions) or runs an inline
/// property (closure form).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($cfg; $($rest)*);
    };
    (|($($pat:pat_param in $strat:expr),+ $(,)?)| $body:block) => {{
        let mut runner = $crate::TestRunner::new($crate::ProptestConfig::default());
        runner.run_named(
            concat!(file!(), ":", line!()),
            &($($strat,)+),
            |($($pat,)+)| { $body Ok(()) },
        );
    }};
    ($($rest:tt)*) => {
        $crate::__proptest_tests!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::TestRunner::new($cfg);
                runner.run_named(
                    stringify!($name),
                    &($($strat,)+),
                    |($($pat,)+)| { $body Ok(()) },
                );
            }
        )*
    };
}

/// Fails the current property when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                format!($($fmt)+), file!(), line!()
            ));
        }
    };
}

/// Fails the current property when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left), stringify!($right), l, r, file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: {}\n  left: {:?}\n right: {:?} ({}:{})",
                format!($($fmt)+), l, r, file!(), line!()
            ));
        }
    }};
}

/// Fails the current property when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?} ({}:{})",
                stringify!($left), stringify!($right), l, file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: {}\n  both: {:?} ({}:{})",
                format!($($fmt)+), l, file!(), line!()
            ));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // No discard accounting in the shim: treat as a vacuous pass.
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, Vec<u32>)> {
        (1usize..10).prop_flat_map(|n| (Just(n), collection::vec(0..n as u32, 0..8)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17) {
            prop_assert!((3..17).contains(&x));
        }

        #[test]
        fn flat_map_respects_dependency((n, xs) in arb_pair()) {
            for &x in &xs {
                prop_assert!((x as usize) < n, "{x} >= {n}");
            }
        }

        #[test]
        fn sets_are_sorted(s in collection::btree_set(0u32..50, 0..10)) {
            let v: Vec<u32> = s.iter().copied().collect();
            let mut sorted = v.clone();
            sorted.sort_unstable();
            prop_assert_eq!(v, sorted);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n > 4);
            prop_assert!(n >= 5);
        }
    }

    #[test]
    fn closure_form_runs() {
        let hits = std::cell::Cell::new(0u32);
        proptest!(|(x in 0u64..100)| {
            prop_assert!(x < 100);
            hits.set(hits.get() + 1);
        });
        assert_eq!(hits.get(), ProptestConfig::default().cases);
    }

    #[test]
    fn perturb_gets_rng() {
        let strat = Just(5u64).prop_perturb(|v, mut rng| v + (rng.next_u64() % 5));
        let mut rng = TestRng::seed(9);
        for _ in 0..20 {
            let v = strat.generate(&mut rng);
            assert!((5..10).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "property `failing` failed")]
    fn failures_report_input() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(10));
        runner.run_named("failing", &(0usize..100), |x| {
            prop_assert!(x < 1);
            Ok(())
        });
    }
}
