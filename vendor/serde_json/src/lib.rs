//! JSON text <-> the vendored serde shim's [`Value`] tree.
//!
//! Provides the `serde_json` calls the workspace makes — [`to_string`],
//! [`to_string_pretty`], [`from_str`] and [`Error`] — producing the same
//! JSON shapes as the real crate for the types the shim supports.

pub use serde::{Error, Value};

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any shim-deserializable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => write_seq(
            items.iter(),
            out,
            indent,
            depth,
            ('[', ']'),
            |item, out, ind, d| {
                write_value(item, out, ind, d);
            },
        ),
        Value::Object(entries) => {
            write_seq(
                entries.iter(),
                out,
                indent,
                depth,
                ('{', '}'),
                |(k, v), out, ind, d| {
                    write_string(k, out);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    write_value(v, out, ind, d);
                },
            );
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    items: I,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(I::Item, &mut String, Option<usize>, usize),
) {
    out.push(brackets.0);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(item, out, indent, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(brackets.1);
}

fn write_number(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::custom(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice is valid utf-8");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::custom(format!("invalid number `{text}` at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid utf-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let v = Value::Object(vec![
            ("n".into(), Value::Num(3.0)),
            (
                "xs".into(),
                Value::Array(vec![Value::Num(1.0), Value::Num(2.5)]),
            ),
            ("s".into(), Value::Str("a\"b\\c\n".into())),
            ("t".into(), Value::Bool(true)),
            ("z".into(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(
            compact,
            r#"{"n":3,"xs":[1,2.5],"s":"a\"b\\c\n","t":true,"z":null}"#
        );
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn typed_roundtrip() {
        let rows: Vec<Vec<(u32, u32)>> = vec![vec![(1, 2), (3, 4)], vec![]];
        let json = to_string(&rows).unwrap();
        assert_eq!(json, "[[[1,2],[3,4]],[]]");
        let back: Vec<Vec<(u32, u32)>> = from_str(&json).unwrap();
        assert_eq!(back, rows);
    }
}
