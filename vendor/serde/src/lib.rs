//! A tiny, self-contained stand-in for `serde` + `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the surface it uses: `#[derive(Serialize, Deserialize)]` on
//! plain structs with named fields, routed through a JSON [`Value`] tree
//! (the only data format the workspace serializes to is JSON, via the
//! sibling `serde_json` shim). The derive macro lives in the vendored
//! `serde_derive` crate and is re-exported here, exactly like the real
//! `serde` with the `derive` feature.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the intermediate representation every
/// [`Serialize`]/[`Deserialize`] impl goes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// JSON numbers. All integers the workspace serializes fit in the
    /// 53-bit exact range of an `f64`.
    Num(f64),
    /// JSON strings.
    Str(String),
    /// JSON arrays.
    Array(Vec<Value>),
    /// JSON objects, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// An error produced while building or interpreting a [`Value`] tree, or
/// while parsing JSON text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Helper used by derived code: fetches and converts a struct field.
pub fn get_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(field) => {
            T::from_value(field).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
        }
        None => match v {
            Value::Object(_) => Err(Error::custom(format!("missing field `{name}`"))),
            other => Err(Error::custom(format!(
                "expected object with field `{name}`, found {}",
                kind_of(other)
            ))),
        },
    }
}

fn kind_of(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Num(_) => "number",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) if n.fract() == 0.0 => {
                        let lo = <$t>::MIN as f64;
                        let hi = <$t>::MAX as f64;
                        if *n >= lo && *n <= hi {
                            Ok(*n as $t)
                        } else {
                            Err(Error::custom(format!(
                                "number {n} out of range for {}",
                                stringify!($t)
                            )))
                        }
                    }
                    other => Err(Error::custom(format!(
                        "expected integer, found {}",
                        kind_of(other)
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Num(n) => Ok(*n),
            other => Err(Error::custom(format!(
                "expected number, found {}",
                kind_of(other)
            ))),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                kind_of(other)
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                kind_of(other)
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                kind_of(other)
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, found {}",
                kind_of(other)
            ))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) -> $len:literal;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(Error::custom(format!(
                        "expected array of length {}, found length {}",
                        $len,
                        items.len()
                    ))),
                    other => Err(Error::custom(format!(
                        "expected array, found {}",
                        kind_of(other)
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0) -> 1;
    (A: 0, B: 1) -> 2;
    (A: 0, B: 1, C: 2) -> 3;
    (A: 0, B: 1, C: 2, D: 3) -> 4;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        for v in [0usize, 1, 41, 1 << 40] {
            assert_eq!(usize::from_value(&v.to_value()).unwrap(), v);
        }
        assert_eq!(
            Vec::<(u32, u32)>::from_value(&vec![(1u32, 2u32)].to_value()).unwrap(),
            vec![(1, 2)]
        );
        assert!(u32::from_value(&Value::Num(0.5)).is_err());
        assert!(u32::from_value(&Value::Num(-1.0)).is_err());
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn object_field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Num(3.0))]);
        assert_eq!(get_field::<u32>(&v, "a").unwrap(), 3);
        assert!(get_field::<u32>(&v, "b").is_err());
        assert!(get_field::<u32>(&Value::Null, "b").is_err());
    }
}
