//! Readers and writers for the standard `.dat` basket format.
//!
//! One transaction per line, whitespace-separated non-negative integer item
//! ids — the format of the FIMI repository and the original BMS-WebView
//! files, so real datasets can replace the synthetic profiles directly.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::transaction::{ItemId, TransactionSet};

/// Reads a `.dat` basket stream into *raw* rows plus the inferred item
/// universe (`0..=max_id`, or 0 when every row is empty).
///
/// Lines that are empty or start with `#` are skipped. Item ids must parse
/// as `u32`. Rows are returned exactly as written — unsorted, duplicates
/// kept — so ingestion layers can distinguish a malformed row from its
/// normalized form ([`crate::TransactionSet::from_rows`] sorts and dedups).
pub fn read_dat_rows<R: BufRead>(reader: R) -> io::Result<(Vec<Vec<ItemId>>, usize)> {
    let mut rows: Vec<Vec<ItemId>> = Vec::new();
    let mut max_id: u64 = 0;
    let mut any_item = false;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut row: Vec<ItemId> = Vec::new();
        for tok in trimmed.split_ascii_whitespace() {
            let id: u32 = tok.parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad item id {tok:?}: {e}", lineno + 1),
                )
            })?;
            max_id = max_id.max(id as u64);
            any_item = true;
            row.push(id);
        }
        rows.push(row);
    }
    let inferred = if any_item { max_id as usize + 1 } else { 0 };
    Ok((rows, inferred))
}

/// Reads a `.dat` basket stream. The item universe is `0..=max_id` unless
/// `n_items` forces a larger one.
///
/// Lines that are empty or start with `#` are skipped. Item ids must parse
/// as `u32`.
pub fn read_dat<R: BufRead>(reader: R, n_items: Option<usize>) -> io::Result<TransactionSet> {
    let (rows, inferred) = read_dat_rows(reader)?;
    let d = n_items.unwrap_or(0).max(inferred);
    Ok(TransactionSet::from_rows(&rows, d))
}

/// Reads a `.dat` basket file from disk.
pub fn read_dat_file<P: AsRef<Path>>(
    path: P,
    n_items: Option<usize>,
) -> io::Result<TransactionSet> {
    read_dat(BufReader::new(File::open(path)?), n_items)
}

/// Writes a transaction set in `.dat` format.
pub fn write_dat<W: Write>(mut writer: W, data: &TransactionSet) -> io::Result<()> {
    for txn in data.iter() {
        let mut first = true;
        for &item in txn {
            if !first {
                writer.write_all(b" ")?;
            }
            first = false;
            write!(writer, "{item}")?;
        }
        writer.write_all(b"\n")?;
    }
    Ok(())
}

/// Writes a transaction set to a `.dat` file on disk.
pub fn write_dat_file<P: AsRef<Path>>(path: P, data: &TransactionSet) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_dat(&mut w, data)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_in_memory() {
        let t = TransactionSet::from_rows(&[vec![3, 1], vec![], vec![2]], 4);
        let mut buf = Vec::new();
        write_dat(&mut buf, &t).unwrap();
        assert_eq!(String::from_utf8_lossy(&buf), "1 3\n\n2\n");
        // Note: empty lines are skipped on read, so re-read drops empty
        // transactions — callers keep them only through the binary model.
        let back = read_dat(Cursor::new(&buf), Some(4)).unwrap();
        assert_eq!(back.n_transactions(), 2);
        assert_eq!(back.transaction(0), &[1, 3]);
        assert_eq!(back.transaction(1), &[2]);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let src = "# header\n\n5 2 5\n";
        let t = read_dat(Cursor::new(src), None).unwrap();
        assert_eq!(t.n_transactions(), 1);
        assert_eq!(t.transaction(0), &[2, 5]);
        assert_eq!(t.n_items(), 6);
    }

    #[test]
    fn n_items_override_grows_universe() {
        let t = read_dat(Cursor::new("1\n"), Some(100)).unwrap();
        assert_eq!(t.n_items(), 100);
        // But the inferred size wins when larger.
        let t2 = read_dat(Cursor::new("7\n"), Some(2)).unwrap();
        assert_eq!(t2.n_items(), 8);
    }

    #[test]
    fn bad_token_is_an_error() {
        let err = read_dat(Cursor::new("1 x 2\n"), None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn file_roundtrip() {
        let t = TransactionSet::from_rows(&[vec![0, 9], vec![4]], 10);
        let path = std::env::temp_dir().join(format!("cahd_io_test_{}.dat", std::process::id()));
        write_dat_file(&path, &t).unwrap();
        let back = read_dat_file(&path, Some(10)).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, t);
    }

    #[test]
    fn raw_rows_keep_duplicates_and_order() {
        let (rows, inferred) = read_dat_rows(Cursor::new("# header\n\n5 2 5\n7 1\n")).unwrap();
        assert_eq!(rows, vec![vec![5, 2, 5], vec![7, 1]]);
        assert_eq!(inferred, 8);
        // The normalizing reader sorts and dedups the same stream.
        let t = read_dat(Cursor::new("5 2 5\n"), None).unwrap();
        assert_eq!(t.transaction(0), &[2, 5]);
    }

    #[test]
    fn empty_input() {
        let t = read_dat(Cursor::new(""), None).unwrap();
        assert_eq!(t.n_transactions(), 0);
        assert_eq!(t.n_items(), 0);
    }
}
