//! IBM Quest market-basket synthetic data generator (Rust reimplementation).
//!
//! The paper uses the Quest generator for its Fig. 6 workload and the
//! (unavailable) BMS datasets for everything else; this module provides the
//! same stochastic model so both can be simulated:
//!
//! * A pool of `n_patterns` *maximal potential itemsets*. Pattern sizes are
//!   `Poisson(avg_pattern_len - 1) + 1`; a fraction [`QuestConfig::correlation`]
//!   of each pattern's items is drawn from the previous pattern, the rest
//!   uniformly from the universe — this is the correlation knob varied in
//!   Fig. 6.
//! * Each pattern has an `Exp(1)` weight (normalized) and a *corruption
//!   level* `c ~ Normal(corruption_mean, corruption_sd)` clamped to [0, 1].
//! * Transactions draw a size `Poisson(avg_txn_len - 1) + 1`, then fill up
//!   by sampling patterns by weight and dropping items from the chosen
//!   pattern while successive uniform draws fall below `c` (per Agrawal &
//!   Srikant, VLDB'94). An oversized final pattern is included anyway with
//!   probability 1/2, otherwise truncated.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rand_ext::{exponential1, normal, poisson, sample_cumulative, sample_distinct};
use crate::transaction::{ItemId, TransactionSet};

/// Configuration of the Quest-style generator.
#[derive(Clone, Debug)]
pub struct QuestConfig {
    /// Number of transactions to generate.
    pub n_transactions: usize,
    /// Size of the item universe.
    pub n_items: usize,
    /// Mean transaction length.
    pub avg_txn_len: f64,
    /// Hard cap on transaction length (`usize::MAX` to disable). The BMS
    /// profiles use the paper's reported maximum lengths.
    pub max_txn_len: usize,
    /// Number of maximal potential itemsets ("patterns").
    pub n_patterns: usize,
    /// Mean pattern length.
    pub avg_pattern_len: f64,
    /// Fraction of each pattern's items drawn from the previous pattern
    /// (the Fig. 6 correlation knob), in [0, 1].
    pub correlation: f64,
    /// Mean corruption level (0.5 in the original generator).
    pub corruption_mean: f64,
    /// Std-dev of the corruption level (0.1 in the original generator).
    pub corruption_sd: f64,
    /// Zipf exponent for item popularity inside patterns: 0.0 (default)
    /// draws pattern items uniformly, as the original generator does;
    /// larger values concentrate patterns on a popular head, making the
    /// item-frequency distribution heavier-tailed (closer to real
    /// clickstreams — raising this pushes the Table II re-identification
    /// magnitudes toward the paper's).
    pub item_skew: f64,
    /// Probability that a transaction is a heavy-tail "session": its target
    /// size is drawn exponentially with mean [`QuestConfig::tail_len_mean`]
    /// instead of the Poisson body. Real clickstreams (the BMS datasets)
    /// have such tails — maximum lengths of 267 and 161 against means of
    /// 2.5 and 5.0. Zero disables the tail.
    pub tail_prob: f64,
    /// Mean length of heavy-tail transactions.
    pub tail_len_mean: f64,
}

impl Default for QuestConfig {
    fn default() -> Self {
        QuestConfig {
            n_transactions: 10_000,
            n_items: 1_000,
            avg_txn_len: 10.0,
            max_txn_len: usize::MAX,
            n_patterns: 100,
            avg_pattern_len: 4.0,
            correlation: 0.5,
            corruption_mean: 0.5,
            corruption_sd: 0.1,
            item_skew: 0.0,
            tail_prob: 0.0,
            tail_len_mean: 50.0,
        }
    }
}

impl QuestConfig {
    /// Validates the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_items == 0 {
            return Err("n_items must be positive".into());
        }
        if self.n_patterns == 0 {
            return Err("n_patterns must be positive".into());
        }
        if self.avg_txn_len < 1.0 {
            return Err("avg_txn_len must be >= 1".into());
        }
        if self.avg_pattern_len < 1.0 {
            return Err("avg_pattern_len must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.correlation) {
            return Err("correlation must be in [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.corruption_mean) {
            return Err("corruption_mean must be in [0, 1]".into());
        }
        if self.item_skew < 0.0 || !self.item_skew.is_finite() {
            return Err("item_skew must be finite and non-negative".into());
        }
        if !(0.0..=1.0).contains(&self.tail_prob) {
            return Err("tail_prob must be in [0, 1]".into());
        }
        if self.tail_prob > 0.0 && self.tail_len_mean < 1.0 {
            return Err("tail_len_mean must be >= 1".into());
        }
        Ok(())
    }
}

/// A generated pattern: items, sampling weight and corruption level.
#[derive(Clone, Debug)]
struct Pattern {
    items: Vec<ItemId>,
    corruption: f64,
}

/// The Quest-style generator. Deterministic given (config, seed).
///
/// # Examples
///
/// ```
/// use cahd_data::{QuestConfig, QuestGenerator};
///
/// let cfg = QuestConfig {
///     n_transactions: 100,
///     n_items: 50,
///     avg_txn_len: 4.0,
///     ..Default::default()
/// };
/// let data = QuestGenerator::new(cfg, 42).generate();
/// assert_eq!(data.n_transactions(), 100);
/// assert!(data.iter().all(|t| !t.is_empty()));
/// ```
pub struct QuestGenerator {
    config: QuestConfig,
    rng: StdRng,
}

impl QuestGenerator {
    /// Creates a generator for `config` seeded with `seed`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`QuestConfig::validate`]).
    pub fn new(config: QuestConfig, seed: u64) -> Self {
        if let Err(e) = config.validate() {
            // cahd-lint: allow(L003, reason = "documented '# Panics' constructor contract; the CLI validates user configs before construction")
            panic!("invalid Quest configuration: {e}");
        }
        QuestGenerator {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates the full transaction set.
    pub fn generate(&mut self) -> TransactionSet {
        let (patterns, cum_weights) = self.make_patterns();
        let cfg = self.config.clone();
        let mut rows: Vec<Vec<ItemId>> = Vec::with_capacity(cfg.n_transactions);
        let mut txn: Vec<ItemId> = Vec::new();
        for _ in 0..cfg.n_transactions {
            txn.clear();
            let heavy = cfg.tail_prob > 0.0 && self.rng.gen::<f64>() < cfg.tail_prob;
            let size = if heavy {
                ((exponential1(&mut self.rng) * cfg.tail_len_mean).round() as usize)
                    .max(2)
                    .min(cfg.max_txn_len)
            } else {
                (poisson(&mut self.rng, cfg.avg_txn_len - 1.0) as usize + 1).min(cfg.max_txn_len)
            };
            // Fill the transaction with (corrupted) patterns.
            let mut guard = 0;
            let max_draws = 64.max(size * 4);
            while txn.len() < size && guard < max_draws {
                guard += 1;
                let p = &patterns[sample_cumulative(&mut self.rng, &cum_weights)];
                let picked = corrupt(&mut self.rng, &p.items, p.corruption);
                if picked.is_empty() {
                    continue;
                }
                if txn.len() + picked.len() > size {
                    // Oversize: include anyway half the time, else truncate
                    // to the remaining space (original generator behavior).
                    if self.rng.gen::<bool>() {
                        txn.extend_from_slice(&picked);
                    } else {
                        let room = size - txn.len();
                        txn.extend_from_slice(&picked[..room]);
                    }
                    break;
                }
                txn.extend_from_slice(&picked);
            }
            if txn.is_empty() {
                // Degenerate corruption can empty every draw; fall back to
                // one uniform item so no transaction is empty.
                txn.push(self.rng.gen_range(0..cfg.n_items as u32));
            }
            txn.sort_unstable();
            txn.dedup();
            txn.truncate(cfg.max_txn_len);
            rows.push(txn.clone());
        }
        TransactionSet::from_rows(&rows, cfg.n_items)
    }

    /// Builds the pattern pool and the cumulative weight table.
    fn make_patterns(&mut self) -> (Vec<Pattern>, Vec<f64>) {
        let cfg = self.config.clone();
        // Zipf cumulative table for skewed item choice (None = uniform).
        let zipf_cum: Option<Vec<f64>> = (cfg.item_skew > 0.0).then(|| {
            let mut acc = 0.0;
            (0..cfg.n_items)
                .map(|i| {
                    acc += 1.0 / ((i + 1) as f64).powf(cfg.item_skew);
                    acc
                })
                .collect()
        });
        let draw_item = |rng: &mut StdRng| -> ItemId {
            match &zipf_cum {
                None => rng.gen_range(0..cfg.n_items as u32),
                Some(cum) => sample_cumulative(rng, cum) as ItemId,
            }
        };
        let mut patterns: Vec<Pattern> = Vec::with_capacity(cfg.n_patterns);
        let mut cum = Vec::with_capacity(cfg.n_patterns);
        let mut total = 0.0f64;
        for i in 0..cfg.n_patterns {
            let len =
                (poisson(&mut self.rng, cfg.avg_pattern_len - 1.0) as usize + 1).min(cfg.n_items);
            let mut items: Vec<ItemId> = Vec::with_capacity(len);
            if i > 0 && cfg.correlation > 0.0 {
                let prev = &patterns[i - 1].items;
                let from_prev = ((len as f64 * cfg.correlation).round() as usize)
                    .min(prev.len())
                    .min(len);
                // Random distinct positions of the previous pattern.
                for idx in sample_distinct(&mut self.rng, prev.len(), from_prev) {
                    items.push(prev[idx as usize]);
                }
            }
            while items.len() < len {
                let it = draw_item(&mut self.rng);
                if !items.contains(&it) {
                    items.push(it);
                }
            }
            let corruption =
                normal(&mut self.rng, cfg.corruption_mean, cfg.corruption_sd).clamp(0.0, 1.0);
            let weight = exponential1(&mut self.rng);
            total += weight;
            cum.push(total);
            patterns.push(Pattern { items, corruption });
        }
        (patterns, cum)
    }
}

/// Drops items from `items` while successive uniform draws are below `c`
/// (the Quest corruption step); the surviving items are returned in a
/// random-removal order.
fn corrupt<R: Rng + ?Sized>(rng: &mut R, items: &[ItemId], c: f64) -> Vec<ItemId> {
    let mut out = items.to_vec();
    while !out.is_empty() && rng.gen::<f64>() < c {
        let k = rng.gen_range(0..out.len());
        out.swap_remove(k);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> QuestConfig {
        QuestConfig {
            n_transactions: 2_000,
            n_items: 200,
            avg_txn_len: 5.0,
            n_patterns: 40,
            avg_pattern_len: 3.0,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = QuestGenerator::new(small_config(), 42).generate();
        let b = QuestGenerator::new(small_config(), 42).generate();
        let c = QuestGenerator::new(small_config(), 43).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shape_and_no_empty_transactions() {
        let t = QuestGenerator::new(small_config(), 1).generate();
        assert_eq!(t.n_transactions(), 2_000);
        assert_eq!(t.n_items(), 200);
        assert!((0..t.n_transactions()).all(|i| t.len_of(i) >= 1));
    }

    #[test]
    fn mean_length_near_target() {
        let t = QuestGenerator::new(small_config(), 5).generate();
        let mean = t.total_items() as f64 / t.n_transactions() as f64;
        // Corruption and dedup bias the mean down somewhat; accept a band.
        assert!(mean > 2.0 && mean < 7.5, "mean length {mean}");
    }

    #[test]
    fn max_len_respected() {
        let cfg = QuestConfig {
            max_txn_len: 4,
            ..small_config()
        };
        let t = QuestGenerator::new(cfg, 2).generate();
        assert!((0..t.n_transactions()).all(|i| t.len_of(i) <= 4));
    }

    #[test]
    fn high_correlation_reduces_distinct_items_used() {
        // With correlation 0.9 patterns reuse the same items, so fewer
        // distinct items should appear than with correlation 0.0.
        let mk = |corr: f64| {
            let cfg = QuestConfig {
                correlation: corr,
                ..small_config()
            };
            let t = QuestGenerator::new(cfg, 9).generate();
            t.item_supports().iter().filter(|&&s| s > 0).count()
        };
        let low = mk(0.0);
        let high = mk(0.9);
        assert!(high < low, "high {high} !< low {low}");
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(QuestConfig {
            n_items: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(QuestConfig {
            correlation: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(QuestConfig {
            avg_txn_len: 0.2,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(small_config().validate().is_ok());
    }

    #[test]
    fn item_skew_concentrates_popularity() {
        let uniform = QuestGenerator::new(small_config(), 7).generate();
        let skewed = QuestGenerator::new(
            QuestConfig {
                item_skew: 1.2,
                ..small_config()
            },
            7,
        )
        .generate();
        let top = |t: &crate::TransactionSet| *t.item_supports().iter().max().unwrap();
        // Pattern weights already concentrate the uniform case; skew must
        // push the head meaningfully further.
        assert!(
            top(&skewed) as f64 > 1.3 * top(&uniform) as f64,
            "skewed top {} vs uniform top {}",
            top(&skewed),
            top(&uniform)
        );
    }

    #[test]
    fn invalid_skew_rejected() {
        assert!(QuestConfig {
            item_skew: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(QuestConfig {
            item_skew: f64::NAN,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn corruption_one_still_terminates() {
        let cfg = QuestConfig {
            corruption_mean: 1.0,
            corruption_sd: 0.0,
            n_transactions: 100,
            ..small_config()
        };
        let t = QuestGenerator::new(cfg, 3).generate();
        assert_eq!(t.n_transactions(), 100);
        assert!((0..100).all(|i| t.len_of(i) >= 1));
    }
}
