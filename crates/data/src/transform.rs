//! Dataset transformation utilities.
//!
//! Real deployments rarely anonymize a log verbatim: they subsample for
//! experimentation, split off held-out sets for utility evaluation, drop
//! rare items, or merge logs from several sources. These helpers keep such
//! plumbing out of application code; each returns a new
//! [`TransactionSet`] and, where transaction identity matters, the mapping
//! back to the original indices.

use rand::Rng;

use crate::transaction::{ItemId, TransactionSet};

/// Uniformly samples `k` transactions without replacement (seeded by the
/// caller's RNG). Returns the sample and the original indices, in
/// ascending original order. `k >= n` returns a full copy.
pub fn sample_transactions<R: Rng + ?Sized>(
    data: &TransactionSet,
    k: usize,
    rng: &mut R,
) -> (TransactionSet, Vec<u32>) {
    let n = data.n_transactions();
    if k >= n {
        return (data.clone(), (0..n as u32).collect());
    }
    let mut idx: Vec<u32> = (0..n as u32).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx.sort_unstable();
    let rows: Vec<Vec<ItemId>> = idx
        .iter()
        .map(|&t| data.transaction(t as usize).to_vec())
        .collect();
    (TransactionSet::from_rows(&rows, data.n_items()), idx)
}

/// Keeps only transactions satisfying `keep`; returns the filtered set and
/// the surviving original indices.
pub fn filter_transactions(
    data: &TransactionSet,
    mut keep: impl FnMut(usize, &[ItemId]) -> bool,
) -> (TransactionSet, Vec<u32>) {
    let mut rows = Vec::new();
    let mut idx = Vec::new();
    for t in 0..data.n_transactions() {
        let items = data.transaction(t);
        if keep(t, items) {
            rows.push(items.to_vec());
            idx.push(t as u32);
        }
    }
    (TransactionSet::from_rows(&rows, data.n_items()), idx)
}

/// Removes items with support below `min_support` from every transaction
/// (a standard preprocessing step before mining). The item universe is
/// unchanged; transactions may become empty.
pub fn prune_rare_items(data: &TransactionSet, min_support: usize) -> TransactionSet {
    let supports = data.item_supports();
    let rows: Vec<Vec<ItemId>> = data
        .iter()
        .map(|t| {
            t.iter()
                .copied()
                .filter(|&i| supports[i as usize] >= min_support)
                .collect()
        })
        .collect();
    TransactionSet::from_rows(&rows, data.n_items())
}

/// Splits into a (train, test) pair with `test_fraction` of transactions
/// in the test set, sampled uniformly. Returns
/// `((train, train_ids), (test, test_ids))`.
#[allow(clippy::type_complexity)]
pub fn train_test_split<R: Rng + ?Sized>(
    data: &TransactionSet,
    test_fraction: f64,
    rng: &mut R,
) -> ((TransactionSet, Vec<u32>), (TransactionSet, Vec<u32>)) {
    assert!(
        (0.0..=1.0).contains(&test_fraction),
        "test_fraction must be in [0, 1]"
    );
    let n = data.n_transactions();
    let k = (n as f64 * test_fraction).round() as usize;
    let (test, test_ids) = sample_transactions(data, k, rng);
    let mut in_test = vec![false; n];
    for &t in &test_ids {
        in_test[t as usize] = true;
    }
    let (train, train_ids) = filter_transactions(data, |t, _| !in_test[t]);
    ((train, train_ids), (test, test_ids))
}

/// Concatenates several logs over the same item universe.
///
/// # Panics
/// Panics if the item universes differ.
pub fn concat(parts: &[&TransactionSet]) -> TransactionSet {
    let Some(first) = parts.first() else {
        return TransactionSet::from_rows(&[], 0);
    };
    let d = first.n_items();
    let mut rows = Vec::new();
    for part in parts {
        assert_eq!(part.n_items(), d, "item universes must match");
        rows.extend(part.iter().map(<[u32]>::to_vec));
    }
    TransactionSet::from_rows(&rows, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data() -> TransactionSet {
        TransactionSet::from_rows(
            &(0..20u32)
                .map(|i| vec![i % 5, 5 + i % 3])
                .collect::<Vec<_>>(),
            10,
        )
    }

    #[test]
    fn sample_is_subset_with_mapping() {
        let d = data();
        let mut rng = StdRng::seed_from_u64(1);
        let (s, ids) = sample_transactions(&d, 7, &mut rng);
        assert_eq!(s.n_transactions(), 7);
        assert_eq!(ids.len(), 7);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        for (k, &orig) in ids.iter().enumerate() {
            assert_eq!(s.transaction(k), d.transaction(orig as usize));
        }
    }

    #[test]
    fn sample_all_is_identity() {
        let d = data();
        let mut rng = StdRng::seed_from_u64(1);
        let (s, ids) = sample_transactions(&d, 100, &mut rng);
        assert_eq!(s, d);
        assert_eq!(ids.len(), 20);
    }

    #[test]
    fn filter_keeps_matching() {
        let d = data();
        let (f, ids) = filter_transactions(&d, |_, items| items.contains(&0));
        assert_eq!(f.n_transactions(), 4); // i % 5 == 0: 0, 5, 10, 15
        assert_eq!(ids, vec![0, 5, 10, 15]);
    }

    #[test]
    fn prune_removes_rare() {
        let d = TransactionSet::from_rows(&[vec![0, 1], vec![0, 2], vec![0]], 3);
        let p = prune_rare_items(&d, 2);
        assert_eq!(p.transaction(0), &[0]);
        assert_eq!(p.transaction(1), &[0]);
        assert_eq!(p.n_items(), 3); // universe unchanged
    }

    #[test]
    fn split_partitions() {
        let d = data();
        let mut rng = StdRng::seed_from_u64(2);
        let ((train, train_ids), (test, test_ids)) = train_test_split(&d, 0.25, &mut rng);
        assert_eq!(test.n_transactions(), 5);
        assert_eq!(train.n_transactions(), 15);
        let mut all: Vec<u32> = train_ids.iter().chain(&test_ids).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<u32>>());
    }

    #[test]
    fn concat_appends() {
        let d = data();
        let c = concat(&[&d, &d]);
        assert_eq!(c.n_transactions(), 40);
        assert_eq!(c.transaction(20), d.transaction(0));
        assert_eq!(concat(&[]).n_transactions(), 0);
    }

    #[test]
    #[should_panic(expected = "universes must match")]
    fn concat_rejects_mismatched_universe() {
        let a = TransactionSet::from_rows(&[vec![0]], 2);
        let b = TransactionSet::from_rows(&[vec![0]], 3);
        concat(&[&a, &b]);
    }
}
