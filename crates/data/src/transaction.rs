//! The transaction (basket) data model.

use cahd_sparse::{CsrMatrix, Permutation};

/// An item identifier: a column index of the binary transaction matrix.
pub type ItemId = u32;

/// A set of transactions over an item universe `0..n_items`.
///
/// Thin wrapper around a [`CsrMatrix`]: row `i` lists the (sorted, distinct)
/// items of transaction `i`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransactionSet {
    matrix: CsrMatrix,
}

impl TransactionSet {
    /// Builds from per-transaction item lists (sorted/de-duplicated
    /// internally).
    ///
    /// # Panics
    /// Panics if any item id is `>= n_items`.
    pub fn from_rows(rows: &[Vec<ItemId>], n_items: usize) -> Self {
        TransactionSet {
            matrix: CsrMatrix::from_rows(rows, n_items),
        }
    }

    /// Builds from an existing binary matrix.
    pub fn from_matrix(matrix: CsrMatrix) -> Self {
        TransactionSet { matrix }
    }

    /// Number of transactions `n`.
    #[inline]
    pub fn n_transactions(&self) -> usize {
        self.matrix.n_rows()
    }

    /// Size `d` of the item universe.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.matrix.n_cols()
    }

    /// Total number of (transaction, item) pairs.
    #[inline]
    pub fn total_items(&self) -> usize {
        self.matrix.nnz()
    }

    /// The sorted item list of transaction `t`.
    #[inline]
    pub fn transaction(&self, t: usize) -> &[ItemId] {
        self.matrix.row(t)
    }

    /// Length of transaction `t`.
    #[inline]
    pub fn len_of(&self, t: usize) -> usize {
        self.matrix.row_len(t)
    }

    /// Whether transaction `t` contains `item`.
    pub fn contains(&self, t: usize, item: ItemId) -> bool {
        self.matrix.get(t, item)
    }

    /// Iterates over transactions as sorted item slices.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[ItemId]> + '_ {
        self.matrix.rows()
    }

    /// The underlying binary matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.matrix
    }

    /// Support (number of containing transactions) of every item.
    pub fn item_supports(&self) -> Vec<usize> {
        self.matrix.col_counts()
    }

    /// The inverted index: item -> sorted list of containing transactions.
    pub fn inverted_index(&self) -> CsrMatrix {
        self.matrix.transpose()
    }

    /// Reorders transactions: transaction `t` of the result is transaction
    /// `perm.new_to_old(t)` of `self`. Item ids are unchanged.
    pub fn permute(&self, perm: &Permutation) -> TransactionSet {
        TransactionSet {
            matrix: self.matrix.permute_rows(perm),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TransactionSet {
        TransactionSet::from_rows(&[vec![0, 2], vec![1, 2], vec![]], 3)
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.n_transactions(), 3);
        assert_eq!(t.n_items(), 3);
        assert_eq!(t.total_items(), 4);
        assert_eq!(t.transaction(0), &[0, 2]);
        assert_eq!(t.len_of(2), 0);
        assert!(t.contains(1, 2));
        assert!(!t.contains(1, 0));
    }

    #[test]
    fn supports_and_inverted_index() {
        let t = sample();
        assert_eq!(t.item_supports(), vec![1, 1, 2]);
        let inv = t.inverted_index();
        assert_eq!(inv.row(2), &[0, 1]);
    }

    #[test]
    fn permute_reorders_transactions() {
        let t = sample();
        let p = Permutation::identity(3).reversed();
        let tp = t.permute(&p);
        assert_eq!(tp.transaction(0), &[] as &[u32]);
        assert_eq!(tp.transaction(2), &[0, 2]);
    }

    #[test]
    fn iter_matches_rows() {
        let t = sample();
        let lens: Vec<usize> = t.iter().map(<[u32]>::len).collect();
        assert_eq!(lens, vec![2, 2, 0]);
    }
}
