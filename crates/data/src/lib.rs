//! Transaction data model, I/O, statistics and synthetic generation.
//!
//! The paper evaluates on two retail clickstream datasets (BMS-WebView-1/2)
//! and one synthetic workload produced by the IBM Quest market-basket
//! generator. The real datasets are not redistributable, so this crate
//! ships:
//!
//! * [`transaction::TransactionSet`] — the binary transaction matrix with
//!   the usual accessors (`cahd-sparse` CSR underneath),
//! * [`io`] — readers/writers for the standard `.dat` basket format, so the
//!   real BMS files can be dropped in when available,
//! * [`quest`] — a Rust reimplementation of the Quest generator's
//!   stochastic model (weighted maximal potential itemsets, Poisson
//!   lengths, pattern-to-pattern correlation, corruption levels),
//! * [`profiles`] — ready-made configurations that mimic the published
//!   characteristics of BMS1, BMS2 (Table I) and the Fig. 6 workload,
//! * [`sensitive`] — strategies for selecting the sensitive item set `S`,
//! * [`stats`] — dataset characteristic reports (Table I),
//! * [`weighted`] — count-valued (non-binary) transactions, realizing the
//!   paper's future-work direction.

pub mod io;
pub mod profiles;
pub mod quest;
pub mod rand_ext;
pub mod sensitive;
pub mod stats;
pub mod transaction;
pub mod transform;
pub mod weighted;

pub use quest::{QuestConfig, QuestGenerator};
pub use sensitive::SensitiveSet;
pub use stats::DatasetStats;
pub use transaction::{ItemId, TransactionSet};
pub use weighted::WeightedTransactionSet;
