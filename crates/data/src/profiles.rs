//! Ready-made dataset profiles mirroring the paper's workloads.
//!
//! The BMS-WebView datasets are not redistributable; these profiles
//! configure the Quest-style generator to match their published
//! characteristics (Table I): transaction count, item universe, average
//! and maximum transaction length. Sparsity and the skewed, correlated
//! item-usage structure come from the Quest model itself. All profiles are
//! deterministic given a seed and support a `scale` factor on the
//! transaction count so the experiment suite can be run quickly.

use crate::quest::{QuestConfig, QuestGenerator};
use crate::transaction::TransactionSet;

/// Quest configuration matching BMS-WebView-1 (59,602 transactions, 497
/// items, avg length 2.5, max length 267).
pub fn bms1_config(scale: f64) -> QuestConfig {
    QuestConfig {
        n_transactions: scaled(59_602, scale),
        n_items: 497,
        avg_txn_len: 2.1, // calibrated: dedup/corruption shrink baskets
        max_txn_len: 267,
        n_patterns: 450,
        avg_pattern_len: 2.5,
        correlation: 0.5,
        corruption_mean: 0.5,
        corruption_sd: 0.1,
        item_skew: 0.0,
        tail_prob: 0.004,
        tail_len_mean: 55.0,
    }
}

/// Quest configuration matching BMS-WebView-2 (77,512 transactions, 3,340
/// items, avg length 5.0, max length 161).
pub fn bms2_config(scale: f64) -> QuestConfig {
    QuestConfig {
        n_transactions: scaled(77_512, scale),
        n_items: 3_340,
        avg_txn_len: 4.0,
        max_txn_len: 161,
        n_patterns: 800,
        avg_pattern_len: 3.5,
        correlation: 0.5,
        corruption_mean: 0.5,
        corruption_sd: 0.1,
        item_skew: 0.0,
        tail_prob: 0.008,
        tail_len_mean: 45.0,
    }
}

/// The Fig. 6 workload: a square 1000 x 1000 matrix with ~20 items per
/// transaction and a controllable correlation degree (0.1 / 0.5 / 0.9 in
/// the paper).
pub fn fig6_config(correlation: f64) -> QuestConfig {
    QuestConfig {
        n_transactions: 1_000,
        n_items: 1_000,
        avg_txn_len: 20.0,
        max_txn_len: usize::MAX,
        n_patterns: 60,
        avg_pattern_len: 8.0,
        correlation,
        corruption_mean: 0.35,
        corruption_sd: 0.1,
        item_skew: 0.0,
        tail_prob: 0.0,
        tail_len_mean: 50.0,
    }
}

/// A deliberately dense workload for the similarity-kernel benchmarks:
/// a narrow 400-item universe with ~60 items per transaction, so nearly
/// every QID row crosses the adaptive kernel's density threshold (see
/// `cahd_core::kernel`) and candidate scoring runs on the packed-bitset
/// path. `scale` applies to the 16,000-transaction baseline.
pub fn dense_config(scale: f64) -> QuestConfig {
    QuestConfig {
        n_transactions: scaled(16_000, scale),
        n_items: 400,
        avg_txn_len: 60.0,
        max_txn_len: usize::MAX,
        n_patterns: 40,
        avg_pattern_len: 12.0,
        correlation: 0.5,
        corruption_mean: 0.35,
        corruption_sd: 0.1,
        item_skew: 0.0,
        tail_prob: 0.0,
        tail_len_mean: 50.0,
    }
}

/// A Quest workload two orders of magnitude past the BMS references:
/// four million transactions over a two-million-item universe (one
/// million rows at the full-mode snapshot scale 0.25) — the shape of a
/// URL-universe clickstream. This is what the implicit row-graph
/// backend exists for: materializing `A x A^T` here means hundreds of
/// millions of edges, while the inverted index walks the same graph
/// from ~tens of MB of postings. The universe is wide and the rows
/// short and untailed on purpose: the implicit backend's one-shot exact
/// degree pass costs `sum(support^2)` over the items (its traversals
/// are segment-deduplicated down to O(nnz) per sweep), so item supports
/// must grow slowly with the row count for million-row orderings to
/// stay in seconds.
pub fn quest_xl_config(scale: f64) -> QuestConfig {
    QuestConfig {
        n_transactions: scaled(4_000_000, scale),
        n_items: 2_000_000,
        avg_txn_len: 4.0,
        max_txn_len: 24,
        n_patterns: 100_000,
        avg_pattern_len: 3.0,
        correlation: 0.5,
        corruption_mean: 0.5,
        corruption_sd: 0.1,
        item_skew: 0.0,
        tail_prob: 0.0,
        tail_len_mean: 50.0,
    }
}

/// Generates a BMS1-like dataset.
pub fn bms1_like(scale: f64, seed: u64) -> TransactionSet {
    QuestGenerator::new(bms1_config(scale), seed).generate()
}

/// Generates a BMS2-like dataset.
pub fn bms2_like(scale: f64, seed: u64) -> TransactionSet {
    QuestGenerator::new(bms2_config(scale), seed).generate()
}

/// Generates the Fig. 6 workload for a given correlation degree.
pub fn fig6_like(correlation: f64, seed: u64) -> TransactionSet {
    QuestGenerator::new(fig6_config(correlation), seed).generate()
}

/// Generates the dense kernel-benchmark workload.
pub fn dense_like(scale: f64, seed: u64) -> TransactionSet {
    QuestGenerator::new(dense_config(scale), seed).generate()
}

/// Generates the million-row implicit-ordering workload.
pub fn quest_xl_like(scale: f64, seed: u64) -> TransactionSet {
    QuestGenerator::new(quest_xl_config(scale), seed).generate()
}

fn scaled(n: usize, scale: f64) -> usize {
    assert!(scale > 0.0, "scale must be positive");
    ((n as f64 * scale).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DatasetStats;

    #[test]
    fn bms1_profile_matches_table1_shape() {
        let t = bms1_like(0.05, 7);
        let s = DatasetStats::compute(&t);
        assert_eq!(s.transactions, (59_602f64 * 0.05).round() as usize);
        assert_eq!(s.items, 497);
        assert!(s.max_length <= 267);
        assert!(
            s.avg_length > 1.5 && s.avg_length < 4.0,
            "avg {}",
            s.avg_length
        );
    }

    #[test]
    fn bms2_profile_matches_table1_shape() {
        let t = bms2_like(0.03, 7);
        let s = DatasetStats::compute(&t);
        assert_eq!(s.items, 3_340);
        assert!(s.max_length <= 161);
        assert!(
            s.avg_length > 3.0 && s.avg_length < 7.5,
            "avg {}",
            s.avg_length
        );
    }

    #[test]
    fn fig6_profile_is_square_and_dense_enough() {
        let t = fig6_like(0.5, 3);
        let s = DatasetStats::compute(&t);
        assert_eq!(s.transactions, 1_000);
        assert_eq!(s.items, 1_000);
        assert!(
            s.avg_length > 10.0 && s.avg_length < 30.0,
            "avg {}",
            s.avg_length
        );
    }

    #[test]
    fn dense_profile_crosses_the_kernel_density_threshold() {
        let t = dense_like(0.0125, 3);
        let s = DatasetStats::compute(&t);
        assert_eq!(s.transactions, 200);
        assert_eq!(s.items, 400);
        // words = ceil(400 / 64) = 7; dense eligibility needs 4*len >= 7,
        // i.e. rows of >= 2 items — the average must sit far above that.
        assert!(s.avg_length > 20.0, "avg {}", s.avg_length);
    }

    #[test]
    fn quest_xl_profile_is_short_row_and_wide() {
        // A 1/400 slice of the full-scale workload keeps the test cheap
        // while pinning the shape knobs that bound implicit-enumeration
        // cost: short untailed rows over a wide universe.
        let t = quest_xl_like(0.25 / 400.0, 7);
        let s = DatasetStats::compute(&t);
        assert_eq!(s.transactions, 2_500);
        assert_eq!(s.items, 2_000_000);
        assert!(s.max_length <= 24);
        assert!(
            s.avg_length > 2.0 && s.avg_length < 7.0,
            "avg {}",
            s.avg_length
        );
    }

    #[test]
    fn scale_changes_only_transaction_count() {
        let a = bms1_like(0.02, 1);
        let b = bms1_like(0.04, 1);
        assert_eq!(b.n_transactions(), 2 * a.n_transactions());
        assert_eq!(a.n_items(), b.n_items());
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        bms1_like(0.0, 1);
    }
}
