//! Count-valued (non-binary) transaction data.
//!
//! The paper's conclusions name "anonymization of high-dimensional data for
//! non-binary databases" as future work, motivated by the Netflix Prize
//! ratings release. A [`WeightedTransactionSet`] attaches a positive count
//! (quantity, rating, frequency) to every (transaction, item) pair while
//! keeping the binary *pattern* — which everything RCM-related operates
//! on — directly accessible.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use cahd_sparse::{CsrMatrix, Permutation};

use crate::transaction::{ItemId, TransactionSet};

/// Transactions whose items carry positive integer counts.
///
/// Stored as the binary CSR pattern plus a weight array aligned with the
/// pattern's index array: `weights[k]` is the count of `indices[k]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedTransactionSet {
    pattern: CsrMatrix,
    weights: Vec<u32>,
}

impl WeightedTransactionSet {
    /// Builds from per-transaction `(item, count)` lists. Duplicate items
    /// within a transaction have their counts summed; zero-count entries
    /// are dropped.
    ///
    /// # Panics
    /// Panics if an item id is `>= n_items`.
    pub fn from_rows(rows: &[Vec<(ItemId, u32)>], n_items: usize) -> Self {
        let mut pattern_rows: Vec<Vec<ItemId>> = Vec::with_capacity(rows.len());
        let mut per_row: Vec<Vec<(ItemId, u32)>> = Vec::with_capacity(rows.len());
        for row in rows {
            let mut r: Vec<(ItemId, u32)> = row.iter().copied().filter(|&(_, c)| c > 0).collect();
            r.sort_unstable();
            // Merge duplicates.
            let mut merged: Vec<(ItemId, u32)> = Vec::with_capacity(r.len());
            for (item, c) in r {
                match merged.last_mut() {
                    Some((last, lc)) if *last == item => *lc += c,
                    _ => merged.push((item, c)),
                }
            }
            pattern_rows.push(merged.iter().map(|&(i, _)| i).collect());
            per_row.push(merged);
        }
        let pattern = CsrMatrix::from_rows(&pattern_rows, n_items);
        let weights: Vec<u32> = per_row.into_iter().flatten().map(|(_, c)| c).collect();
        debug_assert_eq!(weights.len(), pattern.nnz());
        WeightedTransactionSet { pattern, weights }
    }

    /// Number of transactions.
    #[inline]
    pub fn n_transactions(&self) -> usize {
        self.pattern.n_rows()
    }

    /// Size of the item universe.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.pattern.n_cols()
    }

    /// The sorted items of transaction `t` (the binary view).
    #[inline]
    pub fn items(&self, t: usize) -> &[ItemId] {
        self.pattern.row(t)
    }

    /// The counts of transaction `t`, aligned with [`Self::items`].
    #[inline]
    pub fn counts(&self, t: usize) -> &[u32] {
        &self.weights[self.pattern.indptr()[t]..self.pattern.indptr()[t + 1]]
    }

    /// `(item, count)` pairs of transaction `t`.
    pub fn transaction(&self, t: usize) -> impl ExactSizeIterator<Item = (ItemId, u32)> + '_ {
        self.items(t)
            .iter()
            .copied()
            .zip(self.counts(t).iter().copied())
    }

    /// The count of `item` in transaction `t` (0 if absent).
    pub fn count_of(&self, t: usize, item: ItemId) -> u32 {
        match self.items(t).binary_search(&item) {
            Ok(k) => self.counts(t)[k],
            Err(_) => 0,
        }
    }

    /// The binary occurrence pattern (what RCM and the privacy model see).
    pub fn pattern(&self) -> &CsrMatrix {
        &self.pattern
    }

    /// Drops the counts, keeping presence only.
    pub fn to_binary(&self) -> TransactionSet {
        TransactionSet::from_matrix(self.pattern.clone())
    }

    /// Total quantity across all transactions, per item.
    pub fn item_quantities(&self) -> Vec<u64> {
        let mut q = vec![0u64; self.n_items()];
        for t in 0..self.n_transactions() {
            for (item, c) in self.transaction(t) {
                q[item as usize] += c as u64;
            }
        }
        q
    }

    /// Reorders transactions (see
    /// [`TransactionSet::permute`](crate::TransactionSet::permute)).
    pub fn permute(&self, perm: &Permutation) -> WeightedTransactionSet {
        let rows: Vec<Vec<(ItemId, u32)>> = (0..self.n_transactions())
            .map(|new_t| self.transaction(perm.new_to_old(new_t)).collect())
            .collect();
        WeightedTransactionSet::from_rows(&rows, self.n_items())
    }
}

/// Reads the weighted `.wdat` format: one transaction per line of
/// whitespace-separated `item:count` tokens (bare `item` means count 1).
/// Empty lines and `#` comments are skipped.
pub fn read_wdat<R: BufRead>(
    reader: R,
    n_items: Option<usize>,
) -> io::Result<WeightedTransactionSet> {
    let mut rows: Vec<Vec<(ItemId, u32)>> = Vec::new();
    let mut max_id: u64 = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut row = Vec::new();
        for tok in trimmed.split_ascii_whitespace() {
            let (item_s, count_s) = match tok.split_once(':') {
                Some((i, c)) => (i, Some(c)),
                None => (tok, None),
            };
            let bad = |what: &str| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad {what} in {tok:?}", lineno + 1),
                )
            };
            let item: u32 = item_s.parse().map_err(|_| bad("item id"))?;
            let count: u32 = match count_s {
                Some(c) => c.parse().map_err(|_| bad("count"))?,
                None => 1,
            };
            max_id = max_id.max(item as u64);
            row.push((item, count));
        }
        rows.push(row);
    }
    let inferred = if rows.iter().all(std::vec::Vec::is_empty) {
        0
    } else {
        max_id as usize + 1
    };
    let d = n_items.unwrap_or(0).max(inferred);
    Ok(WeightedTransactionSet::from_rows(&rows, d))
}

/// Reads a `.wdat` file from disk.
pub fn read_wdat_file<P: AsRef<Path>>(
    path: P,
    n_items: Option<usize>,
) -> io::Result<WeightedTransactionSet> {
    read_wdat(BufReader::new(File::open(path)?), n_items)
}

/// Writes the weighted `.wdat` format.
pub fn write_wdat<W: Write>(mut writer: W, data: &WeightedTransactionSet) -> io::Result<()> {
    for t in 0..data.n_transactions() {
        let mut first = true;
        for (item, count) in data.transaction(t) {
            if !first {
                writer.write_all(b" ")?;
            }
            first = false;
            write!(writer, "{item}:{count}")?;
        }
        writer.write_all(b"\n")?;
    }
    Ok(())
}

/// Writes a `.wdat` file to disk.
pub fn write_wdat_file<P: AsRef<Path>>(path: P, data: &WeightedTransactionSet) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_wdat(&mut w, data)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> WeightedTransactionSet {
        WeightedTransactionSet::from_rows(&[vec![(2, 3), (0, 1)], vec![(1, 5)], vec![]], 4)
    }

    #[test]
    fn accessors() {
        let w = sample();
        assert_eq!(w.n_transactions(), 3);
        assert_eq!(w.n_items(), 4);
        assert_eq!(w.items(0), &[0, 2]);
        assert_eq!(w.counts(0), &[1, 3]);
        assert_eq!(w.count_of(0, 2), 3);
        assert_eq!(w.count_of(0, 1), 0);
        assert_eq!(w.transaction(1).collect::<Vec<_>>(), vec![(1, 5)]);
    }

    #[test]
    fn duplicates_merged_zeros_dropped() {
        let w = WeightedTransactionSet::from_rows(&[vec![(1, 2), (1, 3), (0, 0)]], 2);
        assert_eq!(w.items(0), &[1]);
        assert_eq!(w.counts(0), &[5]);
    }

    #[test]
    fn to_binary_keeps_pattern() {
        let w = sample();
        let b = w.to_binary();
        assert_eq!(b.transaction(0), &[0, 2]);
        assert_eq!(b.n_items(), 4);
    }

    #[test]
    fn quantities_sum_counts() {
        let w = sample();
        assert_eq!(w.item_quantities(), vec![1, 5, 3, 0]);
    }

    #[test]
    fn permute_preserves_rows() {
        let w = sample();
        let p = Permutation::identity(3).reversed();
        let wp = w.permute(&p);
        assert_eq!(wp.items(2), w.items(0));
        assert_eq!(wp.counts(2), w.counts(0));
        assert_eq!(wp.items(0), w.items(2));
    }

    #[test]
    fn wdat_roundtrip() {
        let w = sample();
        let mut buf = Vec::new();
        write_wdat(&mut buf, &w).unwrap();
        assert_eq!(String::from_utf8_lossy(&buf), "0:1 2:3\n1:5\n\n");
        let back = read_wdat(Cursor::new(&buf), Some(4)).unwrap();
        // Empty line skipped on read, as in the binary .dat reader.
        assert_eq!(back.n_transactions(), 2);
        assert_eq!(back.counts(0), w.counts(0));
    }

    #[test]
    fn wdat_bare_item_means_one() {
        let w = read_wdat(Cursor::new("3 5:2\n"), None).unwrap();
        assert_eq!(w.count_of(0, 3), 1);
        assert_eq!(w.count_of(0, 5), 2);
        assert_eq!(w.n_items(), 6);
    }

    #[test]
    fn wdat_bad_tokens_rejected() {
        assert!(read_wdat(Cursor::new("1:x\n"), None).is_err());
        assert!(read_wdat(Cursor::new("y:1\n"), None).is_err());
    }

    #[test]
    fn wdat_file_roundtrip() {
        let w = sample();
        let path = std::env::temp_dir().join(format!("cahd_wdat_{}.wdat", std::process::id()));
        write_wdat_file(&path, &w).unwrap();
        let back = read_wdat_file(&path, Some(4)).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.n_transactions(), 2); // empty txn dropped
    }
}
