//! The sensitive item set `S` and selection strategies.
//!
//! Definition 1 of the paper: `S ⊆ I` are the items whose association with
//! a transaction is a privacy breach; the rest (`Q = I \ S`) form the
//! quasi-identifier. The evaluation section selects `m` sensitive items at
//! random; [`SensitiveSet::select_random`] additionally bounds the support
//! of eligible items so that the privacy requirement stays satisfiable
//! (a solution with degree `p` requires `support(s) * p <= n` for every
//! sensitive item — see the group-validation argument in Section IV).

use rand::Rng;

use crate::transaction::{ItemId, TransactionSet};

/// An immutable set of sensitive items with O(1) membership and O(log m)
/// rank queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SensitiveSet {
    /// Sorted sensitive item ids.
    items: Vec<ItemId>,
    /// Dense membership bitmap over the item universe.
    member: Vec<bool>,
}

/// Error from [`SensitiveSet::select_random`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotEnoughEligibleItems {
    /// Number of items satisfying the support bound.
    pub eligible: usize,
    /// Number requested.
    pub requested: usize,
}

impl std::fmt::Display for NotEnoughEligibleItems {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "only {} items satisfy the support bound, {} requested",
            self.eligible, self.requested
        )
    }
}

impl std::error::Error for NotEnoughEligibleItems {}

impl SensitiveSet {
    /// Builds a sensitive set from explicit item ids.
    ///
    /// # Panics
    /// Panics if an id is `>= n_items`.
    pub fn new(mut items: Vec<ItemId>, n_items: usize) -> Self {
        items.sort_unstable();
        items.dedup();
        let mut member = vec![false; n_items];
        for &i in &items {
            assert!((i as usize) < n_items, "sensitive item {i} out of range");
            member[i as usize] = true;
        }
        SensitiveSet { items, member }
    }

    /// The empty sensitive set over a universe of `n_items`.
    pub fn empty(n_items: usize) -> Self {
        SensitiveSet {
            items: Vec::new(),
            member: vec![false; n_items],
        }
    }

    /// Selects `m` distinct sensitive items uniformly among items with
    /// support in `1..=floor(n / p_max)`, mirroring the paper's random
    /// selection while guaranteeing that privacy degree `p_max` remains
    /// feasible.
    pub fn select_random<R: Rng + ?Sized>(
        data: &TransactionSet,
        m: usize,
        p_max: usize,
        rng: &mut R,
    ) -> Result<Self, NotEnoughEligibleItems> {
        let n = data.n_transactions();
        let cap = n.checked_div(p_max).unwrap_or(n);
        let supports = data.item_supports();
        let mut eligible: Vec<ItemId> = supports
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s >= 1 && s <= cap)
            .map(|(i, _)| i as ItemId)
            .collect();
        if eligible.len() < m {
            return Err(NotEnoughEligibleItems {
                eligible: eligible.len(),
                requested: m,
            });
        }
        // Partial Fisher–Yates for the first m positions.
        for i in 0..m {
            let j = rng.gen_range(i..eligible.len());
            eligible.swap(i, j);
        }
        eligible.truncate(m);
        Ok(SensitiveSet::new(eligible, data.n_items()))
    }

    /// Number of sensitive items `m`.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Sorted sensitive item ids.
    pub fn items(&self) -> &[ItemId] {
        self.items.as_slice()
    }

    /// Size of the item universe the set was built over.
    pub fn n_items(&self) -> usize {
        self.member.len()
    }

    /// O(1) membership test.
    #[inline]
    pub fn contains(&self, item: ItemId) -> bool {
        self.member[item as usize]
    }

    /// The dense rank of `item` within the set (`0..m`), or `None` if not
    /// sensitive. Used to index per-sensitive-item histograms.
    pub fn index_of(&self, item: ItemId) -> Option<usize> {
        if !self.contains(item) {
            return None;
        }
        self.items.binary_search(&item).ok()
    }

    /// Splits a transaction into (QID items, sensitive-item ranks).
    pub fn split_transaction(&self, txn: &[ItemId]) -> (Vec<ItemId>, Vec<usize>) {
        let mut qid = Vec::with_capacity(txn.len());
        let mut sens = Vec::new();
        for &item in txn {
            match self.index_of(item) {
                Some(rank) => sens.push(rank),
                None => qid.push(item),
            }
        }
        (qid, sens)
    }

    /// Number of occurrences of each sensitive item (indexed by rank).
    pub fn occurrence_counts(&self, data: &TransactionSet) -> Vec<usize> {
        let mut counts = vec![0usize; self.len()];
        for txn in data.iter() {
            for &item in txn {
                if let Some(r) = self.index_of(item) {
                    counts[r] += 1;
                }
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data() -> TransactionSet {
        TransactionSet::from_rows(
            &[vec![0, 1, 5], vec![1, 5], vec![2, 5], vec![3], vec![4, 5]],
            6,
        )
    }

    #[test]
    fn membership_and_rank() {
        let s = SensitiveSet::new(vec![4, 1], 6);
        assert_eq!(s.len(), 2);
        assert!(s.contains(1));
        assert!(s.contains(4));
        assert!(!s.contains(0));
        assert_eq!(s.index_of(1), Some(0));
        assert_eq!(s.index_of(4), Some(1));
        assert_eq!(s.index_of(2), None);
    }

    #[test]
    fn split_transaction_partitions() {
        let s = SensitiveSet::new(vec![1, 4], 6);
        let (qid, sens) = s.split_transaction(&[0, 1, 4, 5]);
        assert_eq!(qid, vec![0, 5]);
        assert_eq!(sens, vec![0, 1]);
    }

    #[test]
    fn occurrence_counts() {
        let s = SensitiveSet::new(vec![1, 5], 6);
        let counts = s.occurrence_counts(&data());
        assert_eq!(counts, vec![2, 4]); // item1 twice, item5 four times
    }

    #[test]
    fn random_selection_respects_support_bound() {
        let d = data();
        let mut rng = StdRng::seed_from_u64(5);
        // p_max = 2 -> cap = 5/2 = 2: item 5 (support 4) is ineligible,
        // item 1 (support 2) and singletons are eligible.
        for _ in 0..20 {
            let s = SensitiveSet::select_random(&d, 2, 2, &mut rng).unwrap();
            assert!(!s.contains(5));
            assert_eq!(s.len(), 2);
        }
    }

    #[test]
    fn random_selection_insufficient_items() {
        let d = data();
        let mut rng = StdRng::seed_from_u64(5);
        let err = SensitiveSet::select_random(&d, 10, 2, &mut rng).unwrap_err();
        assert_eq!(err.requested, 10);
        assert!(err.eligible < 10);
    }

    #[test]
    fn empty_set() {
        let s = SensitiveSet::empty(4);
        assert!(s.is_empty());
        assert!(!s.contains(0));
        let (qid, sens) = s.split_transaction(&[0, 1]);
        assert_eq!(qid, vec![0, 1]);
        assert!(sens.is_empty());
    }

    #[test]
    fn new_dedups() {
        let s = SensitiveSet::new(vec![2, 2, 2], 3);
        assert_eq!(s.len(), 1);
    }
}
