//! Dataset characteristic reports (paper Table I).

use crate::transaction::TransactionSet;

/// Summary characteristics of a transaction dataset, as reported in the
/// paper's Table I.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetStats {
    /// Number of transactions.
    pub transactions: usize,
    /// Size of the item universe (matrix columns).
    pub items: usize,
    /// Number of items that actually occur.
    pub items_present: usize,
    /// Longest transaction.
    pub max_length: usize,
    /// Mean transaction length.
    pub avg_length: f64,
    /// Fraction of matrix cells that are non-zero.
    pub density: f64,
}

impl DatasetStats {
    /// Computes the statistics of `data`.
    pub fn compute(data: &TransactionSet) -> Self {
        let n = data.n_transactions();
        let max_length = (0..n).map(|t| data.len_of(t)).max().unwrap_or(0);
        let avg_length = if n == 0 {
            0.0
        } else {
            data.total_items() as f64 / n as f64
        };
        let items_present = data.item_supports().iter().filter(|&&s| s > 0).count();
        DatasetStats {
            transactions: n,
            items: data.n_items(),
            items_present,
            max_length,
            avg_length,
            density: data.matrix().density(),
        }
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} transactions, {} items ({} present), max len {}, avg len {:.2}, density {:.5}",
            self.transactions,
            self.items,
            self.items_present,
            self.max_length,
            self.avg_length,
            self.density
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_table1_style_stats() {
        let t = TransactionSet::from_rows(&[vec![0, 1, 2], vec![1], vec![]], 5);
        let s = DatasetStats::compute(&t);
        assert_eq!(s.transactions, 3);
        assert_eq!(s.items, 5);
        assert_eq!(s.items_present, 3);
        assert_eq!(s.max_length, 3);
        assert!((s.avg_length - 4.0 / 3.0).abs() < 1e-12);
        assert!((s.density - 4.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset() {
        let t = TransactionSet::from_rows(&[], 0);
        let s = DatasetStats::compute(&t);
        assert_eq!(s.transactions, 0);
        assert_eq!(s.avg_length, 0.0);
        assert_eq!(s.max_length, 0);
    }

    #[test]
    fn display_is_readable() {
        let t = TransactionSet::from_rows(&[vec![0]], 2);
        let s = DatasetStats::compute(&t).to_string();
        assert!(s.contains("1 transactions"));
    }
}
