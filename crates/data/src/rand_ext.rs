//! Small sampling utilities on top of `rand`.
//!
//! The Quest generator needs Poisson, truncated-normal and exponential
//! draws. `rand_distr` is not part of the approved dependency set, and the
//! required samplers are a few lines each, so they live here.

use rand::Rng;

/// Draws from `Poisson(lambda)` using Knuth's product method.
///
/// The generator only uses small rates (mean basket and pattern lengths,
/// single digits to low tens), where the product method is both exact and
/// fast. For `lambda <= 0` the result is 0.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    // Split large rates to avoid exp underflow (e^-745 is the f64 floor).
    if lambda > 500.0 {
        return poisson(rng, lambda / 2.0) + poisson(rng, lambda / 2.0);
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Draws from `Normal(mean, sd)` via the Box–Muller transform.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + sd * z
}

/// Draws from `Exponential(1)` by inversion.
pub fn exponential1<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln()
}

/// Draws an index from a cumulative weight table (`cum` non-decreasing,
/// last element = total mass).
///
/// # Panics
/// Panics if `cum` is empty or has non-positive total mass.
pub fn sample_cumulative<R: Rng + ?Sized>(rng: &mut R, cum: &[f64]) -> usize {
    // cahd-lint: allow(L003, reason = "documented '# Panics' contract: an empty table is a caller bug, not a runtime condition")
    let total = *cum.last().expect("cumulative table must be non-empty");
    assert!(total > 0.0, "total mass must be positive");
    let x = rng.gen::<f64>() * total;
    // cahd-lint: allow(L003, reason = "documented '# Panics' contract: NaN weights are a caller bug; x is finite by construction")
    match cum.binary_search_by(|v| v.partial_cmp(&x).expect("no NaN weights")) {
        Ok(i) => (i + 1).min(cum.len() - 1),
        Err(i) => i.min(cum.len() - 1),
    }
}

/// Samples `k` distinct values uniformly from `0..n` (Floyd's algorithm).
/// Returns fewer than `k` values only when `k > n`.
pub fn sample_distinct<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<u32> {
    // cahd-lint: allow(L001, reason = "membership-only de-dup for Floyd's algorithm; never iterated")
    use std::collections::HashSet;
    if k >= n {
        return (0..n as u32).collect();
    }
    // cahd-lint: allow(L001, reason = "membership-only: insert() results drive the branch, output order comes from the j loop")
    let mut chosen: HashSet<u32> = HashSet::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j) as u32;
        if chosen.insert(t) {
            out.push(t);
        } else {
            chosen.insert(j as u32);
            out.push(j as u32);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_close() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| poisson(&mut rng, 4.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_zero_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -3.0), 0);
    }

    #[test]
    fn poisson_large_rate_splits() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = poisson(&mut rng, 1000.0) as f64;
        assert!((x - 1000.0).abs() < 200.0, "{x}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 2.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn exponential_mean_one() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential1(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn cumulative_sampling_respects_weights() {
        let mut rng = StdRng::seed_from_u64(17);
        let cum = [1.0, 1.0, 4.0]; // weights 1, 0, 3
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[sample_cumulative(&mut rng, &cum)] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac0 = counts[0] as f64 / 10_000.0;
        assert!((frac0 - 0.25).abs() < 0.03, "frac0 {frac0}");
    }

    #[test]
    fn distinct_sampling() {
        let mut rng = StdRng::seed_from_u64(19);
        for _ in 0..100 {
            let mut v = sample_distinct(&mut rng, 50, 10);
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), 10);
            assert!(v.iter().all(|&x| x < 50));
        }
        assert_eq!(sample_distinct(&mut rng, 3, 5).len(), 3);
    }
}
