//! Property-based tests for the data crate: parser robustness, generator
//! invariants, weighted-data round trips and transform algebra.

use std::io::Cursor;

use cahd_data::transform::{
    concat, filter_transactions, prune_rare_items, sample_transactions, train_test_split,
};
use cahd_data::weighted::{read_wdat, write_wdat, WeightedTransactionSet};
use cahd_data::{io, QuestConfig, QuestGenerator, SensitiveSet, TransactionSet};
use proptest::prelude::*;

fn arb_rows() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..40, 1..7), 1..25)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dat_roundtrip_without_empty_rows(rows in arb_rows()) {
        let data = TransactionSet::from_rows(&rows, 40);
        let mut buf = Vec::new();
        io::write_dat(&mut buf, &data).unwrap();
        let back = io::read_dat(Cursor::new(&buf), Some(40)).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn dat_reader_never_panics_on_ascii_garbage(s in "[ -~\\n]{0,200}") {
        // Arbitrary printable input must parse or error, never panic.
        let _ = io::read_dat(Cursor::new(s.as_bytes()), None);
    }

    #[test]
    fn wdat_reader_never_panics_on_ascii_garbage(s in "[ -~\\n]{0,200}") {
        let _ = read_wdat(Cursor::new(s.as_bytes()), None);
    }

    #[test]
    fn wdat_roundtrip(rows in proptest::collection::vec(
        proptest::collection::vec((0u32..30, 1u32..9), 1..6), 1..15)
    ) {
        let data = WeightedTransactionSet::from_rows(&rows, 30);
        let mut buf = Vec::new();
        write_wdat(&mut buf, &data).unwrap();
        let back = read_wdat(Cursor::new(&buf), Some(30)).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn quest_respects_shape(
        n in 10usize..200,
        d in 5usize..100,
        avg in 1.0f64..6.0,
        corr in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let cfg = QuestConfig {
            n_transactions: n,
            n_items: d,
            avg_txn_len: avg,
            n_patterns: 10,
            avg_pattern_len: 2.0,
            correlation: corr,
            ..Default::default()
        };
        let data = QuestGenerator::new(cfg, seed).generate();
        prop_assert_eq!(data.n_transactions(), n);
        prop_assert_eq!(data.n_items(), d);
        for t in 0..n {
            prop_assert!(data.len_of(t) >= 1);
        }
    }

    #[test]
    fn sensitive_selection_invariants(rows in arb_rows(), m in 1usize..5, p in 1usize..6) {
        let data = TransactionSet::from_rows(&rows, 40);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        use rand::SeedableRng;
        if let Ok(sens) = SensitiveSet::select_random(&data, m, p, &mut rng) {
            prop_assert_eq!(sens.len(), m);
            let n = data.n_transactions();
            for (rank, &c) in sens.occurrence_counts(&data).iter().enumerate() {
                prop_assert!(c >= 1);
                prop_assert!(c * p <= n, "item {} support {} * {} > {}",
                    sens.items()[rank], c, p, n);
            }
        }
    }

    #[test]
    fn split_transaction_partitions_every_row(rows in arb_rows(), s in 0u32..40) {
        let data = TransactionSet::from_rows(&rows, 40);
        let sens = SensitiveSet::new(vec![s], 40);
        for t in 0..data.n_transactions() {
            let (qid, ranks) = sens.split_transaction(data.transaction(t));
            prop_assert_eq!(qid.len() + ranks.len(), data.len_of(t));
            prop_assert!(qid.iter().all(|&i| i != s));
        }
    }

    #[test]
    fn transforms_preserve_identity(rows in arb_rows(), frac in 0.0f64..1.0) {
        use rand::SeedableRng;
        let data = TransactionSet::from_rows(&rows, 40);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let ((train, train_ids), (test, test_ids)) = train_test_split(&data, frac, &mut rng);
        prop_assert_eq!(train.n_transactions() + test.n_transactions(), data.n_transactions());
        for (k, &t) in train_ids.iter().enumerate() {
            prop_assert_eq!(train.transaction(k), data.transaction(t as usize));
        }
        for (k, &t) in test_ids.iter().enumerate() {
            prop_assert_eq!(test.transaction(k), data.transaction(t as usize));
        }
        // concat(train-order) has the right size and universe.
        let joined = concat(&[&train, &test]);
        prop_assert_eq!(joined.n_transactions(), data.n_transactions());
        prop_assert_eq!(joined.n_items(), 40);
    }

    #[test]
    fn prune_then_filter_consistency(rows in arb_rows(), min_sup in 1usize..5) {
        let data = TransactionSet::from_rows(&rows, 40);
        let pruned = prune_rare_items(&data, min_sup);
        let supports = data.item_supports();
        for t in 0..data.n_transactions() {
            for &i in pruned.transaction(t) {
                prop_assert!(supports[i as usize] >= min_sup);
            }
        }
        // Sampling k of n keeps subset semantics.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let k = data.n_transactions() / 2;
        let (sample, ids) = sample_transactions(&data, k, &mut rng);
        prop_assert_eq!(sample.n_transactions(), k.min(data.n_transactions()));
        for (pos, &orig) in ids.iter().enumerate() {
            prop_assert_eq!(sample.transaction(pos), data.transaction(orig as usize));
        }
        // Filtering with always-true is the identity.
        let (all, _) = filter_transactions(&data, |_, _| true);
        prop_assert_eq!(all, data);
    }
}
