//! Release-level representation equivalence: the full pipeline (RCM band
//! reorganization + CAHD group formation) publishes byte-identical
//! releases whether the `A x A^T` row graph is materialized or evaluated
//! implicitly through the inverted index, at every thread count, for
//! both graph-traversal strategies. The representation — like the
//! similarity kernel — moves time and memory, never output.
//!
//! `CAHD_TEST_THREADS` (used by the CI representation matrix) adds one
//! more thread count to the sweep, mirroring `kernel_equivalence.rs`.

use cahd_core::pipeline::{Anonymizer, AnonymizerConfig};
use cahd_core::shard::ParallelConfig;
use cahd_core::CahdConfig;
use cahd_data::{SensitiveSet, TransactionSet};
use cahd_rcm::{OrderingStrategy, RowGraphMode};
use proptest::prelude::*;

/// Thread counts the sweep covers, plus the CI override.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 8];
    if let Ok(v) = std::env::var("CAHD_TEST_THREADS") {
        if let Ok(extra) = v.trim().parse::<usize>() {
            if extra >= 1 && !counts.contains(&extra) {
                counts.push(extra);
            }
        }
    }
    counts
}

/// Whether `CAHD_ROWGRAPH`/`CAHD_ORDERING`/`CAHD_HUB_CAP` would override
/// the per-run representation pin (the CI matrix sets them on purpose;
/// the byte-identity across the remaining sweep axes still holds, but
/// the "mode honored" assertion cannot).
fn env_overrides_active() -> bool {
    ["CAHD_ORDERING", "CAHD_ROWGRAPH", "CAHD_HUB_CAP"]
        .iter()
        .any(|v| std::env::var_os(v).is_some())
}

/// A random feasible instance: rows over a modest universe, a sensitive
/// set, `p in {2, 4}`.
fn arb_instance() -> impl Strategy<Value = (TransactionSet, SensitiveSet, usize)> {
    (24usize..64, 8usize..20, 0usize..2).prop_flat_map(|(n, d, p_idx)| {
        let p = [2usize, 4][p_idx];
        (
            proptest::collection::vec(proptest::collection::vec(0..d as u32, 1..6), n..=n),
            proptest::collection::btree_set(0..d as u32, 1..3),
        )
            .prop_map(move |(rows, sens_items)| {
                let data = TransactionSet::from_rows(&rows, d);
                let sens = SensitiveSet::new(sens_items.into_iter().collect(), d);
                (data, sens, p)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn release_is_byte_identical_across_representations_and_threads(
        (data, sens, p) in arb_instance(),
    ) {
        let counts = sens.occurrence_counts(&data);
        prop_assume!(counts.iter().all(|&c| c * p <= data.n_transactions()));
        prop_assume!(counts.iter().any(|&c| c > 0));
        let check_mode = !env_overrides_active();
        for strategy in [OrderingStrategy::Rcm, OrderingStrategy::Bfs] {
            let mut reference_json: Option<String> = None;
            for threads in thread_counts() {
                for mode in [RowGraphMode::Explicit, RowGraphMode::Implicit] {
                    let mut cfg = AnonymizerConfig::with_privacy_degree(p)
                        .with_ordering(strategy)
                        .with_rowgraph(mode);
                    cfg.cahd = CahdConfig::new(p);
                    if threads > 1 {
                        cfg = cfg.with_parallel(ParallelConfig::new(1, threads));
                    }
                    let res = Anonymizer::new(cfg).anonymize(&data, &sens).unwrap();
                    if check_mode {
                        let band = res.band.as_ref().expect("RCM phase ran");
                        prop_assert_eq!(
                            band.used_explicit_aat,
                            mode == RowGraphMode::Explicit,
                            "representation not honored: {:?}", mode
                        );
                    }
                    let json = serde_json::to_string(&res.published).unwrap();
                    if let Some(want) = &reference_json {
                        prop_assert_eq!(
                            want, &json,
                            "release drifted: {} mode={:?} threads={}",
                            strategy.name(), mode, threads
                        );
                    } else {
                        reference_json = Some(json);
                    }
                }
            }
        }
    }
}
