//! Equivalence harness for the adaptive similarity kernel
//! (`cahd_core::kernel`).
//!
//! Two properties, 256 cases each, over random instances whose item
//! universes range from one bitset word to dozens (so the adaptive
//! crossover genuinely mixes the sparse and dense paths):
//!
//! 1. **score equivalence** — [`SimilarityKernel`] produces the same
//!    score for every `(pivot, candidate)` pair as the reference
//!    [`QidOverlapScorer`], item-for-item, in every mode;
//! 2. **release equivalence** — the published dataset is byte-identical
//!    (same serialized JSON) across kernel modes {reference/sparse,
//!    adaptive, dense} and thread counts {1, 8}, at each shard count:
//!    the kernel moves time, never output.
//!
//! `CAHD_TEST_THREADS` (used by the CI matrix) adds one more thread count
//! to the sweep, mirroring `parallel_equivalence.rs`.

use cahd_core::kernel::{KernelMode, QidOverlapScorer, SimilarityKernel};
use cahd_core::shard::{cahd_sharded, ParallelConfig};
use cahd_core::CahdConfig;
use cahd_data::{SensitiveSet, TransactionSet};
use proptest::prelude::*;

const MODES: [KernelMode; 3] = [
    KernelMode::ForceSparse,
    KernelMode::Adaptive,
    KernelMode::ForceDense,
];

/// Thread counts the release sweep covers, plus the CI override.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 8];
    if let Ok(v) = std::env::var("CAHD_TEST_THREADS") {
        if let Ok(extra) = v.trim().parse::<usize>() {
            if extra >= 1 && !counts.contains(&extra) {
                counts.push(extra);
            }
        }
    }
    counts
}

/// Universe sizes spanning the adaptive crossover: 1 word (everything
/// dense-eligible), a few words (mixed), and wide (mostly sparse).
fn arb_universe() -> impl Strategy<Value = usize> {
    (0usize..4).prop_map(|i| [16usize, 64, 300, 1200][i])
}

/// Random QID rows over a universe of `d` items.
fn arb_rows(d: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0..d as u32, 1..12), 8usize..40)
}

/// A random dataset, sensitive set and config with `p in {2,4,8}` and
/// `alpha in {2,3}`, over a crossover-spanning universe.
fn arb_instance() -> impl Strategy<Value = (TransactionSet, SensitiveSet, CahdConfig)> {
    (arb_universe(), 12usize..72, 0usize..3, 2usize..4).prop_flat_map(|(d, n, p_idx, alpha)| {
        let p = [2usize, 4, 8][p_idx];
        (
            proptest::collection::vec(proptest::collection::vec(0..d as u32, 1..12), n..=n),
            proptest::collection::btree_set(0..d as u32, 1..3),
        )
            .prop_map(move |(rows, sens_items)| {
                let data = TransactionSet::from_rows(&rows, d);
                let sens = SensitiveSet::new(sens_items.into_iter().collect(), d);
                (data, sens, CahdConfig::new(p).with_alpha(alpha))
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn kernel_scores_match_the_reference_item_for_item(
        (d, rows) in arb_universe().prop_flat_map(|d| (Just(d), arb_rows(d))),
    ) {
        // Deduplicated sorted rows, as `split_transaction` would produce.
        let rows: Vec<Vec<u32>> = rows
            .into_iter()
            .map(|mut r| {
                r.sort_unstable();
                r.dedup();
                r
            })
            .collect();
        let n = rows.len();
        for mode in MODES {
            let mut reference = QidOverlapScorer::new(&rows, d);
            let mut kernel = SimilarityKernel::new(&rows, d, mode);
            let (mut want, mut got) = (Vec::new(), Vec::new());
            for t in 0..n {
                let candidates: Vec<usize> = (0..n).filter(|&c| c != t).collect();
                reference.score(t, &candidates, &mut want);
                kernel.score(t, &candidates, &mut got);
                prop_assert_eq!(&got, &want, "mode {:?}, pivot {}", mode, t);
            }
            // Path accounting covers every score exactly once.
            let stats = kernel.stats();
            prop_assert_eq!(
                stats.total_scores(),
                (n * (n - 1)) as u64,
                "mode {:?}: {:?}", mode, stats
            );
            prop_assert!(stats.cache_hits <= stats.dense_scores, "{:?}", stats);
            match mode {
                KernelMode::ForceSparse => prop_assert_eq!(stats.dense_scores, 0),
                KernelMode::ForceDense => prop_assert_eq!(stats.sparse_scores, 0),
                KernelMode::Adaptive => {}
            }
        }
    }

    #[test]
    fn published_release_is_identical_across_modes_and_threads(
        (data, sens, cfg) in arb_instance(),
        shards in (0usize..2).prop_map(|i| [1usize, 4][i]),
    ) {
        let counts = sens.occurrence_counts(&data);
        prop_assume!(counts.iter().all(|&c| c * cfg.p <= data.n_transactions()));
        let base_cfg = cfg.with_kernel(KernelMode::ForceSparse);
        let (reference, ref_stats) =
            cahd_sharded(&data, &sens, &base_cfg, &ParallelConfig::new(shards, 1)).unwrap();
        let reference_json = serde_json::to_string(&reference).unwrap();
        for mode in MODES {
            for threads in thread_counts() {
                let (out, stats) = cahd_sharded(
                    &data,
                    &sens,
                    &cfg.with_kernel(mode),
                    &ParallelConfig::new(shards, threads),
                )
                .unwrap();
                // Byte-identical release: same serialized bytes, not just
                // structural equality.
                let out_json = serde_json::to_string(&out).unwrap();
                prop_assert_eq!(
                    &out_json, &reference_json,
                    "mode {:?}, shards {}, threads {}", mode, shards, threads
                );
                // The engine made the same decisions along the way.
                prop_assert_eq!(
                    stats.cahd.candidates_considered,
                    ref_stats.cahd.candidates_considered,
                    "mode {:?}, threads {}", mode, threads
                );
                prop_assert_eq!(stats.cahd.groups_formed, ref_stats.cahd.groups_formed);
                prop_assert_eq!(stats.cahd.rollbacks, ref_stats.cahd.rollbacks);
            }
        }
    }
}
