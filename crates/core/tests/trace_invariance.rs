//! Determinism contract of the observability layer, over the same random
//! feasible instances as the PR 2 sequential-equivalence harness.
//!
//! Two properties:
//!
//! 1. **Counter thread-invariance** — every `core.*` counter of a traced
//!    sharded run (pivots scanned, groups formed, rollbacks, candidates
//!    scanned, merge dissolutions, ...) is identical for every thread
//!    count in `{1, 2, 8}` (plus the CI matrix's `CAHD_TEST_THREADS`).
//!    Only counters are pinned: gauges and histogram *values* may carry
//!    scheduling-dependent measurements by design, but the deterministic
//!    histogram *counts* (`core.candidate_list_len`, `core.shard_scan_ns`)
//!    are asserted too.
//! 2. **Serde round-trip** — the `TraceReport` behind `--trace-json`
//!    survives a round trip through the vendored serde shim bit-for-bit.
//!
//! Every report must also be internally coherent (empty
//! `consistency_findings`) and fully rooted (no orphan spans), which is
//! what the `cahd-check` CAHD-O001 pass enforces on emitted files.

use cahd_core::pipeline::{Anonymizer, AnonymizerConfig};
use cahd_core::shard::ParallelConfig;
use cahd_core::CahdConfig;
use cahd_data::{SensitiveSet, TransactionSet};
use cahd_obs::{Recorder, TraceReport};
use proptest::prelude::*;

/// Thread counts every sweep covers: the fixed `{1, 2, 8}` plus an
/// optional override from `CAHD_TEST_THREADS` (the CI matrix).
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 8];
    if let Ok(v) = std::env::var("CAHD_TEST_THREADS") {
        if let Ok(extra) = v.trim().parse::<usize>() {
            if extra >= 1 && !counts.contains(&extra) {
                counts.push(extra);
            }
        }
    }
    counts
}

/// A random dataset, sensitive set and config with `p in {2,4,8}` and
/// `alpha in {2,3}` (the harness matrix of `parallel_equivalence.rs`).
fn arb_instance() -> impl Strategy<Value = (TransactionSet, SensitiveSet, CahdConfig)> {
    (12usize..72, 6usize..16, 0usize..3, 2usize..4).prop_flat_map(|(n, d, p_idx, alpha)| {
        let p = [2usize, 4, 8][p_idx];
        (
            proptest::collection::vec(proptest::collection::vec(0..d as u32, 1..6), n..=n),
            proptest::collection::btree_set(0..d as u32, 1..3),
            Just(d),
            Just(p),
            Just(alpha),
        )
            .prop_map(|(rows, sens_items, d, p, alpha)| {
                let data = TransactionSet::from_rows(&rows, d);
                let sens = SensitiveSet::new(sens_items.into_iter().collect(), d);
                (data, sens, CahdConfig::new(p).with_alpha(alpha))
            })
    })
}

/// Runs the full traced pipeline and returns its report, asserting basic
/// coherence on the way out.
fn traced_report(
    data: &TransactionSet,
    sens: &SensitiveSet,
    cfg: CahdConfig,
    parallel: ParallelConfig,
) -> TraceReport {
    let rec = Recorder::new();
    let mut config = AnonymizerConfig::with_privacy_degree(cfg.p).with_parallel(parallel);
    config.cahd = cfg;
    let res = Anonymizer::new(config)
        .anonymize_traced(data, sens, &rec)
        .expect("instance was assumed feasible");
    let trace = res.trace.expect("enabled recorder yields a trace");
    assert!(
        trace.consistency_findings().is_empty(),
        "{:?}",
        trace.consistency_findings()
    );
    assert!(
        trace.orphan_spans().is_empty(),
        "{:?}",
        trace.orphan_spans()
    );
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn counters_are_thread_count_invariant(
        (data, sens, cfg) in arb_instance(),
        shards in 1usize..9,
    ) {
        let counts = sens.occurrence_counts(&data);
        prop_assume!(counts.iter().all(|&c| c * cfg.p <= data.n_transactions()));
        let base = traced_report(&data, &sens, cfg, ParallelConfig::new(shards, 1));
        for threads in thread_counts() {
            let trace = traced_report(&data, &sens, cfg, ParallelConfig::new(shards, threads));
            // The entire counter section is identical, not just a few
            // named entries — any scheduling-dependent counter anywhere in
            // the stack fails here.
            prop_assert_eq!(&base.counters, &trace.counters, "threads={}", threads);
            // Deterministic histogram *counts* (values are timings and may
            // differ): one candidate-list observation per scanned pivot,
            // one shard-scan observation per shard.
            prop_assert_eq!(
                trace.histogram("core.candidate_list_len").map(|h| h.count).unwrap_or(0),
                trace.counter_or_zero("core.pivots_scanned"),
                "threads={}", threads
            );
            if shards >= 2 {
                let k = shards.min(data.n_transactions());
                prop_assert_eq!(
                    trace.histogram("core.shard_scan_ns").expect("sharded run").count,
                    k as u64,
                    "threads={}", threads
                );
            }
            // The counter relation the CAHD-O001 pass enforces.
            prop_assert_eq!(
                trace.counter_or_zero("core.pivots_scanned"),
                trace.counter_or_zero("core.groups_formed")
                    + trace.counter_or_zero("core.rollbacks")
                    + trace.counter_or_zero("core.insufficient_candidates")
            );
        }
    }

    #[test]
    fn trace_report_roundtrips_through_serde_shim(
        (data, sens, cfg) in arb_instance(),
        shards in 1usize..5,
    ) {
        let counts = sens.occurrence_counts(&data);
        prop_assume!(counts.iter().all(|&c| c * cfg.p <= data.n_transactions()));
        let trace = traced_report(&data, &sens, cfg, ParallelConfig::new(shards, 2));
        let json = serde_json::to_string(&trace).expect("report serializes");
        let back: TraceReport = serde_json::from_str(&json).expect("report deserializes");
        prop_assert_eq!(&trace, &back);
        // Pretty output (what `--trace-json` writes) round-trips too.
        let pretty = serde_json::to_string_pretty(&trace).expect("report serializes");
        let back2: TraceReport = serde_json::from_str(&pretty).expect("report deserializes");
        prop_assert_eq!(&trace, &back2);
    }
}
