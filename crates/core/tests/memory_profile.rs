//! Memory observability through the real pipeline, with
//! `cahd_obs::TrackingAllocator` registered as this binary's global
//! allocator.
//!
//! One `#[test]` on purpose: the allocator counters are process-global,
//! so parallel tests in the same binary would contaminate each other's
//! deltas. Three contracts are pinned here:
//!
//! 1. **Zero cost when off** — a pipeline run with a disabled recorder
//!    performs exactly the allocations of the untraced entry point.
//! 2. **Coherent attribution when on** — a memory-tracking run emits a
//!    `memory` section whose invariants (the `CAHD-O002` surface) hold,
//!    for sequential, sharded and streaming/checkpoint execution.
//! 3. **Cross-section agreement** — every memory window belongs to a
//!    recorded wall-clock span, and the `mem.*` gauges never exceed the
//!    snapshot totals.

use cahd_core::pipeline::{Anonymizer, AnonymizerConfig};
use cahd_core::shard::ParallelConfig;
use cahd_core::streaming::StreamingAnonymizer;
use cahd_data::{ItemId, SensitiveSet, TransactionSet};
use cahd_obs::{memtrack, Recorder, TraceReport, TrackingAllocator};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

const N: usize = 64;
const D: usize = 24;
const P: usize = 4;

fn rows() -> Vec<Vec<ItemId>> {
    (0..N)
        .map(|i| {
            let mut row = vec![
                (i % 20) as ItemId,
                ((i * 3) % 20) as ItemId,
                ((i * 7) % 20) as ItemId,
            ];
            if i % 8 == 0 {
                row.push(20);
            }
            if i % 8 == 4 {
                row.push(21);
            }
            row.sort_unstable();
            row.dedup();
            row
        })
        .collect()
}

fn dataset() -> (TransactionSet, SensitiveSet) {
    (
        TransactionSet::from_rows(&rows(), D),
        SensitiveSet::new(vec![20, 21], D),
    )
}

/// Allocations performed by `f`, as an (allocs, alloc_bytes) delta.
fn alloc_delta<F: FnOnce()>(f: F) -> (u64, u64) {
    let before = memtrack::stats();
    f();
    let after = memtrack::stats();
    (
        after.allocs - before.allocs,
        after.alloc_bytes - before.alloc_bytes,
    )
}

fn audit_memory(report: &TraceReport) {
    let findings = report.consistency_findings();
    assert!(findings.is_empty(), "{findings:?}");
    let mem = report.memory.as_ref().expect("memory section present");
    let findings = mem.consistency_findings();
    assert!(findings.is_empty(), "{findings:?}");
    // Every memory window belongs to a recorded wall-clock span and
    // cannot have executed more often than it.
    for w in &mem.spans {
        let span = report
            .span(&w.path)
            .unwrap_or_else(|| panic!("memory window `{}` has no wall-clock span", w.path));
        assert!(w.count <= span.count, "{}", w.path);
    }
    // Gauges were recorded before the snapshot read its totals; both
    // counters are monotone.
    for (gauge, total) in [
        ("mem.alloc_bytes", mem.totals.alloc_bytes),
        ("mem.dealloc_bytes", mem.totals.dealloc_bytes),
        ("mem.allocs", mem.totals.allocs),
        ("mem.deallocs", mem.totals.deallocs),
        ("mem.peak_bytes", mem.totals.peak_bytes),
    ] {
        let g = report
            .gauge(gauge)
            .unwrap_or_else(|| panic!("gauge {gauge} missing"));
        assert!(g <= total as f64, "{gauge}: {g} > {total}");
    }
}

#[test]
fn memory_observability_end_to_end() {
    assert!(memtrack::is_active());
    let (data, sens) = dataset();
    let cfg = AnonymizerConfig::with_privacy_degree(P);
    let anon = Anonymizer::new(cfg);

    // --- 1. zero cost when off ------------------------------------------
    // Warm up caches and lazy initialization, then compare the untraced
    // entry point against an explicit disabled-recorder traced run: the
    // instrumentation must add no allocations when tracing is off.
    for _ in 0..2 {
        anon.anonymize(&data, &sens).expect("feasible");
    }
    let plain = alloc_delta(|| {
        anon.anonymize(&data, &sens).expect("feasible");
    });
    let disabled = alloc_delta(|| {
        anon.anonymize_traced(&data, &sens, &Recorder::disabled())
            .expect("feasible");
    });
    assert_eq!(
        plain, disabled,
        "disabled-recorder tracing changed the pipeline's allocations"
    );

    // --- 2. sequential attribution --------------------------------------
    let rec = Recorder::new().with_memory();
    let res = anon.anonymize_traced(&data, &sens, &rec).expect("feasible");
    let report = res.trace.expect("traced run yields a report");
    audit_memory(&report);
    let mem = report.memory.as_ref().expect("memory section present");
    for path in [
        "pipeline",
        "pipeline/rcm",
        "pipeline/permute",
        "pipeline/group",
        "pipeline/unpermute",
    ] {
        assert!(mem.span(path).is_some(), "missing memory window {path}");
    }
    let root = mem.span("pipeline").expect("root window");
    assert!(root.alloc_bytes > 0, "pipeline window saw no allocations");

    // --- 3. sharded attribution (merge phase included) ------------------
    let sharded_cfg =
        AnonymizerConfig::with_privacy_degree(P).with_parallel(ParallelConfig::new(2, 2));
    let rec = Recorder::new().with_memory();
    Anonymizer::new(sharded_cfg)
        .anonymize_traced(&data, &sens, &rec)
        .expect("feasible");
    let report = rec.snapshot();
    audit_memory(&report);
    let mem = report.memory.as_ref().expect("memory section present");
    assert!(
        mem.span("pipeline/group/merge").is_some(),
        "sharded run must attribute the merge phase"
    );

    // --- 4. streaming/checkpoint path ------------------------------------
    let rec = Recorder::new().with_memory();
    let mut stream = StreamingAnonymizer::new(
        AnonymizerConfig::with_privacy_degree(P),
        sens.clone(),
        4 * P,
    )
    .with_recorder(&rec);
    let mut released = 0usize;
    for row in rows() {
        if let Some(chunk) = stream.push(row).expect("stream accepts rows") {
            released += chunk.published.n_transactions();
        }
    }
    if let Some(chunk) = stream.finish().expect("stream finishes") {
        released += chunk.published.n_transactions();
    }
    assert_eq!(released, N);
    let report = rec.snapshot();
    audit_memory(&report);
    let mem = report.memory.as_ref().expect("memory section present");
    let root = mem.span("pipeline").expect("batched pipeline windows");
    assert!(root.count >= 2, "expected multiple batch windows");
}
