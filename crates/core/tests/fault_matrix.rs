//! Deterministic fault-injection matrix for the recovery layer.
//!
//! Every fault mode the [`FaultPlan`] can express — worker panic, missed
//! deadline, corrupt input row — is driven across shards `{1, 4}` and
//! threads `{1, 8}` (plus `CAHD_TEST_THREADS` from the CI matrix). The
//! contract under test:
//!
//! * with an **empty** plan the recovering entry point is byte-identical
//!   to the plain sharded pipeline (recovery must be free when unused);
//! * every injected fault is recovered: the release is byte-identical to
//!   the clean run's, passes the full `cahd-check` registry (trace
//!   included) with zero diagnostics, and the recovery counters equal
//!   exactly what the plan predicts — no more, no less;
//! * seeded plans are reproducible, so the whole matrix is deterministic
//!   regardless of scheduling.

use cahd_check::{default_registry, CheckInput};
use cahd_core::pipeline::{Anonymizer, AnonymizerConfig};
use cahd_core::recovery::{silence_injected_panics, FaultPlan, RecoveryConfig, ShardFault};
use cahd_core::shard::{cahd_sharded, cahd_sharded_recovering, ParallelConfig};
use cahd_core::CahdConfig;
use cahd_data::{ItemId, SensitiveSet, TransactionSet};
use cahd_obs::Recorder;

const P: usize = 4;
const N_ITEMS: usize = 12;

/// A fixed, feasible 64-row instance: enough mass per shard that even the
/// 4-shard split forms several groups, with sensitive items 9 and 11.
fn rows() -> Vec<Vec<ItemId>> {
    (0..64u32)
        .map(|i| {
            let mut row = vec![i % 7, 7 + (i / 7) % 2];
            if i % 16 == 0 {
                row.push(9);
            }
            if i % 21 == 5 {
                row.push(11);
            }
            row
        })
        .collect()
}

fn instance() -> (TransactionSet, SensitiveSet, CahdConfig) {
    let data = TransactionSet::from_rows(&rows(), N_ITEMS);
    let sens = SensitiveSet::new(vec![9, 11], N_ITEMS);
    (data, sens, CahdConfig::new(P))
}

/// The thread dimension: `{1, 8}` plus an optional CI override.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 8];
    if let Ok(v) = std::env::var("CAHD_TEST_THREADS") {
        if let Ok(extra) = v.trim().parse::<usize>() {
            if extra >= 1 && !counts.contains(&extra) {
                counts.push(extra);
            }
        }
    }
    counts
}

#[test]
fn empty_plan_is_byte_identical_to_the_plain_pipeline() {
    let (data, sens, cfg) = instance();
    for shards in [1usize, 4] {
        for threads in thread_counts() {
            let par = ParallelConfig::new(shards, threads);
            let (plain, plain_stats) = cahd_sharded(&data, &sens, &cfg, &par).unwrap();
            let (recov, stats) = cahd_sharded_recovering(
                &data,
                &sens,
                &cfg,
                &par,
                &FaultPlan::none(),
                &Recorder::disabled(),
            )
            .unwrap();
            assert_eq!(plain, recov, "shards={shards} threads={threads}");
            assert_eq!(stats.recovered_shards, 0);
            assert_eq!(stats.merge_dissolved, plain_stats.merge_dissolved);
        }
    }
}

#[test]
fn every_shard_fault_mode_recovers_byte_identically() {
    silence_injected_panics();
    let (data, sens, cfg) = instance();
    // (plan builder, expected recovered shards) per fault mode and depth:
    // one failed attempt is retried, two exhaust the retry and fall back
    // to the sequential reference path — both count as one recovery.
    let fault_cases: Vec<(FaultPlan, usize)> = vec![
        (
            FaultPlan::none().with_shard_fault(0, ShardFault::Panic, 1),
            1,
        ),
        (
            FaultPlan::none().with_shard_fault(0, ShardFault::Panic, 2),
            1,
        ),
        (
            FaultPlan::none().with_shard_fault(0, ShardFault::Deadline, 1),
            1,
        ),
        (
            FaultPlan::none().with_shard_fault(0, ShardFault::Deadline, 2),
            1,
        ),
        (
            FaultPlan::none()
                .with_shard_fault(0, ShardFault::Panic, 2)
                .with_shard_fault(3, ShardFault::Deadline, 1),
            2,
        ),
    ];
    for shards in [1usize, 4] {
        for threads in thread_counts() {
            let par = ParallelConfig::new(shards, threads);
            let (clean, _) = cahd_sharded(&data, &sens, &cfg, &par).unwrap();
            for (plan, expected) in &fault_cases {
                let expected = expected.min(&shards);
                let rec = Recorder::new();
                let (recovered, stats) =
                    cahd_sharded_recovering(&data, &sens, &cfg, &par, plan, &rec).unwrap();
                assert_eq!(
                    clean, recovered,
                    "shards={shards} threads={threads} plan={plan:?}"
                );
                assert_eq!(
                    stats.recovered_shards, *expected,
                    "shards={shards} threads={threads} plan={plan:?}"
                );
                assert_eq!(
                    rec.snapshot().counter("core.recovered_shards"),
                    Some(*expected as u64)
                );
            }
        }
    }
}

#[test]
fn corrupt_row_injection_quarantines_exactly_the_planned_rows() {
    silence_injected_panics();
    let (_, sens, _) = instance();
    let raw = rows();
    let plan = FaultPlan::none().with_corrupt_row(2).with_corrupt_row(5);
    for shards in [1usize, 4] {
        for threads in thread_counts() {
            let mut acfg = AnonymizerConfig::with_privacy_degree(P);
            if shards > 1 || threads > 1 {
                acfg = acfg.with_parallel(ParallelConfig::new(shards, threads));
            }
            let rec = Recorder::new();
            let robust = Anonymizer::new(acfg)
                .anonymize_rows_traced(
                    &raw,
                    &sens,
                    &RecoveryConfig::quarantine().with_plan(plan.clone()),
                    &rec,
                )
                .unwrap();
            assert_eq!(robust.quarantined, vec![2, 5], "shards={shards}");
            let trace = robust.result.trace.as_ref().expect("traced run");
            assert_eq!(trace.counter("core.quarantined_rows"), Some(2));
            assert_eq!(
                robust.result.published.n_transactions(),
                raw.len(),
                "quarantined rows are still published"
            );
            // The full registry — recovery accounting included — is clean.
            let report = default_registry().run(&CheckInput {
                data: &robust.data,
                sensitive: &sens,
                published: &robust.result.published,
                p: P,
                trace: Some(trace),
                attack: None,
            });
            assert!(
                report.is_clean(),
                "shards={shards} threads={threads}:\n{}",
                report.render_human()
            );
        }
    }
}

#[test]
fn combined_faults_still_produce_a_clean_auditable_release() {
    silence_injected_panics();
    let (_, sens, _) = instance();
    let raw = rows();
    let plan = FaultPlan::none()
        .with_shard_fault(0, ShardFault::Panic, 2)
        .with_shard_fault(2, ShardFault::Deadline, 1)
        .with_corrupt_row(7);
    for threads in thread_counts() {
        let rec = Recorder::new();
        let robust = Anonymizer::new(
            AnonymizerConfig::with_privacy_degree(P).with_parallel(ParallelConfig::new(4, threads)),
        )
        .anonymize_rows_traced(
            &raw,
            &sens,
            &RecoveryConfig::quarantine().with_plan(plan.clone()),
            &rec,
        )
        .unwrap();
        assert_eq!(robust.quarantined, vec![7]);
        assert_eq!(robust.recovered_shards, 2);
        let trace = robust.result.trace.as_ref().unwrap();
        assert_eq!(trace.counter("core.recovered_shards"), Some(2));
        assert_eq!(trace.counter("core.quarantined_rows"), Some(1));
        let report = default_registry().run(&CheckInput {
            data: &robust.data,
            sensitive: &sens,
            published: &robust.result.published,
            p: P,
            trace: Some(trace),
            attack: None,
        });
        assert!(
            report.is_clean(),
            "threads={threads}:\n{}",
            report.render_human()
        );
    }
}

#[test]
fn seeded_plans_make_the_matrix_reproducible() {
    silence_injected_panics();
    let (data, sens, cfg) = instance();
    for seed in [1u64, 7, 1234] {
        let plan = FaultPlan::seeded(seed, 4, data.n_transactions());
        assert_eq!(
            plan,
            FaultPlan::seeded(seed, 4, data.n_transactions()),
            "seeded plans are pure functions of their inputs"
        );
        let par = ParallelConfig::new(4, 2);
        let (clean, _) = cahd_sharded(&data, &sens, &cfg, &par).unwrap();
        let rec = Recorder::new();
        let (recovered, stats) =
            cahd_sharded_recovering(&data, &sens, &cfg, &par, &plan, &rec).unwrap();
        assert_eq!(clean, recovered, "seed={seed}");
        assert_eq!(
            stats.recovered_shards,
            plan.expected_recovered_shards(4),
            "seed={seed}"
        );
    }
}
