//! Differential conformance harness for fault-tolerant streaming.
//!
//! Over random instances with `p in {2, 4, 8}` and `alpha in {2, 3}`, the
//! streaming anonymizer is run with batch sizes `{2p, 3p, max(n, 2p)}`
//! and interrupted with a checkpoint/kill/resume cycle at **every** chunk
//! boundary (plus once mid-batch, with rows still buffered). Every
//! interrupted run must produce exactly the uninterrupted run's output:
//! the same released chunks byte for byte, or the same terminal error.
//! Each released chunk independently passes `verify_all` and the `1/p`
//! association bound.
//!
//! The checkpoint layer gets its own round-trip property: freeze/thaw
//! through JSON is exact, and any tampering fails closed with
//! [`CahdError::CorruptCheckpoint`] before the state is trusted.

use cahd_core::checkpoint::StreamingCheckpoint;
use cahd_core::error::CahdError;
use cahd_core::pipeline::AnonymizerConfig;
use cahd_core::streaming::{ReleaseChunk, StreamingAnonymizer};
use cahd_core::verify::verify_all;
use cahd_core::CahdConfig;
use cahd_data::{ItemId, SensitiveSet, TransactionSet};
use proptest::prelude::*;

/// A random raw-row instance with `p in {2,4,8}` and `alpha in {2,3}`
/// (the same matrix as the parallel-equivalence harness, kept as rows so
/// the streaming layer does its own ingestion).
fn arb_instance() -> impl Strategy<Value = (Vec<Vec<ItemId>>, SensitiveSet, CahdConfig)> {
    (12usize..72, 6usize..16, 0usize..3, 2usize..4).prop_flat_map(|(n, d, p_idx, alpha)| {
        let p = [2usize, 4, 8][p_idx];
        (
            proptest::collection::vec(proptest::collection::vec(0..d as u32, 1..6), n..=n),
            proptest::collection::btree_set(0..d as u32, 1..3),
            Just(d),
            Just(p),
            Just(alpha),
        )
            .prop_map(|(rows, sens_items, d, p, alpha)| {
                let sens = SensitiveSet::new(sens_items.into_iter().collect(), d);
                (rows, sens, CahdConfig::new(p).with_alpha(alpha))
            })
    })
}

fn anonymizer_config(cfg: &CahdConfig) -> AnonymizerConfig {
    let mut acfg = AnonymizerConfig::with_privacy_degree(cfg.p);
    acfg.cahd = *cfg;
    acfg
}

/// Runs the whole stream without interruption.
fn run_uninterrupted(
    rows: &[Vec<ItemId>],
    sens: &SensitiveSet,
    cfg: &CahdConfig,
    batch: usize,
) -> Result<Vec<ReleaseChunk>, CahdError> {
    let mut s = StreamingAnonymizer::new(anonymizer_config(cfg), sens.clone(), batch);
    let mut chunks = Vec::new();
    for row in rows {
        if let Some(c) = s.push(row.clone())? {
            chunks.push(c);
        }
    }
    if let Some(c) = s.finish()? {
        chunks.push(c);
    }
    Ok(chunks)
}

/// Runs the stream, killing the process (checkpoint → drop → JSON
/// round-trip → resume) once: either right after the `kill_after`-th
/// released chunk, or — when `kill_after` exceeds the chunk count —
/// mid-batch after `mid_kill_at` pushes with rows still buffered.
fn run_interrupted(
    rows: &[Vec<ItemId>],
    sens: &SensitiveSet,
    cfg: &CahdConfig,
    batch: usize,
    kill_after: usize,
    mid_kill_at: usize,
) -> Result<Vec<ReleaseChunk>, CahdError> {
    let mut s = StreamingAnonymizer::new(anonymizer_config(cfg), sens.clone(), batch);
    let mut chunks = Vec::new();
    let mut killed = false;
    let mut pushed = 0usize;
    while pushed < rows.len() {
        let released = s.push(rows[pushed].clone())?;
        pushed += 1;
        let at_boundary = if let Some(c) = released {
            chunks.push(c);
            true
        } else {
            false
        };
        let kill_here = (at_boundary && chunks.len() == kill_after)
            || (kill_after == usize::MAX && pushed == mid_kill_at);
        if kill_here && !killed {
            killed = true;
            let cp = s.checkpoint();
            drop(s); // the killed process
            let json = serde_json::to_string(&cp).expect("checkpoint serializes");
            let cp: StreamingCheckpoint = serde_json::from_str(&json).expect("and parses back");
            s = StreamingAnonymizer::resume(anonymizer_config(cfg), sens.clone(), &cp)?;
            assert_eq!(
                s.next_stream_id() as usize,
                pushed,
                "resume keeps the cursor"
            );
        }
    }
    if let Some(c) = s.finish()? {
        chunks.push(c);
    }
    Ok(chunks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_resume_point_reproduces_the_uninterrupted_stream(
        (rows, sens, cfg) in arb_instance(),
    ) {
        let n = rows.len();
        let data = TransactionSet::from_rows(&rows, sens.n_items());
        let counts = sens.occurrence_counts(&data);
        prop_assume!(counts.iter().all(|&c| c * cfg.p <= n));
        for batch in [2 * cfg.p, 3 * cfg.p, n.max(2 * cfg.p)] {
            let reference = run_uninterrupted(&rows, &sens, &cfg, batch);
            // Each released chunk of a successful run verifies on its own.
            if let Ok(chunks) = &reference {
                let total: usize = chunks.iter().map(|c| c.stream_ids.len()).sum();
                prop_assert_eq!(total, n, "chunks partition the stream");
                for chunk in chunks {
                    let batch_rows: Vec<Vec<ItemId>> = chunk
                        .stream_ids
                        .iter()
                        .map(|&id| rows[id as usize].clone())
                        .collect();
                    let batch_data = TransactionSet::from_rows(&batch_rows, sens.n_items());
                    let errors = verify_all(&batch_data, &sens, &chunk.published, cfg.p);
                    prop_assert!(errors.is_empty(), "batch={}: {:?}", batch, errors);
                    prop_assert!(chunk.published.satisfies(cfg.p));
                }
            }
            let boundaries = reference.as_ref().map_or(1, Vec::len);
            // Kill at every chunk boundary...
            for kill_after in 1..=boundaries {
                let interrupted =
                    run_interrupted(&rows, &sens, &cfg, batch, kill_after, 0);
                prop_assert_eq!(
                    &interrupted, &reference,
                    "batch={} kill_after={}", batch, kill_after
                );
            }
            // ... and once mid-batch, with unreleased rows in the buffer.
            let interrupted =
                run_interrupted(&rows, &sens, &cfg, batch, usize::MAX, batch.min(n) / 2 + 1);
            prop_assert_eq!(&interrupted, &reference, "batch={} mid-batch kill", batch);
        }
    }

    #[test]
    fn checkpoints_round_trip_exactly_and_tampering_fails_closed(
        (rows, sens, cfg) in arb_instance(),
        cut in 0usize..72,
        tamper in 0usize..5,
    ) {
        let batch = 2 * cfg.p;
        let mut s = StreamingAnonymizer::new(anonymizer_config(&cfg), sens.clone(), batch);
        for row in rows.iter().take(cut.min(rows.len())) {
            // Released chunks — and even a failed batch release — are
            // irrelevant to the checkpoint property; the stream state
            // stays checkpointable either way.
            if s.push(row.clone()).is_err() {
                break;
            }
        }
        let cp = s.checkpoint();
        cp.validate().expect("a freshly sealed checkpoint validates");
        let json = serde_json::to_string(&cp).unwrap();
        let back: StreamingCheckpoint = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &cp, "freeze/thaw through JSON is exact");

        let mut bad = cp.clone();
        match tamper {
            0 => bad.next_id ^= 1,
            1 => bad.p += 1,
            2 => bad.buffer.push((bad.next_id + 7, vec![0])),
            3 => bad.digest ^= 1,
            _ => bad.version += 1,
        }
        let err = bad.validate().expect_err("tampered checkpoint must fail");
        prop_assert!(
            matches!(err, CahdError::CorruptCheckpoint { .. }),
            "{:?}", err
        );
        let err = StreamingAnonymizer::resume(anonymizer_config(&cfg), sens.clone(), &bad)
            .expect_err("resume refuses a tampered checkpoint");
        prop_assert!(matches!(err, CahdError::CorruptCheckpoint { .. }));
    }
}
