//! Sequential-equivalence harness for the sharded parallel pipeline.
//!
//! Three properties, over random feasible instances with `p in {2, 4, 8}`
//! and `alpha in {2, 3}`:
//!
//! 1. `shards = 1` is **byte-identical** to the sequential [`cahd`] —
//!    the parallel entry point is a strict superset, not a fork;
//! 2. any `shards >= 2` release passes the full `verify_all` gate with
//!    zero error-severity diagnostics from the `cahd-check` registry;
//! 3. the output is a function of the shard count only — every thread
//!    count in `{1, 2, 8}` produces the identical release
//!    (scheduling-independence).
//!
//! The `CAHD_TEST_THREADS` environment variable (used by the CI matrix)
//! adds one more thread count to every determinism sweep, so both a serial
//! and a heavily parallel schedule exercise the same assertions.

use cahd_check::{default_registry, CheckInput};
use cahd_core::cahd::cahd;
use cahd_core::shard::{cahd_sharded, ParallelConfig};
use cahd_core::verify::verify_all;
use cahd_core::CahdConfig;
use cahd_data::{SensitiveSet, TransactionSet};
use proptest::prelude::*;

/// Thread counts every determinism check sweeps: the fixed `{1, 2, 8}` of
/// the harness spec plus an optional override from `CAHD_TEST_THREADS`.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 8];
    if let Ok(v) = std::env::var("CAHD_TEST_THREADS") {
        if let Ok(extra) = v.trim().parse::<usize>() {
            if extra >= 1 && !counts.contains(&extra) {
                counts.push(extra);
            }
        }
    }
    counts
}

/// A random dataset, sensitive set and config with `p in {2,4,8}` and
/// `alpha in {2,3}` (the harness matrix from the issue).
fn arb_instance() -> impl Strategy<Value = (TransactionSet, SensitiveSet, CahdConfig)> {
    (12usize..72, 6usize..16, 0usize..3, 2usize..4).prop_flat_map(|(n, d, p_idx, alpha)| {
        let p = [2usize, 4, 8][p_idx];
        (
            proptest::collection::vec(proptest::collection::vec(0..d as u32, 1..6), n..=n),
            proptest::collection::btree_set(0..d as u32, 1..3),
            Just(d),
            Just(p),
            Just(alpha),
        )
            .prop_map(|(rows, sens_items, d, p, alpha)| {
                let data = TransactionSet::from_rows(&rows, d);
                let sens = SensitiveSet::new(sens_items.into_iter().collect(), d);
                (data, sens, CahdConfig::new(p).with_alpha(alpha))
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn one_shard_is_byte_identical_to_sequential(
        (data, sens, cfg) in arb_instance(),
    ) {
        let counts = sens.occurrence_counts(&data);
        prop_assume!(counts.iter().all(|&c| c * cfg.p <= data.n_transactions()));
        let (seq, seq_stats) = cahd(&data, &sens, &cfg).unwrap();
        for threads in thread_counts() {
            let (shd, stats) =
                cahd_sharded(&data, &sens, &cfg, &ParallelConfig::new(1, threads)).unwrap();
            // Byte-identical: same groups, same members, same summaries.
            prop_assert_eq!(&seq, &shd, "threads={}", threads);
            prop_assert_eq!(stats.cahd.groups_formed, seq_stats.groups_formed);
            prop_assert_eq!(stats.merge_dissolved, 0);
        }
    }

    #[test]
    fn sharded_releases_verify_with_zero_error_diagnostics(
        (data, sens, cfg) in arb_instance(),
        shards in 2usize..9,
    ) {
        let counts = sens.occurrence_counts(&data);
        prop_assume!(counts.iter().all(|&c| c * cfg.p <= data.n_transactions()));
        let (published, stats) =
            cahd_sharded(&data, &sens, &cfg, &ParallelConfig::new(shards, 2)).unwrap();
        // The independent collect-all verifier finds nothing.
        let errors = verify_all(&data, &sens, &published, cfg.p);
        prop_assert!(errors.is_empty(), "shards={}: {:?}", shards, errors);
        // ... and the full check registry (including the CAHD-P002
        // shard-merge pass) reports zero error-severity diagnostics.
        let report = default_registry().run(&CheckInput {
            data: &data,
            sensitive: &sens,
            published: &published,
            p: cfg.p,
            trace: None,
            attack: None,
        });
        prop_assert!(
            report.is_clean(),
            "shards={}:\n{}",
            shards,
            report.render_human()
        );
        // Stats stay coherent with the release.
        let shard_cap = shards.min(data.n_transactions());
        prop_assert_eq!(stats.shard_groups.len(), shard_cap);
        prop_assert_eq!(published.n_transactions(), data.n_transactions());
    }

    #[test]
    fn output_is_independent_of_thread_count(
        (data, sens, cfg) in arb_instance(),
        shards in 2usize..9,
    ) {
        let counts = sens.occurrence_counts(&data);
        prop_assume!(counts.iter().all(|&c| c * cfg.p <= data.n_transactions()));
        let par1 = ParallelConfig::new(shards, 1);
        let (base, base_stats) = cahd_sharded(&data, &sens, &cfg, &par1).unwrap();
        for threads in thread_counts() {
            let par = ParallelConfig::new(shards, threads);
            let (out, stats) = cahd_sharded(&data, &sens, &cfg, &par).unwrap();
            prop_assert_eq!(&base, &out, "threads={}", threads);
            prop_assert_eq!(&base_stats.shard_groups, &stats.shard_groups);
            prop_assert_eq!(base_stats.merge_dissolved, stats.merge_dissolved);
        }
    }
}
