//! Property-based tests: CAHD must uphold its invariants on arbitrary
//! (feasible) inputs.

use cahd_core::pipeline::{Anonymizer, AnonymizerConfig};
use cahd_core::{cahd, verify_published, CahdConfig, CahdError};
use cahd_data::{SensitiveSet, TransactionSet};
use proptest::prelude::*;

/// A random dataset plus a sensitive set and a privacy degree.
fn arb_instance() -> impl Strategy<Value = (TransactionSet, SensitiveSet, usize)> {
    (10usize..60, 5usize..15, 2usize..5).prop_flat_map(|(n, d, p)| {
        (
            proptest::collection::vec(proptest::collection::vec(0..d as u32, 1..6), n..=n),
            proptest::collection::btree_set(0..d as u32, 1..3),
            Just(d),
            Just(p),
        )
            .prop_map(|(rows, sens_items, d, p)| {
                let data = TransactionSet::from_rows(&rows, d);
                let sens = SensitiveSet::new(sens_items.into_iter().collect(), d);
                (data, sens, p)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cahd_output_verifies_or_is_infeasible((data, sens, p) in arb_instance()) {
        match cahd(&data, &sens, &CahdConfig::new(p)) {
            Ok((published, stats)) => {
                prop_assert!(verify_published(&data, &sens, &published, p).is_ok());
                // Regular groups have size exactly p.
                let regular = published.groups.len()
                    - usize::from(stats.fallback_group_size > 0);
                for g in published.groups.iter().take(regular) {
                    prop_assert_eq!(g.size(), p);
                }
            }
            Err(CahdError::Infeasible { item, support, .. }) => {
                // Infeasibility must be real.
                let rank = sens.index_of(item).unwrap();
                let counts = sens.occurrence_counts(&data);
                prop_assert_eq!(counts[rank], support);
                prop_assert!(support * p > data.n_transactions());
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    #[test]
    fn feasible_instances_always_succeed((data, sens, p) in arb_instance()) {
        let counts = sens.occurrence_counts(&data);
        let feasible = counts.iter().all(|&c| c * p <= data.n_transactions());
        prop_assume!(feasible);
        // Guaranteed-solution claim of Section IV: if a solution exists,
        // the one-occurrence heuristic finds one.
        let (published, _) = cahd(&data, &sens, &CahdConfig::new(p)).unwrap();
        prop_assert!(published.satisfies(p));
    }

    #[test]
    fn pipeline_matches_direct_cahd_privacy((data, sens, p) in arb_instance()) {
        let counts = sens.occurrence_counts(&data);
        prop_assume!(counts.iter().all(|&c| c * p <= data.n_transactions()));
        let res = Anonymizer::new(AnonymizerConfig::with_privacy_degree(p))
            .anonymize(&data, &sens)
            .unwrap();
        prop_assert!(verify_published(&data, &sens, &res.published, p).is_ok());
    }

    #[test]
    fn suppression_always_restores_feasibility((data, sens, p) in arb_instance()) {
        use cahd_core::enforce_feasibility;
        let (fixed, report) = enforce_feasibility(&data, &sens, p, 99);
        let counts = sens.occurrence_counts(&fixed);
        let n = fixed.n_transactions();
        prop_assert_eq!(n, data.n_transactions());
        for &c in &counts {
            prop_assert!(c * p <= n);
        }
        // Suppression count matches the excess exactly.
        let orig = sens.occurrence_counts(&data);
        let expected: usize = orig.iter().map(|&c| c.saturating_sub(n / p)).sum();
        prop_assert_eq!(report.total(), expected);
        // The repaired data always anonymizes.
        let (published, _) = cahd(&fixed, &sens, &CahdConfig::new(p)).unwrap();
        prop_assert!(verify_published(&fixed, &sens, &published, p).is_ok());
    }

    #[test]
    fn weighted_presence_equals_binary((data, sens, p) in arb_instance()) {
        use cahd_core::weighted::{cahd_weighted, verify_weighted, WeightedSimilarity};
        use cahd_data::WeightedTransactionSet;
        let counts = sens.occurrence_counts(&data);
        prop_assume!(counts.iter().all(|&c| c * p <= data.n_transactions()));
        // Lift to weighted with all-ones counts: grouping must match the
        // binary algorithm exactly under the presence scorer.
        let rows: Vec<Vec<(u32, u32)>> = data
            .iter()
            .map(|t| t.iter().map(|&i| (i, 1)).collect())
            .collect();
        let wdata = WeightedTransactionSet::from_rows(&rows, data.n_items());
        let (wpub, _) = cahd_weighted(
            &wdata,
            &sens,
            &CahdConfig::new(p),
            WeightedSimilarity::PresenceOverlap,
        )
        .unwrap();
        prop_assert!(verify_weighted(&wdata, &sens, &wpub, p).is_ok());
        let (bpub, _) = cahd(&data, &sens, &CahdConfig::new(p)).unwrap();
        let wm: Vec<Vec<u32>> = wpub.groups.iter().map(|g| g.members.clone()).collect();
        let bm: Vec<Vec<u32>> = bpub.groups.iter().map(|g| g.members.clone()).collect();
        prop_assert_eq!(wm, bm);
    }

    #[test]
    fn streaming_chunks_all_verify((data, sens, p) in arb_instance()) {
        use cahd_core::StreamingAnonymizer;
        let counts = sens.occurrence_counts(&data);
        prop_assume!(counts.iter().all(|&c| c * p <= data.n_transactions()));
        let batch = (2 * p).max(8);
        let mut s = StreamingAnonymizer::new(
            AnonymizerConfig::with_privacy_degree(p),
            sens.clone(),
            batch,
        );
        let mut chunks = Vec::new();
        let mut ok = true;
        for t in 0..data.n_transactions() {
            match s.push(data.transaction(t).to_vec()) {
                Ok(Some(c)) => chunks.push(c),
                Ok(None) => {}
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            match s.finish() {
                Ok(Some(c)) => chunks.push(c),
                Ok(None) => {}
                Err(_) => ok = false,
            }
        }
        // A batch-infeasible stream may legitimately fail at the final
        // flush; when it succeeds, coverage and privacy must hold.
        prop_assume!(ok);
        let total: usize = chunks.iter().map(|c| c.stream_ids.len()).sum();
        prop_assert_eq!(total, data.n_transactions());
        let mut seen = vec![false; data.n_transactions()];
        for c in &chunks {
            prop_assert!(c.published.satisfies(p));
            for &id in &c.stream_ids {
                prop_assert!(!seen[id as usize], "stream id {} twice", id);
                seen[id as usize] = true;
            }
        }
    }

    #[test]
    fn releases_are_diagnostics_clean((data, sens, p) in arb_instance()) {
        // Every release the crate can produce — batch, weighted, streaming —
        // must yield zero error-severity diagnostics from the full
        // `cahd-check` pass registry, not just pass the fail-fast verifier.
        use cahd_check::{default_registry, CheckInput};
        use cahd_core::weighted::{cahd_weighted, WeightedSimilarity};
        use cahd_core::StreamingAnonymizer;
        use cahd_data::WeightedTransactionSet;
        let counts = sens.occurrence_counts(&data);
        prop_assume!(counts.iter().all(|&c| c * p <= data.n_transactions()));
        let registry = default_registry();
        macro_rules! assert_clean {
            ($data:expr, $published:expr, $what:expr) => {{
                let report = registry.run(&CheckInput {
                    data: $data,
                    sensitive: &sens,
                    published: $published,
                    p,
                    trace: None,
                    attack: None,
                });
                prop_assert!(report.is_clean(), "{}:\n{}", $what, report.render_human());
            }};
        }

        // Batch pipeline.
        let res = Anonymizer::new(AnonymizerConfig::with_privacy_degree(p))
            .anonymize(&data, &sens)
            .unwrap();
        assert_clean!(&data, &res.published, "batch");

        // Sharded parallel pipeline (end to end, including the RCM
        // permutation mapping), for a shard count that forces merging.
        use cahd_core::ParallelConfig;
        let sharded = Anonymizer::new(
            AnonymizerConfig::with_privacy_degree(p)
                .with_parallel(ParallelConfig::new(4, 2)),
        )
        .anonymize(&data, &sens)
        .unwrap();
        prop_assert!(sharded.sharded_stats.is_some());
        assert_clean!(&data, &sharded.published, "sharded batch");

        // Weighted pipeline, checked through its binary projection.
        let rows: Vec<Vec<(u32, u32)>> = data
            .iter()
            .map(|t| t.iter().map(|&i| (i, 1)).collect())
            .collect();
        let wdata = WeightedTransactionSet::from_rows(&rows, data.n_items());
        let (wpub, _) = cahd_weighted(
            &wdata,
            &sens,
            &CahdConfig::new(p),
            WeightedSimilarity::MinCount,
        )
        .unwrap();
        assert_clean!(&wdata.to_binary(), &wpub.to_binary(), "weighted");

        // Streaming pipeline: each released chunk is a self-contained
        // release over the chunk's own transactions.
        let mut s = StreamingAnonymizer::new(
            AnonymizerConfig::with_privacy_degree(p),
            sens.clone(),
            (2 * p).max(8),
        );
        let mut chunks = Vec::new();
        let mut ok = true;
        for t in 0..data.n_transactions() {
            match s.push(data.transaction(t).to_vec()) {
                Ok(Some(c)) => chunks.push(c),
                Ok(None) => {}
                Err(_) => { ok = false; break; }
            }
        }
        if ok {
            if let Ok(Some(c)) = s.finish() {
                chunks.push(c);
            }
        }
        for (i, c) in chunks.iter().enumerate() {
            let rows: Vec<Vec<u32>> = c
                .stream_ids
                .iter()
                .map(|&id| data.transaction(id as usize).to_vec())
                .collect();
            let chunk_data = TransactionSet::from_rows(&rows, data.n_items());
            assert_clean!(&chunk_data, &c.published, format!("stream chunk {i}"));
        }
    }

    #[test]
    fn refinement_preserves_validity_and_objective((data, sens, p) in arb_instance()) {
        use cahd_core::{intra_group_overlap, refine_groups};
        let counts = sens.occurrence_counts(&data);
        prop_assume!(counts.iter().all(|&c| c * p <= data.n_transactions()));
        let (mut published, _) = cahd(&data, &sens, &CahdConfig::new(p)).unwrap();
        let before = intra_group_overlap(&published);
        let stats = refine_groups(&mut published, &data, &sens, p, 2, 3);
        let after = intra_group_overlap(&published);
        prop_assert!(after >= before);
        prop_assert_eq!(after - before, stats.objective_gain);
        prop_assert!(verify_published(&data, &sens, &published, p).is_ok());
    }

    #[test]
    fn alpha_only_changes_quality_not_privacy((data, sens, p) in arb_instance()) {
        let counts = sens.occurrence_counts(&data);
        prop_assume!(counts.iter().all(|&c| c * p <= data.n_transactions()));
        for alpha in [1usize, 2, 5] {
            let (published, _) =
                cahd(&data, &sens, &CahdConfig::new(p).with_alpha(alpha)).unwrap();
            prop_assert!(verify_published(&data, &sens, &published, p).is_ok());
        }
    }
}
