//! The end-to-end anonymization pipeline: RCM band reorganization followed
//! by CAHD group formation.

use std::time::{Duration, Instant};

use cahd_data::{SensitiveSet, TransactionSet};
use cahd_obs::{Recorder, TraceReport};
use cahd_rcm::{reduce_unsymmetric_traced, BandReduction, UnsymOptions};

use crate::cahd::{cahd_traced, CahdConfig, CahdStats};
use crate::error::CahdError;
use crate::group::PublishedDataset;
use crate::shard::{cahd_sharded_traced, ParallelConfig, ShardedStats};

/// Configuration of the full pipeline.
#[derive(Clone, Copy, Debug)]
pub struct AnonymizerConfig {
    /// Group-formation parameters.
    pub cahd: CahdConfig,
    /// Whether to run the RCM band reorganization first (disable for the
    /// ablation that runs CAHD on the raw transaction order).
    pub use_rcm: bool,
    /// Options for the unsymmetric bandwidth reduction.
    pub rcm: UnsymOptions,
    /// Shard/thread layout of the group-formation phase. The default is
    /// sequential; see [`crate::shard`] for the merge semantics.
    pub parallel: ParallelConfig,
}

impl AnonymizerConfig {
    /// The paper's defaults for privacy degree `p`: RCM enabled,
    /// `alpha = 3`, sequential execution.
    pub fn with_privacy_degree(p: usize) -> Self {
        AnonymizerConfig {
            cahd: CahdConfig::new(p),
            use_rcm: true,
            rcm: UnsymOptions::default(),
            parallel: ParallelConfig::default(),
        }
    }

    /// Disables the RCM phase (ablation: CAHD over the input order).
    pub fn without_rcm(mut self) -> Self {
        self.use_rcm = false;
        self
    }

    /// Runs the group-formation phase sharded across worker threads, and
    /// gives the `A·Aᵀ` build of the RCM phase the same thread count.
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self.rcm.threads = parallel.threads.max(1);
        self
    }
}

/// Output of [`Anonymizer::anonymize`].
#[derive(Debug)]
pub struct PipelineResult {
    /// The anonymized release. Group members refer to *original*
    /// transaction indices (the RCM permutation is already undone).
    pub published: PublishedDataset,
    /// CAHD run statistics (aggregated over shards for parallel runs).
    pub cahd_stats: CahdStats,
    /// Shard-level statistics, present when the run was sharded
    /// (`parallel.shards >= 2`).
    pub sharded_stats: Option<ShardedStats>,
    /// The band reduction, when RCM ran.
    pub band: Option<BandReduction>,
    /// Wall-clock time of the RCM phase (zero when disabled).
    pub rcm_time: Duration,
    /// Wall-clock time of the whole pipeline.
    pub total_time: Duration,
    /// The observability snapshot, present when the run was traced via
    /// [`Anonymizer::anonymize_traced`] with an enabled recorder. See
    /// `docs/OBSERVABILITY.md` for the span taxonomy and counter glossary.
    pub trace: Option<TraceReport>,
}

/// The reusable pipeline object.
#[derive(Clone, Copy, Debug)]
pub struct Anonymizer {
    config: AnonymizerConfig,
}

impl Anonymizer {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: AnonymizerConfig) -> Self {
        Anonymizer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AnonymizerConfig {
        &self.config
    }

    /// Anonymizes `data` with sensitive set `sensitive`.
    pub fn anonymize(
        &self,
        data: &TransactionSet,
        sensitive: &SensitiveSet,
    ) -> Result<PipelineResult, CahdError> {
        self.anonymize_traced(data, sensitive, &Recorder::disabled())
    }

    /// Like [`Anonymizer::anonymize`], recording the run into `rec` and
    /// snapshotting it into [`PipelineResult::trace`] (left `None` when
    /// `rec` is disabled — the plain entry point pays nothing for the
    /// instrumentation).
    ///
    /// The recorded span tree is rooted at `pipeline` with children
    /// `pipeline/rcm` (and its sub-phases, see
    /// [`reduce_unsymmetric_traced`]), `pipeline/permute`,
    /// `pipeline/group` (see [`cahd_traced`] / [`cahd_sharded_traced`])
    /// and `pipeline/unpermute`; direct children always sum to within the
    /// `pipeline` total, which the `CAHD-O001` check pass enforces.
    pub fn anonymize_traced(
        &self,
        data: &TransactionSet,
        sensitive: &SensitiveSet,
        rec: &Recorder,
    ) -> Result<PipelineResult, CahdError> {
        let t0 = Instant::now();
        let pipeline_span = rec.span("pipeline");
        let (band, work): (Option<BandReduction>, TransactionSet) = if self.config.use_rcm {
            let red = reduce_unsymmetric_traced(data.matrix(), self.config.rcm, rec);
            let _s = rec.span("pipeline/permute");
            let permuted = data.permute(&red.row_perm);
            (Some(red), permuted)
        } else {
            (None, data.clone())
        };
        let rcm_time = band.as_ref().map(|b| b.rcm_time).unwrap_or_default();

        let (mut published, cahd_stats, sharded_stats) = if self.config.parallel.is_sequential() {
            let (published, stats) = cahd_traced(&work, sensitive, &self.config.cahd, rec)?;
            (published, stats, None)
        } else {
            let (published, sharded) = cahd_sharded_traced(
                &work,
                sensitive,
                &self.config.cahd,
                &self.config.parallel,
                rec,
            )?;
            (published, sharded.cahd, Some(sharded))
        };

        // Map group members back to original transaction indices.
        if let Some(red) = &band {
            let _s = rec.span("pipeline/unpermute");
            for g in &mut published.groups {
                for m in &mut g.members {
                    *m = red.row_perm.new_to_old(*m as usize) as u32;
                }
            }
        }
        drop(pipeline_span);

        Ok(PipelineResult {
            published,
            cahd_stats,
            sharded_stats,
            band,
            rcm_time,
            total_time: t0.elapsed(),
            trace: rec.is_enabled().then(|| rec.snapshot()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_published;

    fn block_data() -> (TransactionSet, SensitiveSet) {
        // Two QID blocks interleaved, one sensitive item per block.
        let data = TransactionSet::from_rows(
            &[
                vec![0, 1, 8],
                vec![4, 5],
                vec![0, 1],
                vec![4, 5, 9],
                vec![0, 2],
                vec![4, 6],
                vec![1, 2],
                vec![5, 6],
            ],
            10,
        );
        let sens = SensitiveSet::new(vec![8, 9], 10);
        (data, sens)
    }

    #[test]
    fn pipeline_members_are_original_indices() {
        let (data, sens) = block_data();
        let res = Anonymizer::new(AnonymizerConfig::with_privacy_degree(2))
            .anonymize(&data, &sens)
            .unwrap();
        verify_published(&data, &sens, &res.published, 2).unwrap();
        assert!(res.band.is_some());
    }

    #[test]
    fn rcm_groups_same_block_together() {
        let (data, sens) = block_data();
        let res = Anonymizer::new(AnonymizerConfig::with_privacy_degree(2))
            .anonymize(&data, &sens)
            .unwrap();
        // The group containing transaction 0 (block A, items {0,1,2,8})
        // must contain only block-A members.
        let block_a: Vec<u32> = vec![0, 2, 4, 6];
        let g = res
            .published
            .groups
            .iter()
            .find(|g| g.members.contains(&0))
            .unwrap();
        // The regular group has size exactly p = 2.
        if g.size() == 2 {
            assert!(
                g.members.iter().all(|m| block_a.contains(m)),
                "{:?}",
                g.members
            );
        }
    }

    #[test]
    fn without_rcm_still_private() {
        let (data, sens) = block_data();
        let res = Anonymizer::new(AnonymizerConfig::with_privacy_degree(2).without_rcm())
            .anonymize(&data, &sens)
            .unwrap();
        verify_published(&data, &sens, &res.published, 2).unwrap();
        assert!(res.band.is_none());
        assert_eq!(res.rcm_time, Duration::ZERO);
    }

    #[test]
    fn traced_run_produces_coherent_nested_report() {
        let (data, sens) = block_data();
        for parallel in [ParallelConfig::sequential(), ParallelConfig::new(4, 2)] {
            let rec = Recorder::new();
            let res =
                Anonymizer::new(AnonymizerConfig::with_privacy_degree(2).with_parallel(parallel))
                    .anonymize_traced(&data, &sens, &rec)
                    .unwrap();
            verify_published(&data, &sens, &res.published, 2).unwrap();
            let trace = res.trace.expect("enabled recorder yields a trace");
            assert!(
                trace.consistency_findings().is_empty(),
                "{:?}",
                trace.consistency_findings()
            );
            assert!(
                trace.orphan_spans().is_empty(),
                "{:?}",
                trace.orphan_spans()
            );
            // The root span covers its children and the phase spans exist.
            let root = trace.span("pipeline").expect("root span");
            let children_ns: u64 = trace
                .span_children("pipeline")
                .iter()
                .map(|s| s.total_ns)
                .sum();
            assert!(children_ns <= root.total_ns);
            for path in ["pipeline/rcm", "pipeline/permute", "pipeline/group"] {
                assert!(trace.span(path).is_some(), "missing {path}");
            }
            // Engine counters agree with the returned stats.
            assert_eq!(
                trace.counter("core.groups_formed").unwrap_or(0),
                res.cahd_stats.groups_formed as u64
            );
            assert_eq!(
                trace.counter("core.pivots_scanned").unwrap_or(0),
                trace.counter("core.groups_formed").unwrap_or(0)
                    + trace.counter("core.rollbacks").unwrap_or(0)
                    + trace.counter("core.insufficient_candidates").unwrap_or(0)
            );
            // Every scanned candidate was scored by exactly one kernel path.
            assert_eq!(
                trace.counter("core.kernel_dense_scores").unwrap_or(0)
                    + trace.counter("core.kernel_sparse_scores").unwrap_or(0),
                trace.counter("core.candidates_scanned").unwrap_or(0)
            );
            assert!(
                trace.counter("core.kernel_cache_hits").unwrap_or(0)
                    <= trace.counter("core.kernel_dense_scores").unwrap_or(0)
            );
            if !parallel.is_sequential() {
                let scans = trace.histogram("core.shard_scan_ns").expect("shard hist");
                assert_eq!(scans.count as usize, res.sharded_stats.unwrap().shards);
                assert!(trace.span("pipeline/group/merge").is_some());
            }
        }
        // The untraced entry point carries no trace.
        let res = Anonymizer::new(AnonymizerConfig::with_privacy_degree(2))
            .anonymize(&data, &sens)
            .unwrap();
        assert!(res.trace.is_none());
    }

    #[test]
    fn errors_propagate() {
        let (data, _) = block_data();
        let sens = SensitiveSet::new(vec![0], 10); // item 0: support 3 of 8
        let err = Anonymizer::new(AnonymizerConfig::with_privacy_degree(4))
            .anonymize(&data, &sens)
            .unwrap_err();
        assert!(matches!(err, CahdError::Infeasible { .. }));
    }
}
