//! The end-to-end anonymization pipeline: RCM band reorganization followed
//! by CAHD group formation.

use std::time::{Duration, Instant};

use cahd_data::{ItemId, SensitiveSet, TransactionSet};
use cahd_obs::{Recorder, TraceReport};
use cahd_rcm::{reduce_unsymmetric_traced, BandReduction, UnsymOptions};

use crate::cahd::{cahd_traced, CahdConfig, CahdStats};
use crate::error::CahdError;
use crate::group::{AnonymizedGroup, PublishedDataset};
use crate::invariant::{strict_invariant, strict_invariant_eq};
use crate::recovery::{bad_row_reason, sanitize_row, FaultPlan, InputPolicy, RecoveryConfig};
use crate::shard::{cahd_sharded_recovering, ParallelConfig, ShardedStats};

/// Configuration of the full pipeline.
#[derive(Clone, Copy, Debug)]
pub struct AnonymizerConfig {
    /// Group-formation parameters.
    pub cahd: CahdConfig,
    /// Whether to run the RCM band reorganization first (disable for the
    /// ablation that runs CAHD on the raw transaction order).
    pub use_rcm: bool,
    /// Options for the unsymmetric bandwidth reduction.
    pub rcm: UnsymOptions,
    /// Shard/thread layout of the group-formation phase. The default is
    /// sequential; see [`crate::shard`] for the merge semantics.
    pub parallel: ParallelConfig,
}

impl AnonymizerConfig {
    /// The paper's defaults for privacy degree `p`: RCM enabled,
    /// `alpha = 3`, sequential execution.
    pub fn with_privacy_degree(p: usize) -> Self {
        AnonymizerConfig {
            cahd: CahdConfig::new(p),
            use_rcm: true,
            rcm: UnsymOptions::default(),
            parallel: ParallelConfig::default(),
        }
    }

    /// Disables the RCM phase (ablation: CAHD over the input order).
    pub fn without_rcm(mut self) -> Self {
        self.use_rcm = false;
        self
    }

    /// Runs the group-formation phase sharded across worker threads, and
    /// gives the `A·Aᵀ` build of the RCM phase the same thread count.
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self.rcm.threads = parallel.threads.max(1);
        self
    }

    /// Selects the band-reducing ordering strategy of the RCM phase
    /// (`rcm`, `bfs` or `cluster`; see [`cahd_rcm::OrderingStrategy`]).
    /// The `CAHD_ORDERING` environment variable still overrides this at
    /// run time.
    pub fn with_ordering(mut self, ordering: cahd_rcm::OrderingStrategy) -> Self {
        self.rcm.ordering = ordering;
        self
    }

    /// Selects the `A x A^T` representation policy of the RCM phase
    /// (`auto`, `explicit` or `implicit`; see
    /// [`cahd_rcm::RowGraphMode`]). The `CAHD_ROWGRAPH` environment
    /// variable still overrides this at run time.
    pub fn with_rowgraph(mut self, mode: cahd_rcm::RowGraphMode) -> Self {
        self.rcm.rowgraph = mode;
        self
    }

    /// Sets the hub-item support cap of the implicit representation:
    /// items with support above the cap are skipped during neighbor
    /// enumeration (a quality-budgeted variant; under `auto` the cap
    /// forces the implicit representation). `CAHD_HUB_CAP` still
    /// overrides this at run time.
    pub fn with_hub_cap(mut self, cap: Option<u32>) -> Self {
        self.rcm.hub_cap = cap;
        self
    }
}

/// Output of [`Anonymizer::anonymize`].
#[derive(Debug)]
pub struct PipelineResult {
    /// The anonymized release. Group members refer to *original*
    /// transaction indices (the RCM permutation is already undone).
    pub published: PublishedDataset,
    /// CAHD run statistics (aggregated over shards for parallel runs).
    pub cahd_stats: CahdStats,
    /// Shard-level statistics, present when the run was sharded
    /// (`parallel.shards >= 2`).
    pub sharded_stats: Option<ShardedStats>,
    /// The band reduction, when RCM ran.
    pub band: Option<BandReduction>,
    /// Wall-clock time of the RCM phase (zero when disabled).
    pub rcm_time: Duration,
    /// Wall-clock time of the whole pipeline.
    pub total_time: Duration,
    /// The observability snapshot, present when the run was traced via
    /// [`Anonymizer::anonymize_traced`] with an enabled recorder. See
    /// `docs/OBSERVABILITY.md` for the span taxonomy and counter glossary.
    pub trace: Option<TraceReport>,
}

/// The reusable pipeline object.
#[derive(Clone, Copy, Debug)]
pub struct Anonymizer {
    config: AnonymizerConfig,
}

impl Anonymizer {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: AnonymizerConfig) -> Self {
        Anonymizer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AnonymizerConfig {
        &self.config
    }

    /// Anonymizes `data` with sensitive set `sensitive`.
    pub fn anonymize(
        &self,
        data: &TransactionSet,
        sensitive: &SensitiveSet,
    ) -> Result<PipelineResult, CahdError> {
        self.anonymize_traced(data, sensitive, &Recorder::disabled())
    }

    /// Like [`Anonymizer::anonymize`], recording the run into `rec` and
    /// snapshotting it into [`PipelineResult::trace`] (left `None` when
    /// `rec` is disabled — the plain entry point pays nothing for the
    /// instrumentation).
    ///
    /// The recorded span tree is rooted at `pipeline` with children
    /// `pipeline/rcm` (and its sub-phases, see
    /// [`reduce_unsymmetric_traced`]), `pipeline/permute`,
    /// `pipeline/group` (see [`cahd_traced`] /
    /// [`crate::shard::cahd_sharded_traced`]) and `pipeline/unpermute`;
    /// direct children always sum to within the `pipeline` total, which
    /// the `CAHD-O001` check pass enforces.
    pub fn anonymize_traced(
        &self,
        data: &TransactionSet,
        sensitive: &SensitiveSet,
        rec: &Recorder,
    ) -> Result<PipelineResult, CahdError> {
        self.anonymize_with_plan(data, sensitive, &FaultPlan::none(), rec)
    }

    /// [`Anonymizer::anonymize_traced`] with shard faults injected from
    /// `plan`. A plan with shard faults forces the group-formation phase
    /// through the recovering sharded engine even for a single shard, so
    /// every fault is actually exercised; corrupt-row injections are an
    /// ingestion concern and ignored here (see
    /// [`Anonymizer::anonymize_rows`]).
    fn anonymize_with_plan(
        &self,
        data: &TransactionSet,
        sensitive: &SensitiveSet,
        plan: &FaultPlan,
        rec: &Recorder,
    ) -> Result<PipelineResult, CahdError> {
        // cahd-lint: allow(L002, reason = "elapsed-time stat only; release bytes never depend on it")
        let t0 = Instant::now();
        let pipeline_span = rec.span("pipeline");
        let (band, work): (Option<BandReduction>, TransactionSet) = if self.config.use_rcm {
            let red = reduce_unsymmetric_traced(data.matrix(), self.config.rcm, rec);
            let _s = rec.span("pipeline/permute");
            let permuted = data.permute(&red.row_perm);
            (Some(red), permuted)
        } else {
            (None, data.clone())
        };
        let rcm_time = band.as_ref().map(|b| b.rcm_time).unwrap_or_default();

        let (mut published, cahd_stats, sharded_stats) =
            if self.config.parallel.is_sequential() && !plan.has_shard_faults() {
                let (published, stats) = cahd_traced(&work, sensitive, &self.config.cahd, rec)?;
                (published, stats, None)
            } else {
                let (published, sharded) = cahd_sharded_recovering(
                    &work,
                    sensitive,
                    &self.config.cahd,
                    &self.config.parallel,
                    plan,
                    rec,
                )?;
                (published, sharded.cahd, Some(sharded))
            };

        // Map group members back to original transaction indices.
        if let Some(red) = &band {
            let _s = rec.span("pipeline/unpermute");
            for g in &mut published.groups {
                for m in &mut g.members {
                    *m = red.row_perm.new_to_old(*m as usize) as u32;
                }
            }
        }
        drop(pipeline_span);
        // Inert unless the binary runs the tracking allocator and the
        // recorder opted in via `with_memory`.
        rec.record_memory_gauges();

        Ok(PipelineResult {
            published,
            cahd_stats,
            sharded_stats,
            band,
            rcm_time,
            total_time: t0.elapsed(),
            trace: rec.is_enabled().then(|| rec.snapshot()),
        })
    }

    /// Anonymizes raw `rows` with input validation and fault recovery.
    ///
    /// See [`Anonymizer::anonymize_rows_traced`].
    ///
    /// # Errors
    /// As [`Anonymizer::anonymize_rows_traced`].
    pub fn anonymize_rows(
        &self,
        rows: &[Vec<ItemId>],
        sensitive: &SensitiveSet,
        recovery: &RecoveryConfig,
    ) -> Result<RobustResult, CahdError> {
        self.anonymize_rows_traced(rows, sensitive, recovery, &Recorder::disabled())
    }

    /// The robust pipeline entry point: raw rows in, a validated release
    /// out, surviving corrupt input and injected shard faults.
    ///
    /// Rows are validated against the sensitive set's universe *before*
    /// dataset construction (which would silently sort, de-duplicate, and
    /// re-infer the universe). A row with an out-of-range item or a
    /// duplicate item id — or one injected as corrupt by
    /// `recovery.plan` — is handled per `recovery.policy`:
    ///
    /// * [`InputPolicy::Strict`] — the run fails with
    ///   [`CahdError::CorruptRow`] naming the first bad row;
    /// * [`InputPolicy::Quarantine`] — the row is sanitized (in-range
    ///   items, de-duplicated) and pinned into the **final leftover
    ///   group**: it is published, but never acts as a pivot or candidate
    ///   during group formation. If absorbing the quarantine overloads
    ///   the final group's `1/p` bound, regular groups are dissolved into
    ///   it (last formed first, exactly like the shard merge repair)
    ///   until the bound holds — global feasibility of the sanitized
    ///   dataset guarantees termination.
    ///
    /// Shard faults in `recovery.plan` are recovered by
    /// [`cahd_sharded_recovering`]. Recovery actions are recorded on
    /// `rec` as the scheduling-invariant counters
    /// `core.quarantined_rows` and `core.recovered_shards` (audited by
    /// the `CAHD-R001` check pass), and the returned trace snapshot
    /// includes them. With no bad rows and an empty plan the release is
    /// byte-identical to [`Anonymizer::anonymize_traced`] over the same
    /// rows.
    ///
    /// # Errors
    /// [`CahdError::CorruptRow`] under the strict policy, then everything
    /// [`Anonymizer::anonymize`] reports (parameter errors first, then
    /// shape errors, then infeasibility — all evaluated on the sanitized
    /// dataset).
    pub fn anonymize_rows_traced(
        &self,
        rows: &[Vec<ItemId>],
        sensitive: &SensitiveSet,
        recovery: &RecoveryConfig,
        rec: &Recorder,
    ) -> Result<RobustResult, CahdError> {
        // cahd-lint: allow(L002, reason = "elapsed-time stat only; release bytes never depend on it")
        let t0 = Instant::now();
        self.config.cahd.validate()?;
        let n_items = sensitive.n_items();
        let p = self.config.cahd.p;

        // Ingestion: classify every raw row before any dataset exists.
        let mut quarantined: Vec<usize> = Vec::new();
        let mut clean_rows: Vec<Vec<ItemId>> = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let reason = if recovery.plan.row_is_corrupt(i) {
                Some("injected corruption".to_string())
            } else {
                bad_row_reason(row, n_items)
            };
            match reason {
                None => clean_rows.push(row.clone()),
                Some(reason) => match recovery.policy {
                    InputPolicy::Strict => {
                        return Err(CahdError::CorruptRow { row: i, reason });
                    }
                    InputPolicy::Quarantine => {
                        quarantined.push(i);
                        clean_rows.push(sanitize_row(row, n_items));
                    }
                },
            }
        }
        let data = TransactionSet::from_rows(&clean_rows, n_items);
        let n = data.n_transactions();

        if quarantined.is_empty() {
            let result = self.anonymize_with_plan(&data, sensitive, &recovery.plan, rec)?;
            return Ok(RobustResult {
                recovered_shards: result
                    .sharded_stats
                    .as_ref()
                    .map_or(0, |s| s.recovered_shards),
                result: PipelineResult {
                    trace: rec.is_enabled().then(|| rec.snapshot()),
                    ..result
                },
                data,
                quarantined,
            });
        }

        // --- Quarantine path. ---
        if n == 0 {
            return Err(CahdError::EmptyDataset);
        }
        // Global feasibility over the *sanitized* dataset: quarantined
        // rows are published too, so they count toward both sides of the
        // bound. This also guarantees the dissolve repair terminates.
        let counts = sensitive.occurrence_counts(&data);
        for (r, &c) in counts.iter().enumerate() {
            if c * p > n {
                return Err(CahdError::Infeasible {
                    item: sensitive.items()[r],
                    support: c,
                    p,
                    n,
                });
            }
        }
        let mut in_quarantine = vec![false; n];
        for &i in &quarantined {
            in_quarantine[i] = true;
        }
        let good: Vec<usize> = (0..n).filter(|&i| !in_quarantine[i]).collect();
        let good_rows: Vec<Vec<ItemId>> = good.iter().map(|&i| clean_rows[i].clone()).collect();
        let good_data = TransactionSet::from_rows(&good_rows, n_items);
        let good_counts = sensitive.occurrence_counts(&good_data);
        let good_feasible = !good.is_empty() && good_counts.iter().all(|&c| c * p <= good.len());

        let sens_ranks_of =
            |m: u32| -> Vec<usize> { sensitive.split_transaction(data.transaction(m as usize)).1 };

        let result = if good_feasible {
            // Anonymize the good subset, then splice the quarantine into
            // the final leftover group.
            let mut result =
                self.anonymize_with_plan(&good_data, sensitive, &recovery.plan, rec)?;
            for g in &mut result.published.groups {
                for m in &mut g.members {
                    *m = good[*m as usize] as u32;
                }
            }
            let mut groups = std::mem::take(&mut result.published.groups);
            let inner_fallback = result.cahd_stats.fallback_group_size;
            let mut final_members: Vec<u32> = if inner_fallback > 0 {
                groups
                    .pop()
                    // cahd-lint: allow(L003, reason = "inner_fallback > 0 records that this same run appended a leftover group")
                    .expect("a recorded leftover group exists")
                    .members
            } else {
                Vec::new()
            };
            final_members.extend(quarantined.iter().map(|&i| i as u32));
            let mut hist = vec![0usize; sensitive.len()];
            for &m in &final_members {
                for r in sens_ranks_of(m) {
                    hist[r] += 1;
                }
            }
            let mut dissolved = 0usize;
            while hist.iter().any(|&c| c * p > final_members.len()) {
                let g = groups
                    .pop()
                    // cahd-lint: allow(L003, reason = "global feasibility (checked at entry) guarantees the loop terminates before groups empties")
                    .expect("global feasibility bounds the dissolve loop");
                for &m in &g.members {
                    for r in sens_ranks_of(m) {
                        hist[r] += 1;
                    }
                }
                final_members.extend(g.members);
                dissolved += 1;
            }
            final_members.sort_unstable();
            groups.push(AnonymizedGroup::from_members(
                &data,
                sensitive,
                &final_members,
            ));
            result.published.groups = groups;
            result.cahd_stats.groups_formed -= dissolved;
            result.cahd_stats.fallback_group_size = final_members.len();
            rec.add("core.merge_dissolved", dissolved as u64);
            rec.add(
                "core.fallback_group_size",
                (final_members.len() - inner_fallback) as u64,
            );
            result
        } else {
            // The good subset alone is empty or infeasible (the bad rows
            // held the slack). Degrade to the one release that is always
            // valid under global feasibility: the whole dataset as a
            // single group.
            let members: Vec<u32> =
                // cahd-lint: allow(L003, reason = "TransactionSet indexes rows with u32, so n <= u32::MAX structurally")
                (0..u32::try_from(n).expect("dataset fits u32 indices")).collect();
            let group = AnonymizedGroup::from_members(&data, sensitive, &members);
            rec.add("core.fallback_group_size", n as u64);
            PipelineResult {
                published: PublishedDataset {
                    n_items,
                    sensitive_items: sensitive.items().to_vec(),
                    groups: vec![group],
                },
                cahd_stats: CahdStats {
                    fallback_group_size: n,
                    ..CahdStats::default()
                },
                sharded_stats: None,
                band: None,
                rcm_time: Duration::ZERO,
                total_time: Duration::ZERO,
                trace: None,
            }
        };
        rec.add("core.quarantined_rows", quarantined.len() as u64);

        strict_invariant!(
            result.published.satisfies(p),
            "robust pipeline invariant violated after quarantine merge"
        );
        strict_invariant_eq!(
            result.published.n_transactions(),
            n,
            "robust pipeline must publish every row exactly once"
        );
        // Refresh the allocator gauges past the quarantine merge (the
        // degraded path never enters `anonymize_with_plan`).
        rec.record_memory_gauges();
        Ok(RobustResult {
            recovered_shards: result
                .sharded_stats
                .as_ref()
                .map_or(0, |s| s.recovered_shards),
            result: PipelineResult {
                total_time: t0.elapsed(),
                trace: rec.is_enabled().then(|| rec.snapshot()),
                ..result
            },
            data,
            quarantined,
        })
    }
}

/// Output of the robust entry points
/// ([`Anonymizer::anonymize_rows`] / [`Anonymizer::anonymize_rows_traced`]).
#[derive(Debug)]
pub struct RobustResult {
    /// The pipeline output. `result.published` covers **every** submitted
    /// row (quarantined ones included, sanitized), and `result.trace`
    /// additionally carries the recovery counters.
    pub result: PipelineResult,
    /// The sanitized dataset the release publishes — what
    /// [`crate::verify::verify_all`] must be run against.
    pub data: TransactionSet,
    /// Indices of quarantined rows (ascending). Always empty under
    /// [`InputPolicy::Strict`].
    pub quarantined: Vec<usize>,
    /// Shards whose first scan attempt failed and were recovered.
    pub recovered_shards: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_published;

    fn block_data() -> (TransactionSet, SensitiveSet) {
        // Two QID blocks interleaved, one sensitive item per block.
        let data = TransactionSet::from_rows(
            &[
                vec![0, 1, 8],
                vec![4, 5],
                vec![0, 1],
                vec![4, 5, 9],
                vec![0, 2],
                vec![4, 6],
                vec![1, 2],
                vec![5, 6],
            ],
            10,
        );
        let sens = SensitiveSet::new(vec![8, 9], 10);
        (data, sens)
    }

    #[test]
    fn pipeline_members_are_original_indices() {
        let (data, sens) = block_data();
        let res = Anonymizer::new(AnonymizerConfig::with_privacy_degree(2))
            .anonymize(&data, &sens)
            .unwrap();
        verify_published(&data, &sens, &res.published, 2).unwrap();
        assert!(res.band.is_some());
    }

    #[test]
    fn rcm_groups_same_block_together() {
        let (data, sens) = block_data();
        let res = Anonymizer::new(AnonymizerConfig::with_privacy_degree(2))
            .anonymize(&data, &sens)
            .unwrap();
        // The group containing transaction 0 (block A, items {0,1,2,8})
        // must contain only block-A members.
        let block_a: Vec<u32> = vec![0, 2, 4, 6];
        let g = res
            .published
            .groups
            .iter()
            .find(|g| g.members.contains(&0))
            .unwrap();
        // The regular group has size exactly p = 2.
        if g.size() == 2 {
            assert!(
                g.members.iter().all(|m| block_a.contains(m)),
                "{:?}",
                g.members
            );
        }
    }

    #[test]
    fn without_rcm_still_private() {
        let (data, sens) = block_data();
        let res = Anonymizer::new(AnonymizerConfig::with_privacy_degree(2).without_rcm())
            .anonymize(&data, &sens)
            .unwrap();
        verify_published(&data, &sens, &res.published, 2).unwrap();
        assert!(res.band.is_none());
        assert_eq!(res.rcm_time, Duration::ZERO);
    }

    #[test]
    fn traced_run_produces_coherent_nested_report() {
        let (data, sens) = block_data();
        for parallel in [ParallelConfig::sequential(), ParallelConfig::new(4, 2)] {
            let rec = Recorder::new();
            let res =
                Anonymizer::new(AnonymizerConfig::with_privacy_degree(2).with_parallel(parallel))
                    .anonymize_traced(&data, &sens, &rec)
                    .unwrap();
            verify_published(&data, &sens, &res.published, 2).unwrap();
            let trace = res.trace.expect("enabled recorder yields a trace");
            assert!(
                trace.consistency_findings().is_empty(),
                "{:?}",
                trace.consistency_findings()
            );
            assert!(
                trace.orphan_spans().is_empty(),
                "{:?}",
                trace.orphan_spans()
            );
            // The root span covers its children and the phase spans exist.
            let root = trace.span("pipeline").expect("root span");
            let children_ns: u64 = trace
                .span_children("pipeline")
                .iter()
                .map(|s| s.total_ns)
                .sum();
            assert!(children_ns <= root.total_ns);
            for path in ["pipeline/rcm", "pipeline/permute", "pipeline/group"] {
                assert!(trace.span(path).is_some(), "missing {path}");
            }
            // Engine counters agree with the returned stats.
            assert_eq!(
                trace.counter_or_zero("core.groups_formed"),
                res.cahd_stats.groups_formed as u64
            );
            assert_eq!(
                trace.counter_or_zero("core.pivots_scanned"),
                trace.counter_or_zero("core.groups_formed")
                    + trace.counter_or_zero("core.rollbacks")
                    + trace.counter_or_zero("core.insufficient_candidates")
            );
            // Every scanned candidate was scored by exactly one kernel path.
            assert_eq!(
                trace.counter_or_zero("core.kernel_dense_scores")
                    + trace.counter_or_zero("core.kernel_sparse_scores"),
                trace.counter_or_zero("core.candidates_scanned")
            );
            assert!(
                trace.counter_or_zero("core.kernel_cache_hits")
                    <= trace.counter_or_zero("core.kernel_dense_scores")
            );
            if !parallel.is_sequential() {
                let scans = trace.histogram("core.shard_scan_ns").expect("shard hist");
                assert_eq!(scans.count as usize, res.sharded_stats.unwrap().shards);
                assert!(trace.span("pipeline/group/merge").is_some());
            }
        }
        // The untraced entry point carries no trace.
        let res = Anonymizer::new(AnonymizerConfig::with_privacy_degree(2))
            .anonymize(&data, &sens)
            .unwrap();
        assert!(res.trace.is_none());
    }

    #[test]
    fn errors_propagate() {
        let (data, _) = block_data();
        let sens = SensitiveSet::new(vec![0], 10); // item 0: support 3 of 8
        let err = Anonymizer::new(AnonymizerConfig::with_privacy_degree(4))
            .anonymize(&data, &sens)
            .unwrap_err();
        assert!(matches!(err, CahdError::Infeasible { .. }));
    }

    fn block_rows() -> (Vec<Vec<u32>>, SensitiveSet) {
        let (data, sens) = block_data();
        let rows: Vec<Vec<u32>> = data.iter().map(<[u32]>::to_vec).collect();
        (rows, sens)
    }

    #[test]
    fn clean_rows_match_the_plain_pipeline_exactly() {
        let (rows, sens) = block_rows();
        let anon = Anonymizer::new(AnonymizerConfig::with_privacy_degree(2));
        let plain = anon
            .anonymize(&TransactionSet::from_rows(&rows, 10), &sens)
            .unwrap();
        for recovery in [RecoveryConfig::strict(), RecoveryConfig::quarantine()] {
            let robust = anon.anonymize_rows(&rows, &sens, &recovery).unwrap();
            assert_eq!(robust.result.published, plain.published);
            assert!(robust.quarantined.is_empty());
            assert_eq!(robust.recovered_shards, 0);
        }
    }

    #[test]
    fn strict_policy_rejects_the_first_bad_row() {
        let (mut rows, sens) = block_rows();
        rows[3] = vec![1, 99]; // out of the 10-item universe
        rows[5] = vec![4, 4]; // duplicate item
        let anon = Anonymizer::new(AnonymizerConfig::with_privacy_degree(2));
        let err = anon
            .anonymize_rows(&rows, &sens, &RecoveryConfig::strict())
            .unwrap_err();
        assert!(
            matches!(err, CahdError::CorruptRow { row: 3, ref reason }
                if reason.contains("out of range")),
            "{err:?}"
        );
        // Parameter errors still take precedence over ingestion.
        let err = Anonymizer::new(AnonymizerConfig::with_privacy_degree(1))
            .anonymize_rows(&rows, &sens, &RecoveryConfig::strict())
            .unwrap_err();
        assert!(matches!(err, CahdError::InvalidPrivacyDegree(1)));
    }

    #[test]
    fn quarantined_rows_land_in_the_final_group() {
        let (mut rows, sens) = block_rows();
        rows[3] = vec![4, 5, 9, 99]; // out-of-range tail; sanitized to {4,5,9}
        rows[6] = vec![1, 1, 2]; // duplicate; sanitized to {1,2}
        let anon = Anonymizer::new(AnonymizerConfig::with_privacy_degree(2));
        let rec = Recorder::new();
        let robust = anon
            .anonymize_rows_traced(&rows, &sens, &RecoveryConfig::quarantine(), &rec)
            .unwrap();
        assert_eq!(robust.quarantined, vec![3, 6]);
        let pub_ = &robust.result.published;
        assert_eq!(pub_.n_transactions(), rows.len());
        assert!(pub_.satisfies(2));
        let errors = crate::verify::verify_all(&robust.data, &sens, pub_, 2);
        assert!(errors.is_empty(), "{errors:?}");
        // Quarantined rows sit in the final (last) group, published with
        // their sanitized contents.
        let last = pub_.groups.last().unwrap();
        for &q in &robust.quarantined {
            assert!(last.members.contains(&(q as u32)), "{:?}", last.members);
        }
        assert_eq!(robust.data.transaction(3), &[4, 5, 9]);
        assert_eq!(robust.data.transaction(6), &[1, 2]);
        let trace = robust.result.result_trace();
        assert_eq!(trace.counter("core.quarantined_rows"), Some(2));
        assert!(
            trace.counter_or_zero("core.fallback_group_size")
                >= trace.counter_or_zero("core.quarantined_rows")
        );
    }

    #[test]
    fn injected_corruption_quarantines_clean_rows() {
        let (rows, sens) = block_rows();
        let anon = Anonymizer::new(AnonymizerConfig::with_privacy_degree(2));
        let recovery = RecoveryConfig::quarantine()
            .with_plan(FaultPlan::none().with_corrupt_row(1).with_corrupt_row(5));
        let robust = anon.anonymize_rows(&rows, &sens, &recovery).unwrap();
        assert_eq!(robust.quarantined, vec![1, 5]);
        assert_eq!(robust.result.published.n_transactions(), rows.len());
        // The rows themselves were clean, so their published form is
        // untouched.
        assert_eq!(robust.data.transaction(1), &[4, 5]);
    }

    #[test]
    fn infeasible_good_subset_degrades_to_a_single_group() {
        // Both sensitive rows quarantined: the good subset has zero
        // occurrences (feasible), so instead force infeasibility of the
        // good subset by quarantining most NON-sensitive rows.
        let rows: Vec<Vec<u32>> = vec![
            vec![0, 8],
            vec![0],
            vec![1],
            vec![2],
            vec![0, 1],
            vec![1, 2],
            vec![2, 0],
            vec![1],
        ];
        let sens = SensitiveSet::new(vec![8], 9);
        let mut plan = FaultPlan::none();
        for r in 1..7 {
            plan = plan.with_corrupt_row(r);
        }
        let anon = Anonymizer::new(AnonymizerConfig::with_privacy_degree(4));
        let robust = anon
            .anonymize_rows(&rows, &sens, &RecoveryConfig::quarantine().with_plan(plan))
            .unwrap();
        // Good subset {0, 7} carries the sensitive occurrence with 1*4 > 2
        // -> the whole dataset degrades to one group (1*4 <= 8 globally).
        assert_eq!(robust.result.published.n_groups(), 1);
        assert!(robust.result.published.satisfies(4));
        assert_eq!(robust.result.published.n_transactions(), 8);
    }

    #[test]
    fn quarantine_overload_dissolves_groups() {
        // Quarantined sensitive rows overload the leftover group: the
        // repair loop must dissolve regular groups until 1/p holds.
        let mut rows: Vec<Vec<u32>> = Vec::new();
        for i in 0..12u32 {
            rows.push(vec![i % 3]);
        }
        rows.push(vec![0, 8, 8]); // corrupt AND sensitive
        rows.push(vec![1, 8, 8]); // corrupt AND sensitive
        let sens = SensitiveSet::new(vec![8], 9);
        let anon = Anonymizer::new(AnonymizerConfig::with_privacy_degree(2));
        let robust = anon
            .anonymize_rows(&rows, &sens, &RecoveryConfig::quarantine())
            .unwrap();
        assert_eq!(robust.quarantined, vec![12, 13]);
        let pub_ = &robust.result.published;
        assert!(pub_.satisfies(2));
        assert_eq!(pub_.n_transactions(), 14);
        let errors = crate::verify::verify_all(&robust.data, &sens, pub_, 2);
        assert!(errors.is_empty(), "{errors:?}");
        // Both sensitive occurrences live in the final group: it needs
        // size >= 4, more than the two quarantined rows alone.
        assert!(pub_.groups.last().unwrap().size() >= 4);
    }

    impl PipelineResult {
        fn result_trace(&self) -> &TraceReport {
            self.trace.as_ref().expect("traced run yields a trace")
        }
    }
}
