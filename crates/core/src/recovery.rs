//! Fault tolerance: deterministic fault injection and input hygiene.
//!
//! A production anonymization service must survive three failure classes
//! without discarding work or weakening the release:
//!
//! * a **shard worker** that panics or exceeds its deadline (see
//!   [`crate::shard::cahd_sharded_recovering`]): retried once, then its
//!   slice falls back to the sequential reference path;
//! * a **corrupt input row** (out-of-range items, duplicate item ids):
//!   under [`InputPolicy::Quarantine`] the row is sanitized and pinned to
//!   the final leftover group instead of aborting the run (see
//!   [`crate::pipeline::Anonymizer::anonymize_rows`]);
//! * a **killed process** mid-stream: the
//!   [`crate::streaming::StreamingAnonymizer`] state serializes to a
//!   [`crate::checkpoint::StreamingCheckpoint`] and resumes exactly.
//!
//! Every recovery action is observable through three scheduling-invariant
//! `cahd-obs` counters (`core.recovered_shards`, `core.quarantined_rows`,
//! `core.resumed_batches`), audited by the `CAHD-R001` check pass.
//!
//! # Determinism
//!
//! Faults are injected from a [`FaultPlan`] keyed by *shard index and
//! attempt* (or row index) — never by wall clock or thread identity — so
//! every recovery path is drivable from tests and the resulting release
//! and counters are byte-identical across thread counts. In particular a
//! "deadline" fault *simulates* an exceeded deadline deterministically;
//! real preemption would make counters scheduling-dependent, which the
//! observability determinism contract forbids.

use std::collections::{BTreeMap, BTreeSet};

use cahd_data::ItemId;

/// The failure mode injected into a shard worker attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardFault {
    /// The worker panics mid-scan (caught by the recovery wrapper).
    Panic,
    /// The worker reports its deadline as exceeded and abandons the
    /// attempt (simulated deterministically — see the module docs).
    Deadline,
}

/// How ingestion treats rows with out-of-range items or duplicate ids.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InputPolicy {
    /// Reject the run with [`crate::CahdError::CorruptRow`] on the first
    /// bad row (the default: nothing unexpected is ever published).
    #[default]
    Strict,
    /// Sanitize the bad row (drop out-of-range items, de-duplicate) and
    /// pin it to the final leftover group; the row is published but never
    /// acts as a pivot or candidate. Counted by `core.quarantined_rows`.
    Quarantine,
}

/// A deterministic fault-injection plan: which shard attempts fail, with
/// which failure mode, and which input rows read as corrupt.
///
/// An empty plan (the default) injects nothing and leaves every recovery
/// code path byte-identical to the fault-free pipeline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// shard index -> (failure mode, number of failing attempts).
    shard_faults: BTreeMap<usize, (ShardFault, u32)>,
    /// Row indices (pre-pipeline order) treated as corrupt on ingestion.
    corrupt_rows: BTreeSet<usize>,
}

impl FaultPlan {
    /// The empty plan: no injected faults.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shard_faults.is_empty() && self.corrupt_rows.is_empty()
    }

    /// Whether any shard-level fault is planned.
    #[must_use]
    pub fn has_shard_faults(&self) -> bool {
        !self.shard_faults.is_empty()
    }

    /// Makes the first `attempts` attempts of shard `shard` fail with
    /// `fault`. `attempts = 1` exercises the retry path; `attempts >= 2`
    /// forces the sequential fallback (the worker only retries once).
    #[must_use]
    pub fn with_shard_fault(mut self, shard: usize, fault: ShardFault, attempts: u32) -> Self {
        if attempts > 0 {
            self.shard_faults.insert(shard, (fault, attempts));
        }
        self
    }

    /// Marks row `row` as corrupt on ingestion.
    #[must_use]
    pub fn with_corrupt_row(mut self, row: usize) -> Self {
        self.corrupt_rows.insert(row);
        self
    }

    /// A pseudo-random plan derived only from `seed` (splitmix64 over the
    /// shard/row index — no wall clock, no thread identity): roughly one
    /// in four of the first `shards` shards faults (alternating mode and
    /// retry depth) and roughly one in sixteen of the first `rows` rows is
    /// corrupt. Used by the fuzzing harness; identical seeds give
    /// identical plans forever.
    #[must_use]
    pub fn seeded(seed: u64, shards: usize, rows: usize) -> Self {
        let mut plan = FaultPlan::none();
        for s in 0..shards {
            let h = splitmix64(seed ^ 0x5348_4152_4400_0000 ^ s as u64);
            if h.is_multiple_of(4) {
                let fault = if h & 16 == 0 {
                    ShardFault::Panic
                } else {
                    ShardFault::Deadline
                };
                let attempts = if h & 32 == 0 { 1 } else { 2 };
                plan = plan.with_shard_fault(s, fault, attempts);
            }
        }
        for r in 0..rows {
            if splitmix64(seed ^ 0x524f_5753_0000_0000 ^ r as u64).is_multiple_of(16) {
                plan = plan.with_corrupt_row(r);
            }
        }
        plan
    }

    /// The fault injected into attempt `attempt` (0-based) of shard
    /// `shard`, if any.
    #[must_use]
    pub fn shard_fault(&self, shard: usize, attempt: u32) -> Option<ShardFault> {
        self.shard_faults
            .get(&shard)
            .and_then(|&(fault, attempts)| (attempt < attempts).then_some(fault))
    }

    /// Whether row `row` is injected as corrupt.
    #[must_use]
    pub fn row_is_corrupt(&self, row: usize) -> bool {
        self.corrupt_rows.contains(&row)
    }

    /// Number of planned shard faults targeting shards `< shards` — the
    /// exact value `core.recovered_shards` must reach when the plan runs
    /// against a `shards`-shard layout (every injected fault recovers).
    #[must_use]
    pub fn expected_recovered_shards(&self, shards: usize) -> usize {
        self.shard_faults.keys().filter(|&&s| s < shards).count()
    }

    /// Number of planned corrupt rows with index `< rows` — the exact
    /// value `core.quarantined_rows` must reach on an otherwise-clean
    /// `rows`-row dataset under [`InputPolicy::Quarantine`].
    #[must_use]
    pub fn expected_corrupt_rows(&self, rows: usize) -> usize {
        self.corrupt_rows.iter().filter(|&&r| r < rows).count()
    }
}

/// Ingestion policy plus fault plan, threaded through the robust entry
/// points ([`crate::pipeline::Anonymizer::anonymize_rows`]).
#[derive(Clone, Debug, Default)]
pub struct RecoveryConfig {
    /// Treatment of corrupt input rows.
    pub policy: InputPolicy,
    /// Injected faults (empty in production).
    pub plan: FaultPlan,
}

impl RecoveryConfig {
    /// Strict policy, no injected faults — validation without degradation.
    #[must_use]
    pub fn strict() -> Self {
        RecoveryConfig::default()
    }

    /// Quarantine policy, no injected faults — the graceful-degradation
    /// production configuration.
    #[must_use]
    pub fn quarantine() -> Self {
        RecoveryConfig {
            policy: InputPolicy::Quarantine,
            plan: FaultPlan::none(),
        }
    }

    /// Replaces the fault plan (testing hook).
    #[must_use]
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }
}

/// Why a raw row is considered corrupt against a universe of `n_items`
/// items, or `None` for a clean row. A clean row may still be unsorted —
/// ordering is a representation detail the dataset constructor fixes, not
/// a corruption.
#[must_use]
pub fn bad_row_reason(row: &[ItemId], n_items: usize) -> Option<String> {
    if let Some(&bad) = row.iter().find(|&&i| (i as usize) >= n_items) {
        return Some(format!("item {bad} out of range (universe {n_items})"));
    }
    let mut seen: Vec<ItemId> = row.to_vec();
    seen.sort_unstable();
    for w in seen.windows(2) {
        if w[0] == w[1] {
            return Some(format!("duplicate item {}", w[0]));
        }
    }
    None
}

/// The sanitized form of a possibly-corrupt row: in-range items only,
/// sorted and de-duplicated. This is exactly the normal form
/// `TransactionSet::from_rows` would store, so a sanitized row round-trips
/// through publication and verification.
#[must_use]
pub fn sanitize_row(row: &[ItemId], n_items: usize) -> Vec<ItemId> {
    let mut clean: Vec<ItemId> = row
        .iter()
        .copied()
        .filter(|&i| (i as usize) < n_items)
        .collect();
    clean.sort_unstable();
    clean.dedup();
    clean
}

/// Installs (once, process-wide) a panic hook that suppresses the stderr
/// report for panics whose payload starts with `"injected fault"` — the
/// message every [`FaultPlan`]-injected panic carries — and delegates any
/// other panic to the previously installed hook unchanged. Test harnesses
/// that drive fault plans call this so recovered injections don't flood
/// the output while real panics keep their full report.
pub fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|s| s.starts_with("injected fault"));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// The splitmix64 mixing function — the standard seedable 64-bit mixer,
/// used to derive per-key fault decisions from a single seed.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(!plan.has_shard_faults());
        assert_eq!(plan.shard_fault(0, 0), None);
        assert!(!plan.row_is_corrupt(0));
        assert_eq!(plan.expected_recovered_shards(8), 0);
        assert_eq!(plan.expected_corrupt_rows(100), 0);
    }

    #[test]
    fn shard_faults_fire_per_attempt() {
        let plan = FaultPlan::none()
            .with_shard_fault(1, ShardFault::Panic, 1)
            .with_shard_fault(3, ShardFault::Deadline, 2);
        assert_eq!(plan.shard_fault(1, 0), Some(ShardFault::Panic));
        assert_eq!(plan.shard_fault(1, 1), None); // retry succeeds
        assert_eq!(plan.shard_fault(3, 0), Some(ShardFault::Deadline));
        assert_eq!(plan.shard_fault(3, 1), Some(ShardFault::Deadline));
        assert_eq!(plan.shard_fault(3, 2), None); // fallback is never injected
        assert_eq!(plan.shard_fault(0, 0), None);
        // Expected counters scale with the effective shard count.
        assert_eq!(plan.expected_recovered_shards(8), 2);
        assert_eq!(plan.expected_recovered_shards(2), 1);
        assert_eq!(plan.expected_recovered_shards(1), 0);
    }

    #[test]
    fn zero_attempt_fault_is_dropped() {
        let plan = FaultPlan::none().with_shard_fault(0, ShardFault::Panic, 0);
        assert!(plan.is_empty());
    }

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let a = FaultPlan::seeded(7, 16, 64);
        let b = FaultPlan::seeded(7, 16, 64);
        assert_eq!(a, b);
        // Different seeds almost surely differ; pin one that does.
        let c = FaultPlan::seeded(8, 16, 64);
        assert_ne!(a, c);
    }

    #[test]
    fn row_hygiene_classifies_and_sanitizes() {
        assert_eq!(bad_row_reason(&[0, 3, 1], 4), None);
        assert!(bad_row_reason(&[0, 9], 4).unwrap().contains("out of range"));
        assert!(bad_row_reason(&[2, 1, 2], 4).unwrap().contains("duplicate"));
        assert_eq!(sanitize_row(&[9, 2, 1, 2], 4), vec![1, 2]);
        assert_eq!(sanitize_row(&[9, 9], 4), Vec::<ItemId>::new());
    }
}
