//! The CAHD group-formation heuristic (paper Section IV, Fig. 8).
//!
//! The input is assumed to be in *band order* (rows already permuted by
//! RCM — see [`crate::pipeline`] for the full pipeline). The algorithm
//! scans the sequence, and for each still-ungrouped sensitive transaction
//! `t`:
//!
//! 1. builds a candidate list `CL(t)` of up to `alpha * p` predecessors and
//!    `alpha * p` successors that are not *conflicting* — no sensitive item
//!    may occur twice within `{t} ∪ CL(t)` (the one-occurrence-per-group
//!    heuristic); conflicting transactions are skipped, not counted;
//! 2. selects the `p - 1` candidates sharing the largest number of QID
//!    items with `t` (ties broken by band proximity);
//! 3. tentatively removes the group and validates the remaining-occurrence
//!    histogram (`H[s] * p <= remaining` for all `s`); on failure the group
//!    is rolled back and the scan continues with the next sensitive
//!    transaction.
//!
//! Whatever remains at the end of the scan is published as a single final
//! group; the histogram invariant guarantees it satisfies the privacy
//! degree.

use std::time::{Duration, Instant};

use cahd_data::{ItemId, SensitiveSet, TransactionSet};
use cahd_obs::Recorder;

use crate::error::CahdError;
use crate::group::{AnonymizedGroup, PublishedDataset};
use crate::histogram::SensitiveHistogram;
use crate::invariant::{strict_invariant, strict_invariant_eq};
use crate::kernel::{KernelMode, SimilarityKernel};
use crate::order::OrderList;

/// Configuration of the CAHD heuristic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CahdConfig {
    /// Privacy degree `p`: no transaction may be associated with a
    /// sensitive item with probability above `1/p`. Must be >= 2.
    pub p: usize,
    /// Candidate-list width factor: `alpha * p` non-conflicting
    /// predecessors and successors are considered (paper Section IV; the
    /// evaluation uses `alpha = 3` by default and finds 2-3 a good
    /// compromise).
    pub alpha: usize,
    /// Break equal-overlap ties by band proximity (the distance in the RCM
    /// order). Disabling this is an ablation switch; ties then fall back to
    /// slot order.
    pub proximity_tie_break: bool,
    /// Physical scoring path of the QID-similarity kernel (see
    /// [`crate::kernel`]). Never changes the published output — only where
    /// the scoring time goes — and can be overridden per process with the
    /// `CAHD_KERNEL` environment variable.
    pub kernel: KernelMode,
}

impl CahdConfig {
    /// The paper's default: `alpha = 3`, proximity tie-break on, adaptive
    /// similarity kernel.
    pub fn new(p: usize) -> Self {
        CahdConfig {
            p,
            alpha: 3,
            proximity_tie_break: true,
            kernel: KernelMode::Adaptive,
        }
    }

    /// Sets the candidate-list width factor.
    pub fn with_alpha(mut self, alpha: usize) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the similarity-kernel mode.
    pub fn with_kernel(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    /// Checks the parameters for degeneracies: `p >= 2` (anything lower
    /// offers no protection) and `alpha >= 1` (an `alpha` of zero would
    /// produce empty candidate lists, silently degrading every pivot to
    /// the leftover group). Parameter errors are reported before any
    /// dataset-shape error, so a caller always learns about a bad config
    /// first.
    pub fn validate(&self) -> Result<(), CahdError> {
        if self.p < 2 {
            return Err(CahdError::InvalidPrivacyDegree(self.p));
        }
        if self.alpha < 1 {
            return Err(CahdError::InvalidAlpha(self.alpha));
        }
        Ok(())
    }
}

/// Counters describing a CAHD run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CahdStats {
    /// Regular (size-`p`) groups formed.
    pub groups_formed: usize,
    /// Groups rolled back by the histogram validation (Fig. 8 line 11).
    pub rollbacks: usize,
    /// Sensitive pivots skipped because fewer than `p - 1` non-conflicting
    /// candidates were found.
    pub insufficient_candidates: usize,
    /// Size of the final leftover group (0 if everything was grouped).
    pub fallback_group_size: usize,
    /// Total candidates submitted to the similarity kernel. Pivots whose
    /// candidate list fell short of `p - 1` contribute nothing (their
    /// candidates are never scored), so this always equals the kernel's
    /// `dense_scores + sparse_scores` — the `CAHD-O001` identity.
    pub candidates_considered: u64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl std::fmt::Display for CahdStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} groups formed, {} rollbacks, {} pivots lacking candidates, \
             leftover group of {}, {} candidates scored, {:.3}s",
            self.groups_formed,
            self.rollbacks,
            self.insufficient_candidates,
            self.fallback_group_size,
            self.candidates_considered,
            self.elapsed.as_secs_f64(),
        )
    }
}

/// Runs CAHD on `data` (assumed band-ordered) and returns the published
/// groups plus run statistics. Group members are row indices into `data`.
///
/// Errors if the parameters are degenerate, the dataset is empty, the item
/// universes mismatch, or no solution with degree `p` exists
/// (`support(s) * p > n` for some sensitive item `s`).
pub fn cahd(
    data: &TransactionSet,
    sensitive: &SensitiveSet,
    config: &CahdConfig,
) -> Result<(PublishedDataset, CahdStats), CahdError> {
    cahd_traced(data, sensitive, config, &Recorder::disabled())
}

/// Like [`cahd`], recording the group-formation phase into `rec`: the span
/// `pipeline/group`, the scheduling-invariant `core.*` counters of the
/// engine (see [`form_groups`]), the kernel path counters
/// (`core.kernel_dense_scores`, `core.kernel_sparse_scores`,
/// `core.kernel_cache_hits` — see [`crate::kernel`]), and the counter
/// `core.fallback_group_size` (size of the final leftover group).
pub fn cahd_traced(
    data: &TransactionSet,
    sensitive: &SensitiveSet,
    config: &CahdConfig,
    rec: &Recorder,
) -> Result<(PublishedDataset, CahdStats), CahdError> {
    config.validate()?;
    let n = data.n_transactions();
    if sensitive.n_items() != data.n_items() {
        return Err(CahdError::UniverseMismatch {
            data_items: data.n_items(),
            sensitive_items: sensitive.n_items(),
        });
    }
    let _group_span = rec.span("pipeline/group");
    // cahd-lint: allow(L002, reason = "elapsed-time stat only; release bytes never depend on it")
    let t_start = Instant::now();

    // Split every transaction into QID items and sensitive ranks once.
    let mut qid_of: Vec<Vec<ItemId>> = Vec::with_capacity(n);
    let mut sens_of: Vec<Vec<usize>> = Vec::with_capacity(n);
    for txn in data.iter() {
        let (q, s) = sensitive.split_transaction(txn);
        qid_of.push(q);
        sens_of.push(s);
    }
    let counts = sensitive.occurrence_counts(data);

    let mut kernel = SimilarityKernel::new(&qid_of, data.n_items(), config.kernel.resolved());
    let formed = form_groups(
        n,
        &sens_of,
        counts,
        sensitive.items(),
        config,
        |t, cl, out| kernel.score(t, cl, out),
        FeasibilityCheck::Enforce,
        rec,
    )?;
    kernel.flush_to(rec);
    rec.add("core.fallback_group_size", formed.leftover.len() as u64);

    let mut groups: Vec<AnonymizedGroup> = formed
        .groups
        .iter()
        .map(|members| make_group(members, sensitive, &qid_of, &sens_of))
        .collect();
    if !formed.leftover.is_empty() {
        groups.push(make_group(&formed.leftover, sensitive, &qid_of, &sens_of));
    }
    let mut stats = formed.stats;
    stats.elapsed = t_start.elapsed();

    let published = PublishedDataset {
        n_items: data.n_items(),
        sensitive_items: sensitive.items().to_vec(),
        groups,
    };
    strict_invariant!(published.satisfies(config.p), "CAHD invariant violated");
    strict_invariant_eq!(
        published.n_transactions(),
        n,
        "CAHD must publish every transaction exactly once"
    );
    Ok((published, stats))
}

/// Whether [`form_groups`] should reject inputs where no degree-`p`
/// solution exists over its own row range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum FeasibilityCheck {
    /// Error with [`CahdError::Infeasible`] when some sensitive item has
    /// `support * p > n`. The whole-dataset entry points use this.
    Enforce,
    /// Skip the up-front check. Used by the sharded pipeline, where a
    /// single shard may be locally infeasible (all occurrences of an item
    /// concentrated in it) while the dataset is globally feasible; the
    /// per-group histogram validation then simply rejects every group
    /// touching the overloaded item, and the shard merge repairs the rest
    /// (see [`crate::shard`]).
    Skip,
}

/// Result of the group-formation engine: member-index groups plus run
/// counters (`elapsed` left unset — the public entry points time their own
/// full runs).
pub(crate) struct FormedGroups {
    /// Regular groups, each of size exactly `p`, member indices sorted.
    pub groups: Vec<Vec<usize>>,
    /// The final leftover group (possibly empty).
    pub leftover: Vec<usize>,
    /// Run counters.
    pub stats: CahdStats,
}

/// The CAHD group-formation engine, generic over the candidate scorer so
/// binary and weighted (count-valued) data share one verified
/// implementation.
///
/// `score(pivot, candidates, out)` fills `out` with one utility score per
/// candidate (higher = more similar QID). `sens_of` maps each transaction
/// to its sensitive-item ranks; `initial_counts` is the per-rank occurrence
/// histogram; `sens_items` names the items for error reporting.
///
/// Records into `rec` — all scheduling-invariant, accumulated locally and
/// merged under one lock at the end so the hot loop never contends:
///
/// * counters `core.pivots_scanned` (sensitive pivots whose candidate list
///   was built; always `groups_formed + rollbacks +
///   insufficient_candidates`), `core.groups_formed`, `core.rollbacks`,
///   `core.insufficient_candidates`, `core.candidates_scanned` (candidates
///   actually submitted to the scorer — pivots failing the `p - 1`
///   candidate floor never score, so the kernel path counters
///   `core.kernel_dense_scores + core.kernel_sparse_scores` sum to
///   exactly this value);
/// * histogram `core.candidate_list_len` (one observation per scanned
///   pivot).
#[allow(clippy::too_many_arguments)]
pub(crate) fn form_groups(
    n: usize,
    sens_of: &[Vec<usize>],
    initial_counts: Vec<usize>,
    sens_items: &[ItemId],
    config: &CahdConfig,
    mut score: impl FnMut(usize, &[usize], &mut Vec<u64>),
    feasibility: FeasibilityCheck,
    rec: &Recorder,
) -> Result<FormedGroups, CahdError> {
    config.validate()?;
    if n == 0 {
        return Err(CahdError::EmptyDataset);
    }
    let p = config.p;
    if feasibility == FeasibilityCheck::Enforce {
        // Global feasibility: a solution must exist (Section IV).
        for (r, &c) in initial_counts.iter().enumerate() {
            if c * p > n {
                return Err(CahdError::Infeasible {
                    item: sens_items[r],
                    support: c,
                    p,
                    n,
                });
            }
        }
    }
    let mut hist = SensitiveHistogram::new(initial_counts);
    let mut order = OrderList::new(n);
    let mut remaining = n;
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut stats = CahdStats::default();

    // Stamped conflict set over sensitive ranks.
    let m = sens_items.len();
    let mut conflict_stamp = vec![0u32; m];
    let mut cstamp = 0u32;
    let mut cl: Vec<usize> = Vec::new();
    let mut scores: Vec<u64> = Vec::new();
    let mut scored: Vec<(u64, usize, usize)> = Vec::new();
    let limit = config.alpha * p;
    let mut pivots_scanned = 0u64;
    let mut cl_len_hist = cahd_obs::Histogram::new();
    let trace_on = rec.is_enabled();

    for t in 0..n {
        if !order.is_alive(t) || sens_of[t].is_empty() {
            continue;
        }

        // --- Build the candidate list (predecessors, then successors). ---
        cstamp += 1;
        for &r in &sens_of[t] {
            conflict_stamp[r] = cstamp;
        }
        cl.clear();
        let walk = |mut cur: Option<usize>,
                    step_prev: bool,
                    cl: &mut Vec<usize>,
                    conflict_stamp: &mut Vec<u32>,
                    order: &OrderList| {
            let mut taken = 0usize;
            while let Some(c) = cur {
                if taken >= limit {
                    break;
                }
                let conflicting = sens_of[c].iter().any(|&r| conflict_stamp[r] == cstamp);
                if !conflicting {
                    for &r in &sens_of[c] {
                        conflict_stamp[r] = cstamp;
                    }
                    cl.push(c);
                    taken += 1;
                }
                cur = if step_prev {
                    order.prev(c)
                } else {
                    order.next(c)
                };
            }
        };
        walk(order.prev(t), true, &mut cl, &mut conflict_stamp, &order);
        walk(order.next(t), false, &mut cl, &mut conflict_stamp, &order);
        pivots_scanned += 1;
        if trace_on {
            cl_len_hist.observe(cl.len() as u64);
        }

        if cl.len() < p - 1 {
            stats.insufficient_candidates += 1;
            continue;
        }

        // --- Score candidates by QID similarity to t. ---
        stats.candidates_considered += cl.len() as u64;
        score(t, &cl, &mut scores);
        strict_invariant_eq!(
            scores.len(),
            cl.len(),
            "scorer must fill one score per candidate"
        );
        scored.clear();
        scored.extend(cl.iter().zip(&scores).map(|(&c, &s)| (s, c.abs_diff(t), c)));
        let proximity = config.proximity_tie_break;
        scored.sort_by(|a, b| {
            b.0.cmp(&a.0)
                .then_with(|| {
                    if proximity {
                        a.1.cmp(&b.1)
                    } else {
                        std::cmp::Ordering::Equal
                    }
                })
                .then_with(|| a.2.cmp(&b.2))
        });

        // --- Tentatively form {t} ∪ best p-1 and validate. ---
        let mut members: Vec<usize> = Vec::with_capacity(p);
        members.push(t);
        members.extend(scored[..p - 1].iter().map(|&(_, _, c)| c));
        members.sort_unstable();
        for &mt in &members {
            for &r in &sens_of[mt] {
                hist.remove_occurrence(r);
            }
        }
        let new_remaining = remaining - members.len();
        if hist.feasible(p, new_remaining) {
            remaining = new_remaining;
            for &mt in &members {
                order.remove(mt);
            }
            strict_invariant_eq!(members.len(), p, "regular groups have size exactly p");
            groups.push(members);
            stats.groups_formed += 1;
        } else {
            for &mt in &members {
                for &r in &sens_of[mt] {
                    hist.restore_occurrence(r);
                }
            }
            stats.rollbacks += 1;
        }
    }

    // --- The leftovers become one final group. ---
    let leftover: Vec<usize> = order.iter().collect();
    strict_invariant_eq!(
        leftover.len(),
        remaining,
        "order list and histogram bookkeeping must agree"
    );
    stats.fallback_group_size = leftover.len();
    if trace_on {
        rec.add("core.pivots_scanned", pivots_scanned);
        rec.add("core.groups_formed", stats.groups_formed as u64);
        rec.add("core.rollbacks", stats.rollbacks as u64);
        rec.add(
            "core.insufficient_candidates",
            stats.insufficient_candidates as u64,
        );
        rec.add("core.candidates_scanned", stats.candidates_considered);
        rec.record_histogram("core.candidate_list_len", &cl_len_hist);
    }
    Ok(FormedGroups {
        groups,
        leftover,
        stats,
    })
}

pub(crate) fn make_group(
    members: &[usize],
    sensitive: &SensitiveSet,
    qid_of: &[Vec<ItemId>],
    sens_of: &[Vec<usize>],
) -> AnonymizedGroup {
    let mut counts = vec![0u32; sensitive.len()];
    let mut qid_rows = Vec::with_capacity(members.len());
    for &mt in members {
        qid_rows.push(qid_of[mt].clone());
        for &r in &sens_of[mt] {
            counts[r] += 1;
        }
    }
    let sensitive_counts: Vec<(ItemId, u32)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(r, &c)| (sensitive.items()[r], c))
        .collect();
    AnonymizedGroup {
        members: members.iter().map(|&mt| mt as u32).collect(),
        qid_rows,
        sensitive_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example (Fig. 1), in the re-organized order of
    /// Fig. 1b: Bob, David, Ellen, Andrea, Claire. Items: 0 wine, 1 meat,
    /// 2 cream, 3 strawberries, 4 pregnancy test (S), 5 viagra (S).
    fn fig1_data() -> (TransactionSet, SensitiveSet) {
        let data = TransactionSet::from_rows(
            &[
                vec![0, 1, 5], // Bob
                vec![0, 1],    // David
                vec![0, 1, 2], // Ellen
                vec![1, 3],    // Andrea
                vec![2, 3, 4], // Claire
            ],
            6,
        );
        let sens = SensitiveSet::new(vec![4, 5], 6);
        (data, sens)
    }

    #[test]
    fn fig1_example_produces_papers_groups() {
        let (data, sens) = fig1_data();
        let (pub_, stats) = cahd(&data, &sens, &CahdConfig::new(2)).unwrap();
        // Bob is the first sensitive transaction: group of size 2 with the
        // neighbor sharing most QID items (David, overlap 2).
        assert!(stats.groups_formed >= 1);
        assert!(pub_.satisfies(2));
        assert_eq!(pub_.n_transactions(), 5);
        let g0 = &pub_.groups[0];
        assert_eq!(g0.members, vec![0, 1]); // Bob + David
        assert_eq!(g0.sensitive_counts, vec![(5, 1)]);
    }

    #[test]
    fn privacy_holds_for_p3() {
        let (data, sens) = fig1_data();
        let (pub_, _) = cahd(&data, &sens, &CahdConfig::new(3)).unwrap();
        assert!(pub_.satisfies(3));
        assert_eq!(pub_.n_transactions(), 5);
    }

    #[test]
    fn every_transaction_published_exactly_once() {
        let (data, sens) = fig1_data();
        let (pub_, _) = cahd(&data, &sens, &CahdConfig::new(2)).unwrap();
        let mut seen = vec![0u32; data.n_transactions()];
        for g in &pub_.groups {
            for &mt in &g.members {
                seen[mt as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn infeasible_when_item_too_frequent() {
        let data = TransactionSet::from_rows(&[vec![0, 2], vec![1, 2], vec![1]], 3);
        let sens = SensitiveSet::new(vec![2], 3);
        // item 2 occurs twice in 3 transactions; p=2 needs 2*2 <= 3: fails.
        let err = cahd(&data, &sens, &CahdConfig::new(2)).unwrap_err();
        assert!(matches!(
            err,
            CahdError::Infeasible {
                item: 2,
                support: 2,
                ..
            }
        ));
    }

    #[test]
    fn conflicting_neighbors_are_skipped() {
        // Both 0 and 1 contain sensitive item 4; a p=2 group for 0 must
        // skip 1 and take 2 instead.
        let data = TransactionSet::from_rows(
            &[vec![0, 4], vec![0, 4], vec![0], vec![1], vec![1], vec![1]],
            5,
        );
        let sens = SensitiveSet::new(vec![4], 5);
        let (pub_, _) = cahd(&data, &sens, &CahdConfig::new(2)).unwrap();
        let g0 = &pub_.groups[0];
        assert_eq!(g0.members, vec![0, 2]);
        assert!(pub_.satisfies(2));
    }

    #[test]
    fn all_nonsensitive_single_group() {
        let data = TransactionSet::from_rows(&[vec![0], vec![1], vec![0, 1]], 3);
        let sens = SensitiveSet::new(vec![2], 3);
        let (pub_, stats) = cahd(&data, &sens, &CahdConfig::new(2)).unwrap();
        assert_eq!(pub_.n_groups(), 1);
        assert_eq!(stats.fallback_group_size, 3);
        assert_eq!(stats.groups_formed, 0);
        assert!(pub_.groups[0].sensitive_counts.is_empty());
    }

    #[test]
    fn parameter_validation() {
        let (data, sens) = fig1_data();
        assert!(matches!(
            cahd(&data, &sens, &CahdConfig::new(1)),
            Err(CahdError::InvalidPrivacyDegree(1))
        ));
        assert!(matches!(
            cahd(&data, &sens, &CahdConfig::new(2).with_alpha(0)),
            Err(CahdError::InvalidAlpha(0))
        ));
        let empty = TransactionSet::from_rows(&[], 6);
        assert!(matches!(
            cahd(&empty, &sens, &CahdConfig::new(2)),
            Err(CahdError::EmptyDataset)
        ));
        let other_universe = SensitiveSet::new(vec![1], 3);
        assert!(matches!(
            cahd(&data, &other_universe, &CahdConfig::new(2)),
            Err(CahdError::UniverseMismatch { .. })
        ));
    }

    #[test]
    fn overlap_selection_prefers_similar_qid() {
        // Pivot (slot 2) has QID {0,1,2}. Candidates: slot 0 shares 3 items,
        // slot 1 shares 0, slots 3,4 share 1. p=3 -> picks slots 0 and one
        // of 3/4 (proximity: 3).
        let data = TransactionSet::from_rows(
            &[
                vec![0, 1, 2],
                vec![5, 6],
                vec![0, 1, 2, 9],
                vec![0, 7],
                vec![0, 8],
            ],
            10,
        );
        let sens = SensitiveSet::new(vec![9], 10);
        let (pub_, _) = cahd(&data, &sens, &CahdConfig::new(3)).unwrap();
        let g0 = &pub_.groups[0];
        assert_eq!(g0.members, vec![0, 2, 3]);
    }

    #[test]
    fn multi_sensitive_transaction_counts_each_item_once() {
        let data = TransactionSet::from_rows(
            &[vec![0, 8, 9], vec![0], vec![1], vec![1], vec![2], vec![3]],
            10,
        );
        let sens = SensitiveSet::new(vec![8, 9], 10);
        let (pub_, _) = cahd(&data, &sens, &CahdConfig::new(2)).unwrap();
        let g0 = &pub_.groups[0];
        assert_eq!(g0.sensitive_counts, vec![(8, 1), (9, 1)]);
        assert!(pub_.satisfies(2));
    }

    #[test]
    fn stats_are_populated() {
        let (data, sens) = fig1_data();
        let (_, stats) = cahd(&data, &sens, &CahdConfig::new(2)).unwrap();
        assert!(stats.groups_formed > 0);
        assert!(stats.candidates_considered > 0);
        let text = stats.to_string();
        assert!(text.contains("groups formed"), "{text}");
    }
}
