//! Internal invariant checks, upgradeable to hard asserts.
//!
//! Algorithm modules assert mid-run invariants (histogram consistency,
//! group sizes, privacy of intermediate releases) through these macros. By
//! default they compile to `debug_assert!` — free in release builds. With
//! the `strict-invariants` feature the checks become unconditional
//! `assert!`s, so fuzzing, property tests and soak runs can catch invariant
//! drift in optimized builds too.

/// `assert!` under `strict-invariants`, `debug_assert!` otherwise.
macro_rules! strict_invariant {
    ($($arg:tt)*) => {{
        #[cfg(feature = "strict-invariants")]
        {
            assert!($($arg)*);
        }
        #[cfg(not(feature = "strict-invariants"))]
        {
            debug_assert!($($arg)*);
        }
    }};
}

/// `assert_eq!` under `strict-invariants`, `debug_assert_eq!` otherwise.
macro_rules! strict_invariant_eq {
    ($($arg:tt)*) => {{
        #[cfg(feature = "strict-invariants")]
        {
            assert_eq!($($arg)*);
        }
        #[cfg(not(feature = "strict-invariants"))]
        {
            debug_assert_eq!($($arg)*);
        }
    }};
}

pub(crate) use {strict_invariant, strict_invariant_eq};
