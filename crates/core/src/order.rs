//! The linked-list order structure over band-ordered transactions.
//!
//! CAHD repeatedly removes grouped transactions from the sequence and walks
//! predecessors/successors of a pivot while skipping removed entries. A
//! doubly-linked list over the slot indices gives O(1) removal and O(1)
//! next/prev-alive steps (the "linked-list data representation" of
//! Section IV).

use crate::invariant::strict_invariant;

/// Sentinel for "no neighbor".
const NIL: u32 = u32::MAX;

/// A doubly-linked list over slots `0..n` supporting O(1) removal.
#[derive(Clone, Debug)]
pub struct OrderList {
    prev: Vec<u32>,
    next: Vec<u32>,
    alive: Vec<bool>,
    head: u32,
    len: usize,
}

impl OrderList {
    /// Creates the list `0 -> 1 -> ... -> n-1`, all alive.
    pub fn new(n: usize) -> Self {
        assert!(n < NIL as usize, "too many slots");
        let prev: Vec<u32> = (0..n as u32)
            .map(|i| if i == 0 { NIL } else { i - 1 })
            .collect();
        let next: Vec<u32> = (0..n as u32)
            .map(|i| if i + 1 == n as u32 { NIL } else { i + 1 })
            .collect();
        OrderList {
            prev,
            next,
            alive: vec![true; n],
            head: if n == 0 { NIL } else { 0 },
            len: n,
        }
    }

    /// Number of alive slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slots are alive.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `i` is still in the list.
    #[inline]
    pub fn is_alive(&self, i: usize) -> bool {
        self.alive[i]
    }

    /// The first alive slot, if any.
    pub fn first(&self) -> Option<usize> {
        (self.head != NIL).then_some(self.head as usize)
    }

    /// The alive slot after `i` (which must itself be alive).
    #[inline]
    pub fn next(&self, i: usize) -> Option<usize> {
        strict_invariant!(self.alive[i], "next() of a removed slot");
        let n = self.next[i];
        (n != NIL).then_some(n as usize)
    }

    /// The alive slot before `i` (which must itself be alive).
    #[inline]
    pub fn prev(&self, i: usize) -> Option<usize> {
        strict_invariant!(self.alive[i], "prev() of a removed slot");
        let p = self.prev[i];
        (p != NIL).then_some(p as usize)
    }

    /// Removes slot `i` from the list.
    ///
    /// # Panics
    /// Panics if `i` was already removed.
    pub fn remove(&mut self, i: usize) {
        assert!(self.alive[i], "slot {i} removed twice");
        self.alive[i] = false;
        self.len -= 1;
        let (p, n) = (self.prev[i], self.next[i]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        }
    }

    /// Iterates over all alive slots in order.
    pub fn iter(&self) -> OrderIter<'_> {
        OrderIter {
            list: self,
            cur: self.head,
        }
    }
}

/// Iterator over alive slots of an [`OrderList`].
pub struct OrderIter<'a> {
    list: &'a OrderList,
    cur: u32,
}

impl Iterator for OrderIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.cur == NIL {
            return None;
        }
        let v = self.cur as usize;
        self.cur = self.list.next[v];
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_order() {
        let l = OrderList::new(4);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(l.len(), 4);
        assert_eq!(l.first(), Some(0));
    }

    #[test]
    fn removal_links_neighbors() {
        let mut l = OrderList::new(5);
        l.remove(2);
        assert_eq!(l.next(1), Some(3));
        assert_eq!(l.prev(3), Some(1));
        assert!(!l.is_alive(2));
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![0, 1, 3, 4]);
    }

    #[test]
    fn remove_head_and_tail() {
        let mut l = OrderList::new(3);
        l.remove(0);
        assert_eq!(l.first(), Some(1));
        l.remove(2);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![1]);
        assert_eq!(l.next(1), None);
        assert_eq!(l.prev(1), None);
    }

    #[test]
    fn remove_all() {
        let mut l = OrderList::new(3);
        for i in 0..3 {
            l.remove(i);
        }
        assert!(l.is_empty());
        assert_eq!(l.first(), None);
        assert_eq!(l.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "removed twice")]
    fn double_remove_panics() {
        let mut l = OrderList::new(2);
        l.remove(1);
        l.remove(1);
    }

    #[test]
    fn empty_list() {
        let l = OrderList::new(0);
        assert!(l.is_empty());
        assert_eq!(l.first(), None);
    }
}
