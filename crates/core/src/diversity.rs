//! Additional diversity measures over anonymized groups.
//!
//! The paper's privacy degree `p` is *frequency* ℓ-diversity: no sensitive
//! item may account for more than `1/p` of a group. The ℓ-diversity paper
//! (Machanavajjhala et al., cited as \[1\]) defines two stronger instantiations
//! that data owners often want to audit releases against:
//!
//! * **entropy ℓ-diversity** — the entropy of the sensitive-value
//!   distribution within every group must be at least `log(l)`;
//! * **recursive (c, l)-diversity** — the most frequent value must satisfy
//!   `r_1 < c * (r_l + r_{l+1} + ... + r_m)` for frequency-sorted counts.
//!
//! For transaction groups the "values" are sensitive items, plus an
//! implicit *none* value for members holding no sensitive item — without
//! it, a group whose every member holds the same single sensitive item
//! (impossible under CAHD, but expressible in the release format) would
//! look maximally diverse.

use crate::group::{AnonymizedGroup, PublishedDataset};

/// The sensitive-value distribution of a group: per-item association
/// probabilities `f_s / |G|` plus the probability of holding no sensitive
/// item.
///
/// Multi-item transactions contribute to each of their items, so the item
/// probabilities can sum to more than `1 - p_none`; each coordinate is
/// still the correct marginal association probability, which is what every
/// diversity measure below consumes.
fn association_probabilities(group: &AnonymizedGroup) -> (Vec<f64>, f64) {
    let g = group.size() as f64;
    let probs: Vec<f64> = group
        .sensitive_counts
        .iter()
        .map(|&(_, f)| f as f64 / g)
        .collect();
    let occupied: u32 = group.sensitive_counts.iter().map(|&(_, f)| f).sum();
    // Lower bound on members with no sensitive item (exact when
    // transactions hold at most one sensitive item, as CAHD groups do).
    let none = ((group.size() as i64 - occupied as i64).max(0)) as f64 / g;
    (probs, none)
}

/// The entropy (nats) of a group's sensitive-value distribution, treating
/// "no sensitive item" as a value. Groups without sensitive items have
/// zero entropy by convention (a single value).
pub fn group_entropy(group: &AnonymizedGroup) -> f64 {
    if group.sensitive_counts.is_empty() || group.size() == 0 {
        return 0.0;
    }
    let (probs, none) = association_probabilities(group);
    // Normalize into a distribution (multi-item transactions can make the
    // raw mass exceed 1).
    let total: f64 = probs.iter().sum::<f64>() + none;
    let mut h = 0.0;
    for q in probs.iter().copied().chain(std::iter::once(none)) {
        let q = q / total;
        if q > 0.0 {
            h -= q * q.ln();
        }
    }
    h
}

/// The effective ℓ of a group under entropy ℓ-diversity: `exp(entropy)`.
pub fn effective_l(group: &AnonymizedGroup) -> f64 {
    group_entropy(group).exp()
}

/// Whether a group satisfies entropy ℓ-diversity for the given `l`.
pub fn entropy_l_diverse(group: &AnonymizedGroup, l: f64) -> bool {
    if group.sensitive_counts.is_empty() {
        return true; // nothing sensitive to disclose
    }
    group_entropy(group) >= l.ln()
}

/// Whether a group satisfies recursive (c, l)-diversity: with value counts
/// sorted descending `r_1 >= r_2 >= ...` (the *none* value included),
/// `r_1 < c * (r_l + ... + r_m)`.
pub fn recursive_cl_diverse(group: &AnonymizedGroup, c: f64, l: usize) -> bool {
    if group.sensitive_counts.is_empty() {
        return true;
    }
    assert!(l >= 1, "l must be at least 1");
    let occupied: u32 = group.sensitive_counts.iter().map(|&(_, f)| f).sum();
    let none = (group.size() as i64 - occupied as i64).max(0) as u32;
    let mut counts: Vec<u32> = group.sensitive_counts.iter().map(|&(_, f)| f).collect();
    if none > 0 {
        counts.push(none);
    }
    counts.sort_unstable_by(|a, b| b.cmp(a));
    if counts.len() < l {
        return false; // fewer than l distinct values present
    }
    let tail: u32 = counts[l - 1..].iter().sum();
    (counts[0] as f64) < c * tail as f64
}

/// An audit summary of a whole release.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrivacyReport {
    /// Number of groups.
    pub groups: usize,
    /// Number of groups containing at least one sensitive item.
    pub sensitive_groups: usize,
    /// Minimum privacy degree over sensitive groups (`None` if none).
    pub min_privacy_degree: Option<usize>,
    /// Worst (largest) association probability of any member with any
    /// sensitive item.
    pub max_association_probability: f64,
    /// Minimum effective entropy-ℓ over sensitive groups.
    pub min_effective_l: f64,
    /// Smallest and largest group sizes.
    pub min_group_size: usize,
    /// Largest group size.
    pub max_group_size: usize,
}

/// Audits a release, summarizing degree, association probabilities and
/// entropy diversity in one pass.
pub fn privacy_report(published: &PublishedDataset) -> PrivacyReport {
    let mut report = PrivacyReport {
        groups: published.groups.len(),
        sensitive_groups: 0,
        min_privacy_degree: None,
        max_association_probability: 0.0,
        min_effective_l: f64::INFINITY,
        min_group_size: usize::MAX,
        max_group_size: 0,
    };
    for g in &published.groups {
        report.min_group_size = report.min_group_size.min(g.size());
        report.max_group_size = report.max_group_size.max(g.size());
        if g.sensitive_counts.is_empty() {
            continue;
        }
        report.sensitive_groups += 1;
        if let Some(d) = g.privacy_degree() {
            report.min_privacy_degree = Some(match report.min_privacy_degree {
                Some(cur) => cur.min(d),
                None => d,
            });
        }
        let assoc = g.max_sensitive_count() as f64 / g.size() as f64;
        report.max_association_probability = report.max_association_probability.max(assoc);
        report.min_effective_l = report.min_effective_l.min(effective_l(g));
    }
    if report.groups == 0 {
        report.min_group_size = 0;
    }
    if report.sensitive_groups == 0 {
        report.min_effective_l = f64::INFINITY;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cahd_data::ItemId;

    fn group(size: usize, counts: &[(ItemId, u32)]) -> AnonymizedGroup {
        AnonymizedGroup {
            members: (0..size as u32).collect(),
            qid_rows: vec![vec![]; size],
            sensitive_counts: counts.to_vec(),
        }
    }

    #[test]
    fn entropy_of_uniform_two_values() {
        // 2 members: one with item 1, one without -> uniform over 2 values.
        let g = group(2, &[(1, 1)]);
        assert!((group_entropy(&g) - 2f64.ln()).abs() < 1e-12);
        assert!((effective_l(&g) - 2.0).abs() < 1e-9);
        assert!(entropy_l_diverse(&g, 2.0));
        assert!(!entropy_l_diverse(&g, 2.1));
    }

    #[test]
    fn entropy_zero_for_nonsensitive_group() {
        let g = group(3, &[]);
        assert_eq!(group_entropy(&g), 0.0);
        assert!(entropy_l_diverse(&g, 100.0)); // vacuously safe
    }

    #[test]
    fn skewed_group_has_low_entropy() {
        let uniform = group(10, &[(1, 5)]);
        let skewed = group(10, &[(1, 9)]);
        assert!(group_entropy(&skewed) < group_entropy(&uniform));
    }

    #[test]
    fn recursive_diversity_basic() {
        // counts sorted: none=6, item=4 -> r1=6 < c*(r2)=c*4 iff c > 1.5.
        let g = group(10, &[(1, 4)]);
        assert!(recursive_cl_diverse(&g, 2.0, 2));
        assert!(!recursive_cl_diverse(&g, 1.4, 2));
        // l larger than distinct values -> fails.
        assert!(!recursive_cl_diverse(&g, 10.0, 3));
        // Non-sensitive group vacuously diverse.
        assert!(recursive_cl_diverse(&group(3, &[]), 1.0, 5));
    }

    #[test]
    fn report_aggregates() {
        let published = PublishedDataset {
            n_items: 10,
            sensitive_items: vec![1, 2],
            groups: vec![
                group(4, &[(1, 1)]),
                group(6, &[(1, 2), (2, 1)]),
                group(3, &[]),
            ],
        };
        let r = privacy_report(&published);
        assert_eq!(r.groups, 3);
        assert_eq!(r.sensitive_groups, 2);
        assert_eq!(r.min_privacy_degree, Some(3)); // 6/2
        assert!((r.max_association_probability - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(r.min_group_size, 3);
        assert_eq!(r.max_group_size, 6);
        assert!(r.min_effective_l > 1.0);
    }

    #[test]
    fn empty_release_report() {
        let published = PublishedDataset {
            n_items: 0,
            sensitive_items: vec![],
            groups: vec![],
        };
        let r = privacy_report(&published);
        assert_eq!(r.groups, 0);
        assert_eq!(r.min_group_size, 0);
        assert_eq!(r.min_privacy_degree, None);
    }
}
