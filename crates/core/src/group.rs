//! Anonymized groups and the published (permutation-style) dataset.
//!
//! Following Anatomy-style publishing (paper Section II-A), each group
//! releases the *exact* QID item set of every member, plus only a frequency
//! summary of the sensitive items that occur in the group (Fig. 1c of the
//! paper). The probability of associating a member with a sensitive item
//! occurring `f` times in a group of size `g` is `f / g`, so the group
//! offers privacy degree `min_s g / f_s`.

use serde::{Deserialize, Serialize};

use cahd_data::{ItemId, SensitiveSet, TransactionSet};

use crate::invariant::{strict_invariant, strict_invariant_eq};

/// One anonymized group: exact QID rows plus a sensitive-item frequency
/// summary.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnonymizedGroup {
    /// Original transaction indices of the members, in group order.
    ///
    /// Retained for verification and evaluation; a real data release would
    /// strip this field (see [`PublishedDataset::strip_members`]).
    pub members: Vec<u32>,
    /// Published QID item sets, aligned with `members`.
    pub qid_rows: Vec<Vec<ItemId>>,
    /// `(sensitive item, occurrence count)` pairs, sorted by item id;
    /// counts are always >= 1.
    pub sensitive_counts: Vec<(ItemId, u32)>,
}

impl AnonymizedGroup {
    /// Builds the published form of a group directly from original
    /// transaction indices: exact QID rows plus the sensitive frequency
    /// summary. Used by the baselines and by custom grouping strategies.
    pub fn from_members(data: &TransactionSet, sensitive: &SensitiveSet, members: &[u32]) -> Self {
        let mut counts = vec![0u32; sensitive.len()];
        let mut qid_rows = Vec::with_capacity(members.len());
        for &mt in members {
            let (qid, sens_ranks) = sensitive.split_transaction(data.transaction(mt as usize));
            qid_rows.push(qid);
            for r in sens_ranks {
                counts[r] += 1;
            }
        }
        let sensitive_counts: Vec<(ItemId, u32)> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(r, &c)| (sensitive.items()[r], c))
            .collect();
        strict_invariant_eq!(
            qid_rows.len(),
            members.len(),
            "one published QID row per member"
        );
        strict_invariant!(
            sensitive_counts.windows(2).all(|w| w[0].0 < w[1].0),
            "sensitive summary must be sorted by item id"
        );
        AnonymizedGroup {
            members: members.to_vec(),
            qid_rows,
            sensitive_counts,
        }
    }

    /// Number of transactions in the group.
    #[inline]
    pub fn size(&self) -> usize {
        self.qid_rows.len()
    }

    /// The largest sensitive-item occurrence count (0 if the group has no
    /// sensitive items).
    pub fn max_sensitive_count(&self) -> u32 {
        self.sensitive_counts
            .iter()
            .map(|&(_, c)| c)
            .max()
            .unwrap_or(0)
    }

    /// The group's privacy degree `min_s |G| / f_s`, or `None` when the
    /// group contains no sensitive items (unbounded privacy).
    pub fn privacy_degree(&self) -> Option<usize> {
        let max = self.max_sensitive_count();
        if max == 0 {
            None
        } else {
            Some(self.size() / max as usize)
        }
    }

    /// Whether the group satisfies privacy degree `p`
    /// (`f_s * p <= |G|` for every sensitive item).
    pub fn satisfies(&self, p: usize) -> bool {
        let g = self.size();
        self.sensitive_counts
            .iter()
            .all(|&(_, f)| (f as usize) * p <= g)
    }

    /// Occurrence count of a specific sensitive item in this group.
    pub fn sensitive_count_of(&self, item: ItemId) -> u32 {
        self.sensitive_counts
            .binary_search_by_key(&item, |&(i, _)| i)
            .map(|idx| self.sensitive_counts[idx].1)
            .unwrap_or(0)
    }
}

/// A complete anonymized release: disjoint groups covering the dataset.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublishedDataset {
    /// Size of the item universe.
    pub n_items: usize,
    /// The sensitive item ids (sorted).
    pub sensitive_items: Vec<ItemId>,
    /// The anonymized groups.
    pub groups: Vec<AnonymizedGroup>,
}

impl PublishedDataset {
    /// Total number of published transactions.
    pub fn n_transactions(&self) -> usize {
        self.groups.iter().map(AnonymizedGroup::size).sum()
    }

    /// Number of groups.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// The privacy degree of the whole release: the minimum group degree,
    /// or `None` if no group contains a sensitive item.
    pub fn privacy_degree(&self) -> Option<usize> {
        self.groups
            .iter()
            .filter_map(AnonymizedGroup::privacy_degree)
            .min()
    }

    /// Whether every group satisfies privacy degree `p`.
    pub fn satisfies(&self, p: usize) -> bool {
        self.groups.iter().all(|g| g.satisfies(p))
    }

    /// Total occurrences of a sensitive item across all groups.
    pub fn total_sensitive_count(&self, item: ItemId) -> u32 {
        self.groups.iter().map(|g| g.sensitive_count_of(item)).sum()
    }

    /// Removes the member back-references, producing the form that would
    /// actually be released.
    pub fn strip_members(mut self) -> PublishedDataset {
        for g in &mut self.groups {
            g.members.clear();
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(size: usize, counts: &[(ItemId, u32)]) -> AnonymizedGroup {
        AnonymizedGroup {
            members: (0..size as u32).collect(),
            qid_rows: vec![vec![]; size],
            sensitive_counts: counts.to_vec(),
        }
    }

    #[test]
    fn privacy_degree_is_min_over_items() {
        let g = group(6, &[(1, 2), (4, 1)]);
        assert_eq!(g.privacy_degree(), Some(3)); // 6/2
        assert!(g.satisfies(3));
        assert!(!g.satisfies(4));
        assert_eq!(g.max_sensitive_count(), 2);
    }

    #[test]
    fn group_without_sensitive_items_is_unbounded() {
        let g = group(2, &[]);
        assert_eq!(g.privacy_degree(), None);
        assert!(g.satisfies(1_000));
    }

    #[test]
    fn sensitive_count_lookup() {
        let g = group(4, &[(2, 1), (7, 3)]);
        assert_eq!(g.sensitive_count_of(7), 3);
        assert_eq!(g.sensitive_count_of(3), 0);
    }

    #[test]
    fn dataset_degree_is_min_group_degree() {
        let d = PublishedDataset {
            n_items: 10,
            sensitive_items: vec![1],
            groups: vec![group(10, &[(1, 2)]), group(4, &[(1, 1)]), group(3, &[])],
        };
        assert_eq!(d.privacy_degree(), Some(4)); // min(5, 4, unbounded)
        assert!(d.satisfies(4));
        assert!(!d.satisfies(5));
        assert_eq!(d.n_transactions(), 17);
        assert_eq!(d.total_sensitive_count(1), 3);
    }

    #[test]
    fn strip_members_clears_back_references() {
        let d = PublishedDataset {
            n_items: 5,
            sensitive_items: vec![],
            groups: vec![group(3, &[])],
        };
        let stripped = d.strip_members();
        assert!(stripped.groups[0].members.is_empty());
        assert_eq!(stripped.groups[0].size(), 3);
    }

    #[test]
    fn all_nonsensitive_dataset_unbounded() {
        let d = PublishedDataset {
            n_items: 5,
            sensitive_items: vec![],
            groups: vec![group(3, &[])],
        };
        assert_eq!(d.privacy_degree(), None);
        assert!(d.satisfies(100));
    }
}
