//! Local-search refinement of anonymized groups.
//!
//! CAHD is greedy: once a group forms, its membership is final. A cheap
//! post-pass can recover some of the utility the greedy pass left behind:
//! try swapping members between *nearby* groups (nearby in release order,
//! which follows the band order, so candidates are already similar) and
//! keep a swap when it increases the total intra-group QID overlap — the
//! same objective CAHD's candidate selection maximizes — without violating
//! the per-group sensitive-frequency bound.
//!
//! Swaps preserve group sizes, and privacy is re-checked explicitly for
//! both groups before a swap is applied, so the refined release satisfies
//! the same degree `p` and re-verifies like any other.

use cahd_data::{ItemId, SensitiveSet, TransactionSet};

use crate::group::{AnonymizedGroup, PublishedDataset};
use crate::invariant::strict_invariant;

/// Outcome counters of a refinement pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefineStats {
    /// Swaps evaluated.
    pub swaps_tried: usize,
    /// Swaps that improved the objective and were kept.
    pub swaps_applied: usize,
    /// Total objective gain (QID-overlap units).
    pub objective_gain: u64,
    /// Full sweeps over the group sequence.
    pub sweeps: usize,
}

/// The intra-group similarity objective: total pairwise QID overlap
/// within groups, summed over the release. Higher is better; this is the
/// quantity CAHD's candidate selection maximizes greedily.
pub fn intra_group_overlap(published: &PublishedDataset) -> u64 {
    let mut total = 0u64;
    for g in &published.groups {
        for a in 0..g.qid_rows.len() {
            for b in (a + 1)..g.qid_rows.len() {
                total += overlap(&g.qid_rows[a], &g.qid_rows[b]);
            }
        }
    }
    total
}

fn overlap(a: &[ItemId], b: &[ItemId]) -> u64 {
    let (mut i, mut j, mut n) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Sum of a row's overlap with every other row of a group, skipping index
/// `skip` (use `usize::MAX` to include all rows).
fn affinity(group: &AnonymizedGroup, row: &[ItemId], skip: usize) -> u64 {
    group
        .qid_rows
        .iter()
        .enumerate()
        .filter(|&(k, _)| k != skip)
        .map(|(_, r)| overlap(row, r))
        .sum()
}

/// Whether replacing the member carrying `outgoing` ranks by one carrying
/// `incoming` ranks keeps every sensitive item within `|G| / p`.
fn swap_keeps_privacy(
    group: &AnonymizedGroup,
    outgoing: &[usize],
    incoming: &[usize],
    sensitive: &SensitiveSet,
    p: usize,
) -> bool {
    let size = group.size();
    for &r in incoming {
        let item = sensitive.items()[r];
        let current = group.sensitive_count_of(item) as usize;
        let leaving = usize::from(outgoing.contains(&r));
        if (current - leaving + 1) * p > size {
            return false;
        }
    }
    true
}

/// Adjusts a group's sensitive summary for one member leaving (`out`) and
/// one joining (`inc`).
fn adjust_counts(
    group: &mut AnonymizedGroup,
    out: &[usize],
    inc: &[usize],
    sensitive: &SensitiveSet,
) {
    let mut counts: Vec<(ItemId, i64)> = group
        .sensitive_counts
        .iter()
        .map(|&(i, c)| (i, c as i64))
        .collect();
    let bump = |item: ItemId, delta: i64, counts: &mut Vec<(ItemId, i64)>| match counts
        .binary_search_by_key(&item, |&(i, _)| i)
    {
        Ok(k) => counts[k].1 += delta,
        Err(k) => counts.insert(k, (item, delta)),
    };
    for &r in out {
        bump(sensitive.items()[r], -1, &mut counts);
    }
    for &r in inc {
        bump(sensitive.items()[r], 1, &mut counts);
    }
    group.sensitive_counts = counts
        .into_iter()
        .filter(|&(_, c)| c > 0)
        .map(|(i, c)| (i, c as u32))
        .collect();
}

/// Groups larger than this multiple of the typical group are skipped:
/// refinement is quadratic in group size, and the one oversized group a
/// CAHD release can contain (the leftover fallback) would dominate the
/// cost for negligible benefit.
const MAX_REFINE_GROUP: usize = 64;

/// Refines `published` in place by member swaps between nearby groups,
/// returning the pass statistics.
///
/// `window` controls how many following groups each group trades with
/// (1 = immediate neighbor); `max_sweeps` bounds the hill-climbing passes
/// (stops earlier when a sweep makes no progress). `data` provides the
/// per-member sensitive items (the release only stores aggregates).
/// Groups larger than an internal cap (notably CAHD's leftover fallback
/// group) are left untouched.
pub fn refine_groups(
    published: &mut PublishedDataset,
    data: &TransactionSet,
    sensitive: &SensitiveSet,
    p: usize,
    window: usize,
    max_sweeps: usize,
) -> RefineStats {
    let member_sens =
        |id: u32| -> Vec<usize> { sensitive.split_transaction(data.transaction(id as usize)).1 };
    let mut stats = RefineStats::default();
    for _ in 0..max_sweeps {
        stats.sweeps += 1;
        let mut improved = false;
        for gi in 0..published.groups.len() {
            for gj in (gi + 1)..(gi + 1 + window).min(published.groups.len()) {
                let (left, right) = published.groups.split_at_mut(gj);
                let ga = &mut left[gi];
                let gb = &mut right[0];
                if ga.size() > MAX_REFINE_GROUP || gb.size() > MAX_REFINE_GROUP {
                    continue;
                }
                let mut best: Option<(i64, usize, usize)> = None;
                for a in 0..ga.qid_rows.len() {
                    for b in 0..gb.qid_rows.len() {
                        stats.swaps_tried += 1;
                        let row_a = &ga.qid_rows[a];
                        let row_b = &gb.qid_rows[b];
                        let gain = affinity(ga, row_b, a) as i64 + affinity(gb, row_a, b) as i64
                            - affinity(ga, row_a, a) as i64
                            - affinity(gb, row_b, b) as i64;
                        if gain <= best.map_or(0, |(g, _, _)| g) {
                            continue;
                        }
                        let sens_a = member_sens(ga.members[a]);
                        let sens_b = member_sens(gb.members[b]);
                        if swap_keeps_privacy(ga, &sens_a, &sens_b, sensitive, p)
                            && swap_keeps_privacy(gb, &sens_b, &sens_a, sensitive, p)
                        {
                            best = Some((gain, a, b));
                        }
                    }
                }
                if let Some((gain, a, b)) = best {
                    let sens_a = member_sens(ga.members[a]);
                    let sens_b = member_sens(gb.members[b]);
                    std::mem::swap(&mut ga.members[a], &mut gb.members[b]);
                    let row_a = std::mem::take(&mut ga.qid_rows[a]);
                    let row_b = std::mem::take(&mut gb.qid_rows[b]);
                    ga.qid_rows[a] = row_b;
                    gb.qid_rows[b] = row_a;
                    adjust_counts(ga, &sens_a, &sens_b, sensitive);
                    adjust_counts(gb, &sens_b, &sens_a, sensitive);
                    strict_invariant!(
                        ga.satisfies(p) && gb.satisfies(p),
                        "an applied swap must preserve privacy degree p"
                    );
                    stats.swaps_applied += 1;
                    stats.objective_gain += gain as u64;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_published;

    /// Two groups built badly on purpose: each mixes the two QID blocks.
    fn mixed_release() -> (TransactionSet, SensitiveSet, PublishedDataset) {
        let data = TransactionSet::from_rows(
            &[
                vec![0, 1, 8], // block A, sensitive
                vec![4, 5],    // block B
                vec![0, 1],    // block A
                vec![4, 5, 9], // block B, sensitive
            ],
            10,
        );
        let sens = SensitiveSet::new(vec![8, 9], 10);
        let published = PublishedDataset {
            n_items: 10,
            sensitive_items: vec![8, 9],
            groups: vec![
                AnonymizedGroup::from_members(&data, &sens, &[0, 1]),
                AnonymizedGroup::from_members(&data, &sens, &[2, 3]),
            ],
        };
        (data, sens, published)
    }

    #[test]
    fn refinement_improves_objective_and_stays_private() {
        let (data, sens, mut published) = mixed_release();
        let before = intra_group_overlap(&published);
        assert_eq!(before, 0); // blocks are mixed: zero overlap
        let stats = refine_groups(&mut published, &data, &sens, 2, 1, 5);
        assert!(stats.swaps_applied >= 1, "{stats:?}");
        let after = intra_group_overlap(&published);
        assert!(after > before, "after {after} <= before {before}");
        verify_published(&data, &sens, &published, 2).unwrap();
        // The blocks should now be grouped together.
        let g0: Vec<u32> = published.groups[0].members.clone();
        assert!(g0 == vec![0, 2] || g0 == vec![2, 0] || g0 == vec![1, 3] || g0 == vec![3, 1]);
    }

    #[test]
    fn refinement_never_violates_privacy_bound() {
        // Both sensitive transactions share item 8; putting them in one
        // group would violate p = 2 — the privacy check must block it even
        // if it improved overlap.
        let data =
            TransactionSet::from_rows(&[vec![0, 1, 8], vec![2, 3], vec![0, 1, 8], vec![2, 3]], 10);
        let sens = SensitiveSet::new(vec![8], 10);
        let mut published = PublishedDataset {
            n_items: 10,
            sensitive_items: vec![8],
            groups: vec![
                AnonymizedGroup::from_members(&data, &sens, &[0, 1]),
                AnonymizedGroup::from_members(&data, &sens, &[2, 3]),
            ],
        };
        refine_groups(&mut published, &data, &sens, 2, 1, 5);
        verify_published(&data, &sens, &published, 2).unwrap();
    }

    #[test]
    fn already_optimal_release_unchanged() {
        let (data, sens, mut published) = mixed_release();
        refine_groups(&mut published, &data, &sens, 2, 1, 5);
        let snapshot = published.clone();
        let stats = refine_groups(&mut published, &data, &sens, 2, 1, 5);
        assert_eq!(stats.swaps_applied, 0);
        assert_eq!(published, snapshot);
    }

    #[test]
    fn objective_gain_matches_measured_delta() {
        let (data, sens, mut published) = mixed_release();
        let before = intra_group_overlap(&published);
        let stats = refine_groups(&mut published, &data, &sens, 2, 1, 5);
        let after = intra_group_overlap(&published);
        assert_eq!(after - before, stats.objective_gain);
    }

    #[test]
    fn window_zero_is_a_no_op() {
        let (data, sens, mut published) = mixed_release();
        let stats = refine_groups(&mut published, &data, &sens, 2, 0, 5);
        assert_eq!(stats.swaps_tried, 0);
    }
}
