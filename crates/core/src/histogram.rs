//! The remaining-occurrence histogram (line 1 of the paper's Fig. 8).
//!
//! CAHD keeps, for every sensitive item, the number of occurrences among
//! the *not yet grouped* transactions. After tentatively forming a group it
//! checks `H[s] * p <= remaining` for every `s` (line 8): if the check
//! holds, the leftover transactions can always be published as one final
//! group with privacy degree `p`, so the greedy choice is safe; otherwise
//! the group is rolled back.

/// Per-sensitive-item occurrence counts over the ungrouped transactions,
/// indexed by sensitive-item rank (see `cahd_data::SensitiveSet::index_of`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SensitiveHistogram {
    counts: Vec<usize>,
}

impl SensitiveHistogram {
    /// Builds a histogram from initial occurrence counts.
    pub fn new(counts: Vec<usize>) -> Self {
        SensitiveHistogram { counts }
    }

    /// Number of tracked sensitive items.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no sensitive items are tracked.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Remaining occurrences of the item with rank `r`.
    #[inline]
    pub fn count(&self, r: usize) -> usize {
        self.counts[r]
    }

    /// Records that one occurrence of rank `r` left the ungrouped pool.
    ///
    /// # Panics
    /// Panics on underflow — that would mean the caller double-removed a
    /// transaction.
    #[inline]
    pub fn remove_occurrence(&mut self, r: usize) {
        self.counts[r] = self.counts[r]
            .checked_sub(1)
            // cahd-lint: allow(L003, reason = "double-remove means the suppression bookkeeping is corrupt; crashing beats publishing a wrong histogram")
            .expect("histogram underflow: occurrence removed twice");
    }

    /// Rolls back a removal.
    #[inline]
    pub fn restore_occurrence(&mut self, r: usize) {
        self.counts[r] += 1;
    }

    /// The feasibility check of Fig. 8 line 8: no sensitive item may have
    /// `count * p > remaining`, where `remaining` is the number of
    /// ungrouped transactions.
    pub fn feasible(&self, p: usize, remaining: usize) -> bool {
        self.counts.iter().all(|&c| c * p <= remaining)
    }

    /// The rank and count of the most frequent remaining item, or `None`
    /// when all counts are zero.
    pub fn most_frequent(&self) -> Option<(usize, usize)> {
        self.counts
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(_, c)| c)
            .filter(|&(_, c)| c > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasibility_check() {
        let h = SensitiveHistogram::new(vec![3, 1]);
        assert!(h.feasible(3, 9));
        assert!(!h.feasible(3, 8));
        assert!(h.feasible(1, 3));
    }

    #[test]
    fn remove_and_restore() {
        let mut h = SensitiveHistogram::new(vec![2]);
        h.remove_occurrence(0);
        assert_eq!(h.count(0), 1);
        h.restore_occurrence(0);
        assert_eq!(h.count(0), 2);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut h = SensitiveHistogram::new(vec![0]);
        h.remove_occurrence(0);
    }

    #[test]
    fn most_frequent() {
        let h = SensitiveHistogram::new(vec![1, 5, 3]);
        assert_eq!(h.most_frequent(), Some((1, 5)));
        let empty = SensitiveHistogram::new(vec![0, 0]);
        assert_eq!(empty.most_frequent(), None);
    }

    #[test]
    fn empty_histogram_always_feasible() {
        let h = SensitiveHistogram::new(vec![]);
        assert!(h.is_empty());
        assert!(h.feasible(100, 0));
    }
}
