//! The adaptive sparse/dense QID-similarity kernel.
//!
//! CAHD's dominant cost (paper Section V, Fig. 8) is the QID-overlap
//! score `|QID(t) ∩ QID(c)|`, recomputed for every candidate of every
//! sensitive pivot — `alpha * p` set intersections per pivot. This module
//! concentrates all of that scoring behind one layer with two
//! interchangeable physical representations:
//!
//! * **sparse** — the stamped-marker scan: stamp the pivot's items into a
//!   per-item epoch array, then count a candidate's stamped items. Cost is
//!   `O(|QID(c)|)` random loads; unbeatable for short rows.
//! * **dense** — the candidate's row packed into cache-line-aligned `u64`
//!   bitset blocks, scored by an AND + `popcount` sweep against the
//!   pivot's bitset. Cost is `O(n_items / 64)` sequential word ops;
//!   unbeatable for long rows over a compact universe.
//!
//! [`SimilarityKernel`] picks per *candidate* (see
//! [`SimilarityKernel::DENSE_ITEM_WORDS`] for the crossover rule), so a
//! dataset with a dense head and a sparse long tail uses both paths in one
//! run. Packing is lazy and cached: the band-order scan gives consecutive
//! pivots heavily overlapping `alpha * p` candidate windows, so a bitset
//! packed for one pivot is almost always reused by the next few — the
//! cache of packed rows is exactly the "per-candidate partial result"
//! that band order lets us keep. (The pivot-*dependent* half of the
//! score, the intersection itself, is recomputed per pivot on purpose:
//! a delta update against the previous pivot would have to inspect both
//! pivot rows, which already costs as much as scoring from scratch.)
//!
//! Every scorer here shares the wrap-safe [`StampSet`] epoch allocator,
//! which clears the marker array when the `u32` epoch overflows instead
//! of letting stale stamps alias fresh ones.
//!
//! The kernel counts its path decisions ([`KernelStats`]) and flushes
//! them to `cahd-obs` as `core.kernel_dense_scores`,
//! `core.kernel_sparse_scores` and `core.kernel_cache_hits`; the
//! `CAHD-O001` check pass audits `dense + sparse ==
//! core.candidates_scanned` so accounting drift is caught in CI.

use cahd_data::ItemId;
use cahd_obs::Recorder;

/// Which scoring path the kernel may take.
///
/// The published output is identical for every mode — the equivalence
/// property suite pins scores item-for-item against the reference scorer —
/// so the mode only moves time between the two paths. `ForceSparse` and
/// `ForceDense` exist for benchmarking and for CI to exercise both paths.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelMode {
    /// Choose per candidate by the measured row length (the default).
    #[default]
    Adaptive,
    /// Always take the stamped sparse scan (the pre-kernel behavior).
    ForceSparse,
    /// Always pack and score over bitset blocks. On a huge sparse
    /// universe this packs every scored row, trading memory for the
    /// sequential sweep; it is an explicit override, never chosen
    /// adaptively.
    ForceDense,
}

impl KernelMode {
    /// Parses a mode name as used by `--kernel` and `CAHD_KERNEL`:
    /// `adaptive`, `sparse` and `dense` (with `force-` prefixes accepted).
    pub fn parse(s: &str) -> Option<KernelMode> {
        match s {
            "adaptive" => Some(KernelMode::Adaptive),
            "sparse" | "force-sparse" => Some(KernelMode::ForceSparse),
            "dense" | "force-dense" => Some(KernelMode::ForceDense),
            _ => None,
        }
    }

    /// The mode named by the `CAHD_KERNEL` environment variable, if set
    /// to a recognized value.
    pub fn from_env() -> Option<KernelMode> {
        std::env::var("CAHD_KERNEL")
            .ok()
            .and_then(|v| KernelMode::parse(v.trim()))
    }

    /// Resolves the effective mode: a recognized `CAHD_KERNEL` value
    /// overrides the configured one (so CI can force either path through
    /// any entry point without touching configs). Entry points resolve
    /// once per run; unrecognized values are ignored.
    pub fn resolved(self) -> KernelMode {
        KernelMode::from_env().unwrap_or(self)
    }

    /// The canonical name ([`KernelMode::parse`] accepts it back).
    pub fn name(self) -> &'static str {
        match self {
            KernelMode::Adaptive => "adaptive",
            KernelMode::ForceSparse => "sparse",
            KernelMode::ForceDense => "dense",
        }
    }
}

/// Path counters of a kernel instance. Deterministic functions of the
/// scored workload and the mode — never of thread scheduling — so sums
/// over shards are reproducible and the `CAHD-O001` identities hold for
/// any layout.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Candidates scored by the bitset `popcount` path.
    pub dense_scores: u64,
    /// Candidates scored by the stamped sparse scan.
    pub sparse_scores: u64,
    /// Dense scores served from an already-packed bitset (a strict subset
    /// of `dense_scores`): the candidate was packed while scoring an
    /// earlier, overlapping pivot window.
    pub cache_hits: u64,
}

impl KernelStats {
    /// Total candidates scored, over both paths.
    pub fn total_scores(&self) -> u64 {
        self.dense_scores + self.sparse_scores
    }

    /// Flushes the three kernel counters into `rec` (zero counters are
    /// dropped by the recorder). Additive, so per-shard kernels can each
    /// flush into one recorder and the totals stay scheduling-invariant.
    pub fn flush_to(&self, rec: &Recorder) {
        rec.add("core.kernel_dense_scores", self.dense_scores);
        rec.add("core.kernel_sparse_scores", self.sparse_scores);
        rec.add("core.kernel_cache_hits", self.cache_hits);
    }
}

/// A wrap-safe stamped marker set over `0..n`.
///
/// The classic trick: instead of clearing a membership array between
/// pivots, bump an epoch and treat `stamp[i] == epoch` as membership.
/// The latent failure mode is the epoch wrapping after `2^32` uses —
/// entries stamped exactly `2^32` epochs ago would alias the fresh epoch
/// and phantom-match. `begin` closes the hole by clearing the array and
/// restarting the epoch at 1 when the counter would overflow, keeping
/// the amortized cost at `O(1)` per use.
#[derive(Clone, Debug)]
pub(crate) struct StampSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl StampSet {
    /// An empty set over the domain `0..n`.
    pub(crate) fn new(n: usize) -> Self {
        StampSet {
            stamp: vec![0u32; n],
            epoch: 0,
        }
    }

    /// Starts a new (empty) epoch, clearing the array on wrap.
    pub(crate) fn begin(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Inserts `i` into the current epoch.
    pub(crate) fn mark(&mut self, i: usize) {
        self.stamp[i] = self.epoch;
    }

    /// Whether `i` was marked in the current epoch.
    pub(crate) fn contains(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }

    /// Test hook: fast-forwards the epoch counter so the wrap path can be
    /// exercised without `2^32` real pivots.
    #[cfg(test)]
    pub(crate) fn force_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }
}

/// The reference QID-overlap scorer: `|QID(t) ∩ QID(c)|` via the stamped
/// sparse scan, always. This is the pre-kernel behavior (minus the stamp
/// wrap bug) and the ground truth the equivalence property suite scores
/// [`SimilarityKernel`] against.
pub struct QidOverlapScorer<'a> {
    qid_of: &'a [Vec<ItemId>],
    stamps: StampSet,
}

impl<'a> QidOverlapScorer<'a> {
    /// A scorer over the given QID rows (`score` takes indices into
    /// `qid_of`); items must lie in `0..n_items`.
    pub fn new(qid_of: &'a [Vec<ItemId>], n_items: usize) -> Self {
        QidOverlapScorer {
            qid_of,
            stamps: StampSet::new(n_items),
        }
    }

    /// Fills `out` with one overlap score per candidate.
    pub fn score(&mut self, t: usize, candidates: &[usize], out: &mut Vec<u64>) {
        let rows = self.qid_of;
        self.stamps.begin();
        for &it in &rows[t] {
            self.stamps.mark(it as usize);
        }
        out.clear();
        out.extend(candidates.iter().map(|&c| {
            rows[c]
                .iter()
                .filter(|&&it| self.stamps.contains(it as usize))
                .count() as u64
        }));
    }
}

/// The adaptive hybrid scorer. See the module docs for the two physical
/// paths and the caching scheme; construction is cheap (no packing
/// happens until a row is actually scored on the dense path).
pub struct SimilarityKernel<'a> {
    qid_of: &'a [Vec<ItemId>],
    mode: KernelMode,
    /// `u64` words needed to cover the item universe.
    words: usize,
    /// Arena stride: `words` rounded up to a whole 64-byte cache line, so
    /// every packed row starts line-aligned relative to the arena base
    /// and a score sweep touches the minimum number of lines.
    stride: usize,
    stamps: StampSet,
    /// The pivot's bitset, rebuilt lazily: only when the current pivot
    /// actually scores a dense candidate.
    pivot_bits: Vec<u64>,
    pivot_bits_valid: bool,
    /// Per-row arena slot of the packed bitset, `u32::MAX` = not packed.
    packed_slot: Vec<u32>,
    /// Packed row bitsets, `stride` words each, append-only: rows never
    /// change during a scan, so a packed bitset stays valid for the whole
    /// run and grouping a row merely stops it from being looked up again.
    arena: Vec<u64>,
    stats: KernelStats,
}

/// Sentinel for "row not packed yet".
const UNPACKED: u32 = u32::MAX;

/// `u64` words per 64-byte cache line.
const LINE_WORDS: usize = 8;

impl<'a> SimilarityKernel<'a> {
    /// Adaptive crossover: a candidate row goes dense when
    /// `DENSE_ITEM_WORDS * |row| >= words`, i.e. (at the current value 1)
    /// when the row averages at least one item per bitset word. A stamped
    /// sparse probe is a dependent random load and a bitset word is a
    /// sequential AND+`popcount`, so per-op the probe is costlier — but a
    /// dense score also pays the first-touch packing of the candidate and
    /// the lazy pivot-bitset build, so the break-even sits near one probe
    /// per word, not several. Measured on the perf-snapshot profiles: a
    /// factor of 4 sent BMS1's 2-item average rows (8-word universe) down
    /// the dense path and cost ~10% of group time; at 1, those rows stay
    /// sparse, BMS2's 5-items-in-53-words rows stay sparse, and
    /// Quest-style dense rows (~50 items in 7 words) still go to
    /// `popcount` for a 15-25% group-phase win.
    pub const DENSE_ITEM_WORDS: usize = 1;

    /// A kernel over the given QID rows (`score` takes indices into
    /// `qid_of`); items must lie in `0..n_items`.
    pub fn new(qid_of: &'a [Vec<ItemId>], n_items: usize, mode: KernelMode) -> Self {
        let words = n_items.div_ceil(64);
        let stride = words.next_multiple_of(LINE_WORDS).max(LINE_WORDS);
        SimilarityKernel {
            qid_of,
            mode,
            words,
            stride,
            stamps: StampSet::new(n_items),
            pivot_bits: vec![0u64; words],
            pivot_bits_valid: false,
            packed_slot: vec![UNPACKED; qid_of.len()],
            arena: Vec::new(),
            stats: KernelStats::default(),
        }
    }

    /// The path counters accumulated so far.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Flushes the kernel counters into `rec` (see
    /// [`KernelStats::flush_to`]).
    pub fn flush_to(&self, rec: &Recorder) {
        self.stats.flush_to(rec);
    }

    /// Fills `out` with one overlap score per candidate, choosing the
    /// physical path per candidate. Exactly equivalent to
    /// [`QidOverlapScorer::score`] in every mode.
    pub fn score(&mut self, t: usize, candidates: &[usize], out: &mut Vec<u64>) {
        let rows = self.qid_of;
        self.stamps.begin();
        for &it in &rows[t] {
            self.stamps.mark(it as usize);
        }
        self.pivot_bits_valid = false;
        out.clear();
        for &c in candidates {
            let dense = match self.mode {
                KernelMode::ForceSparse => false,
                KernelMode::ForceDense => true,
                KernelMode::Adaptive => Self::DENSE_ITEM_WORDS * rows[c].len() >= self.words,
            };
            let s = if dense {
                self.score_dense(t, c)
            } else {
                self.score_sparse(c)
            };
            out.push(s);
        }
    }

    fn score_sparse(&mut self, c: usize) -> u64 {
        self.stats.sparse_scores += 1;
        self.qid_of[c]
            .iter()
            .filter(|&&it| self.stamps.contains(it as usize))
            .count() as u64
    }

    fn score_dense(&mut self, t: usize, c: usize) -> u64 {
        self.stats.dense_scores += 1;
        let rows = self.qid_of;
        if !self.pivot_bits_valid {
            self.pivot_bits.fill(0);
            for &it in &rows[t] {
                self.pivot_bits[(it as usize) >> 6] |= 1u64 << (it & 63);
            }
            self.pivot_bits_valid = true;
        }
        let base = match self.packed_slot[c] {
            UNPACKED => {
                let base = self.arena.len();
                self.arena.resize(base + self.stride, 0);
                for &it in &rows[c] {
                    self.arena[base + ((it as usize) >> 6)] |= 1u64 << (it & 63);
                }
                self.packed_slot[c] = (base / self.stride) as u32;
                base
            }
            slot => {
                self.stats.cache_hits += 1;
                slot as usize * self.stride
            }
        };
        self.arena[base..base + self.words]
            .iter()
            .zip(&self.pivot_bits)
            .map(|(a, b)| u64::from((a & b).count_ones()))
            .sum()
    }
}

/// The count-valued scorer behind
/// [`WeightedSimilarity::MinCount`](crate::weighted::WeightedSimilarity):
/// `Σ_{i ∈ QID(t) ∩ QID(c)} min(count_t(i), count_c(i))`. Counts cannot
/// ride in a one-bit-per-item bitset, so this is a sparse-only kernel
/// client — it shares the wrap-safe [`StampSet`] (the stamp carries the
/// pivot's count alongside the epoch) and reports its work as sparse
/// kernel scores.
pub struct MinCountScorer<'a> {
    qid_of: &'a [Vec<(ItemId, u32)>],
    stamps: StampSet,
    pivot_count: Vec<u32>,
    stats: KernelStats,
}

impl<'a> MinCountScorer<'a> {
    /// A scorer over the given `(item, count)` rows; items must lie in
    /// `0..n_items`.
    pub fn new(qid_of: &'a [Vec<(ItemId, u32)>], n_items: usize) -> Self {
        MinCountScorer {
            qid_of,
            stamps: StampSet::new(n_items),
            pivot_count: vec![0u32; n_items],
            stats: KernelStats::default(),
        }
    }

    /// The path counters accumulated so far (sparse only).
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Flushes the kernel counters into `rec` (see
    /// [`KernelStats::flush_to`]).
    pub fn flush_to(&self, rec: &Recorder) {
        self.stats.flush_to(rec);
    }

    /// Fills `out` with one min-count similarity per candidate.
    pub fn score(&mut self, t: usize, candidates: &[usize], out: &mut Vec<u64>) {
        let rows = self.qid_of;
        self.stamps.begin();
        for &(item, c) in &rows[t] {
            self.stamps.mark(item as usize);
            self.pivot_count[item as usize] = c;
        }
        out.clear();
        for &cand in candidates {
            self.stats.sparse_scores += 1;
            let s: u64 = rows[cand]
                .iter()
                .filter(|&&(item, _)| self.stamps.contains(item as usize))
                .map(|&(item, c)| u64::from(c.min(self.pivot_count[item as usize])))
                .sum();
            out.push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Universe for the mixed fixture: 1024 items = 16 words, so the
    /// adaptive crossover needs 16+ items for the dense path — the ~25-item
    /// head rows go dense, the 1-2-item tail stays sparse.
    const N_ITEMS: usize = 1024;

    /// A mixed fixture: dense head rows and a sparse long tail over a
    /// universe wide enough that Adaptive takes both paths.
    fn mixed_rows() -> Vec<Vec<ItemId>> {
        let mut rows: Vec<Vec<ItemId>> = Vec::new();
        for i in 0..12u32 {
            // Dense rows: ~25 items each, shifted windows so overlaps vary.
            rows.push((0..25).map(|j| (i * 3 + j) % 100).collect());
        }
        for i in 0..12u32 {
            // Sparse tail: 1-2 items.
            rows.push(if i % 2 == 0 {
                vec![i % 100]
            } else {
                vec![i % 100, (i + 50) % 100]
            });
        }
        for row in &mut rows {
            row.sort_unstable();
            row.dedup();
        }
        rows
    }

    fn assert_matches_reference(rows: &[Vec<ItemId>], n_items: usize, mode: KernelMode) {
        let mut reference = QidOverlapScorer::new(rows, n_items);
        let mut kernel = SimilarityKernel::new(rows, n_items, mode);
        let mut want = Vec::new();
        let mut got = Vec::new();
        for t in 0..rows.len() {
            let candidates: Vec<usize> = (0..rows.len()).filter(|&c| c != t).collect();
            reference.score(t, &candidates, &mut want);
            kernel.score(t, &candidates, &mut got);
            assert_eq!(got, want, "mode {mode:?}, pivot {t}");
        }
    }

    #[test]
    fn every_mode_matches_the_reference_scorer() {
        let rows = mixed_rows();
        for mode in [
            KernelMode::Adaptive,
            KernelMode::ForceSparse,
            KernelMode::ForceDense,
        ] {
            assert_matches_reference(&rows, N_ITEMS, mode);
        }
    }

    #[test]
    fn adaptive_uses_both_paths_and_caches_across_windows() {
        let rows = mixed_rows();
        let mut kernel = SimilarityKernel::new(&rows, N_ITEMS, KernelMode::Adaptive);
        let mut out = Vec::new();
        // Overlapping windows, like consecutive band-order pivots.
        for t in 0..6 {
            let candidates: Vec<usize> = (t + 1..t + 13).collect();
            kernel.score(t, &candidates, &mut out);
        }
        let stats = kernel.stats();
        assert!(stats.dense_scores > 0, "{stats:?}");
        assert!(stats.sparse_scores > 0, "{stats:?}");
        assert!(
            stats.cache_hits > 0,
            "overlapping windows must hit: {stats:?}"
        );
        assert!(stats.cache_hits < stats.dense_scores, "{stats:?}");
        assert_eq!(stats.total_scores(), 6 * 12);
    }

    #[test]
    fn force_modes_take_exactly_one_path() {
        let rows = mixed_rows();
        let candidates: Vec<usize> = (1..rows.len()).collect();
        let mut out = Vec::new();
        let mut dense = SimilarityKernel::new(&rows, N_ITEMS, KernelMode::ForceDense);
        dense.score(0, &candidates, &mut out);
        assert_eq!(dense.stats().sparse_scores, 0);
        assert_eq!(dense.stats().dense_scores, candidates.len() as u64);
        let mut sparse = SimilarityKernel::new(&rows, N_ITEMS, KernelMode::ForceSparse);
        sparse.score(0, &candidates, &mut out);
        assert_eq!(sparse.stats().dense_scores, 0);
        assert_eq!(sparse.stats().sparse_scores, candidates.len() as u64);
    }

    /// The satellite regression test for the stamp-aliasing bug: with the
    /// epoch forced next to `u32::MAX`, scoring must survive the wrap.
    /// The pre-fix scorer (`istamp += 1` with no reset) would wrap the
    /// epoch to 0 — the array's *initial* value — making every item of
    /// every candidate phantom-match the pivot.
    #[test]
    fn reference_scorer_survives_stamp_wrap() {
        let rows = mixed_rows();
        let mut fresh = QidOverlapScorer::new(&rows, N_ITEMS);
        let mut wrapping = QidOverlapScorer::new(&rows, N_ITEMS);
        wrapping.stamps.force_epoch(u32::MAX - 2);
        let candidates: Vec<usize> = (1..rows.len()).collect();
        let (mut want, mut got) = (Vec::new(), Vec::new());
        // Epochs MAX-1, MAX, then the wrap path (clear + epoch 1), then 2.
        for t in 0..4 {
            fresh.score(t, &candidates, &mut want);
            wrapping.score(t, &candidates, &mut got);
            assert_eq!(got, want, "pivot {t}");
        }
        assert_eq!(wrapping.stamps.epoch, 2, "wrap must restart the epoch");
    }

    #[test]
    fn adaptive_kernel_survives_stamp_wrap() {
        let rows = mixed_rows();
        let mut fresh = SimilarityKernel::new(&rows, N_ITEMS, KernelMode::Adaptive);
        let mut wrapping = SimilarityKernel::new(&rows, N_ITEMS, KernelMode::Adaptive);
        wrapping.stamps.force_epoch(u32::MAX - 1);
        let candidates: Vec<usize> = (1..rows.len()).collect();
        let (mut want, mut got) = (Vec::new(), Vec::new());
        for t in 0..3 {
            fresh.score(t, &candidates, &mut want);
            wrapping.score(t, &candidates, &mut got);
            assert_eq!(got, want, "pivot {t}");
        }
    }

    #[test]
    fn min_count_scorer_survives_stamp_wrap() {
        let rows: Vec<Vec<(ItemId, u32)>> = vec![
            vec![(0, 5), (1, 3), (7, 2)],
            vec![(0, 2), (1, 9)],
            vec![(1, 1), (7, 4)],
            vec![(2, 6)],
        ];
        let mut fresh = MinCountScorer::new(&rows, 10);
        let mut wrapping = MinCountScorer::new(&rows, 10);
        wrapping.stamps.force_epoch(u32::MAX - 1);
        let candidates = vec![1usize, 2, 3];
        let (mut want, mut got) = (Vec::new(), Vec::new());
        for t in 0..3 {
            fresh.score(t, &candidates, &mut want);
            wrapping.score(t, &candidates, &mut got);
            assert_eq!(got, want, "pivot {t}");
        }
        // Spot-check the min-count semantics while we are here:
        // pivot 0 vs candidate 1 shares items 0 (min(5,2)=2) and 1
        // (min(3,9)=3).
        fresh.score(0, &[1], &mut want);
        assert_eq!(want, vec![5]);
    }

    #[test]
    fn mode_parsing_round_trips() {
        for mode in [
            KernelMode::Adaptive,
            KernelMode::ForceSparse,
            KernelMode::ForceDense,
        ] {
            assert_eq!(KernelMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(
            KernelMode::parse("force-dense"),
            Some(KernelMode::ForceDense)
        );
        assert_eq!(
            KernelMode::parse("force-sparse"),
            Some(KernelMode::ForceSparse)
        );
        assert_eq!(KernelMode::parse("quantum"), None);
        assert_eq!(KernelMode::default(), KernelMode::Adaptive);
    }

    #[test]
    fn empty_rows_and_tiny_universes_score_zero() {
        let rows: Vec<Vec<ItemId>> = vec![vec![], vec![0], vec![]];
        for mode in [
            KernelMode::Adaptive,
            KernelMode::ForceSparse,
            KernelMode::ForceDense,
        ] {
            let mut kernel = SimilarityKernel::new(&rows, 1, mode);
            let mut out = Vec::new();
            kernel.score(0, &[1, 2], &mut out);
            assert_eq!(out, vec![0, 0], "{mode:?}");
        }
    }

    #[test]
    fn stats_flush_is_additive_across_instances() {
        let rows = mixed_rows();
        let rec = Recorder::new();
        for lo in [0usize, 6] {
            let mut kernel = SimilarityKernel::new(&rows, N_ITEMS, KernelMode::Adaptive);
            let mut out = Vec::new();
            let candidates: Vec<usize> = (lo + 1..lo + 8).collect();
            kernel.score(lo, &candidates, &mut out);
            kernel.flush_to(&rec);
        }
        let report = rec.snapshot();
        let dense = report.counter_or_zero("core.kernel_dense_scores");
        let sparse = report.counter_or_zero("core.kernel_sparse_scores");
        assert_eq!(dense + sparse, 14);
    }
}
