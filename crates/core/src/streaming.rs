//! Batched (streaming) anonymization.
//!
//! Transaction logs grow continuously; re-anonymizing the full history for
//! every release is wasteful, and the paper's pipeline is a batch
//! algorithm. [`StreamingAnonymizer`] wraps it for append-only streams:
//! transactions are buffered, and whenever a batch is full (or on
//! [`StreamingAnonymizer::finish`]) the batch is anonymized with the usual
//! RCM + CAHD pipeline and emitted as an independent release chunk.
//!
//! Two properties make per-batch processing sound:
//!
//! * privacy composes: each chunk satisfies degree `p` on its own, and
//!   chunks are disjoint, so the union does too (an attacker knowing the
//!   batch boundaries learns nothing beyond the per-chunk releases);
//! * feasibility may fail for a batch even when the stream is globally
//!   feasible (a burst of one sensitive item). Rather than failing, the
//!   offending *sensitive transactions* are carried over to the next
//!   batch, where the burst has diluted.

use cahd_data::{ItemId, SensitiveSet, TransactionSet};

use crate::error::CahdError;
use crate::group::PublishedDataset;
use crate::invariant::{strict_invariant, strict_invariant_eq};
use crate::pipeline::{Anonymizer, AnonymizerConfig};

/// A released chunk: the batch's transactions (with their stream
/// positions) and the anonymized groups over them.
#[derive(Debug)]
pub struct ReleaseChunk {
    /// Stream positions of the batch's transactions; group members index
    /// into this vector.
    pub stream_ids: Vec<u64>,
    /// The anonymized release of the batch.
    pub published: PublishedDataset,
}

/// Buffers a transaction stream and anonymizes it batch by batch.
pub struct StreamingAnonymizer {
    config: AnonymizerConfig,
    sensitive: SensitiveSet,
    batch_size: usize,
    buffer: Vec<(u64, Vec<ItemId>)>,
    /// Transactions deferred from an infeasible batch, prepended to the
    /// next one.
    stash: Vec<(u64, Vec<ItemId>)>,
    next_id: u64,
    /// Total occurrences carried over so far, for monitoring.
    carried_over: usize,
}

impl StreamingAnonymizer {
    /// Creates a streaming wrapper. `batch_size` must be at least
    /// `2 * p` so batches can hold at least two groups.
    ///
    /// # Panics
    /// Panics if `batch_size < 2 * p`.
    pub fn new(config: AnonymizerConfig, sensitive: SensitiveSet, batch_size: usize) -> Self {
        assert!(
            batch_size >= 2 * config.cahd.p,
            "batch_size must be at least 2p"
        );
        StreamingAnonymizer {
            config,
            sensitive,
            batch_size,
            buffer: Vec::new(),
            stash: Vec::new(),
            next_id: 0,
            carried_over: 0,
        }
    }

    /// Number of buffered (not yet released) transactions.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Total sensitive transactions deferred to a later batch so far.
    pub fn carried_over(&self) -> usize {
        self.carried_over
    }

    /// Appends a transaction; returns a release chunk when a batch
    /// completed.
    pub fn push(&mut self, items: Vec<ItemId>) -> Result<Option<ReleaseChunk>, CahdError> {
        let id = self.next_id;
        self.next_id += 1;
        self.buffer.push((id, items));
        if self.buffer.len() >= self.batch_size {
            self.release_batch(false).map(Some)
        } else {
            Ok(None)
        }
    }

    /// Flushes the remaining buffer as a final chunk (no carry-over
    /// allowed: infeasibility is now a hard error the caller must handle,
    /// e.g. with [`crate::suppress::enforce_feasibility`]).
    pub fn finish(mut self) -> Result<Option<ReleaseChunk>, CahdError> {
        self.buffer.append(&mut self.stash);
        if self.buffer.is_empty() {
            return Ok(None);
        }
        self.release_batch(true).map(Some)
    }

    fn release_batch(&mut self, final_flush: bool) -> Result<ReleaseChunk, CahdError> {
        let p = self.config.cahd.p;
        let n_items = self.sensitive.n_items();
        loop {
            let rows: Vec<Vec<ItemId>> = self.buffer.iter().map(|(_, r)| r.clone()).collect();
            let data = TransactionSet::from_rows(&rows, n_items);
            let counts = self.sensitive.occurrence_counts(&data);
            // Find the worst offender, if any.
            let offender = counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c * p > data.n_transactions())
                .max_by_key(|&(_, &c)| c)
                .map(|(r, _)| self.sensitive.items()[r]);
            match offender {
                None => {
                    let result = Anonymizer::new(self.config).anonymize(&data, &self.sensitive)?;
                    let stream_ids: Vec<u64> = self.buffer.iter().map(|&(id, _)| id).collect();
                    strict_invariant!(
                        result.published.satisfies(p),
                        "a released chunk must satisfy the privacy degree"
                    );
                    strict_invariant_eq!(
                        result.published.n_transactions(),
                        stream_ids.len(),
                        "a chunk must publish exactly the batch it covers"
                    );
                    // Deferred transactions open the next batch.
                    self.buffer = std::mem::take(&mut self.stash);
                    return Ok(ReleaseChunk {
                        stream_ids,
                        published: result.published,
                    });
                }
                Some(item) if !final_flush => {
                    // Defer one transaction holding the offender to the
                    // next batch and retry.
                    let pos = self
                        .buffer
                        .iter()
                        .rposition(|(_, r)| r.contains(&item))
                        .expect("offender has holders");
                    let deferred = self.buffer.remove(pos);
                    self.carried_over += 1;
                    self.stash.push(deferred);
                }
                Some(item) => {
                    let support = counts[self.sensitive.index_of(item).unwrap()];
                    return Err(CahdError::Infeasible {
                        item,
                        support,
                        p,
                        n: data.n_transactions(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_published;

    fn sensitive() -> SensitiveSet {
        SensitiveSet::new(vec![9], 10)
    }

    fn config(p: usize) -> AnonymizerConfig {
        AnonymizerConfig::with_privacy_degree(p)
    }

    #[test]
    fn batches_release_and_verify() {
        let mut s = StreamingAnonymizer::new(config(2), sensitive(), 8);
        let mut chunks = Vec::new();
        for i in 0..20u32 {
            let mut row = vec![i % 4];
            if i % 8 == 0 {
                row.push(9);
            }
            if let Some(chunk) = s.push(row).unwrap() {
                chunks.push(chunk);
            }
        }
        if let Some(chunk) = s.finish().unwrap() {
            chunks.push(chunk);
        }
        assert_eq!(chunks.len(), 3); // 8 + 8 + 4
        let total: usize = chunks.iter().map(|c| c.stream_ids.len()).sum();
        assert_eq!(total, 20);
        for c in &chunks {
            assert!(c.published.satisfies(2));
            // Rebuild the batch data from the stream and verify fully.
            let rows: Vec<Vec<u32>> = c
                .stream_ids
                .iter()
                .map(|&id| {
                    let mut row = vec![(id as u32) % 4];
                    if id % 8 == 0 {
                        row.push(9);
                    }
                    row
                })
                .collect();
            let data = TransactionSet::from_rows(&rows, 10);
            verify_published(&data, &sensitive(), &c.published, 2).unwrap();
        }
    }

    #[test]
    fn burst_is_carried_over() {
        // First batch: 3 sensitive among 6 (infeasible for p = 3: 3*3 > 6);
        // later traffic dilutes it.
        let mut s = StreamingAnonymizer::new(config(3), sensitive(), 6);
        let mut rows: Vec<Vec<u32>> = vec![vec![0, 9], vec![1, 9], vec![2, 9]];
        rows.extend((0..15).map(|i| vec![i % 4]));
        let mut chunks = Vec::new();
        for row in rows {
            if let Some(c) = s.push(row).unwrap() {
                chunks.push(c);
            }
        }
        assert!(s.carried_over() > 0);
        if let Some(c) = s.finish().unwrap() {
            chunks.push(c);
        }
        let total: usize = chunks.iter().map(|c| c.stream_ids.len()).sum();
        assert_eq!(total, 18);
        for c in &chunks {
            assert!(c.published.satisfies(3));
        }
    }

    #[test]
    fn final_flush_infeasible_is_error() {
        let mut s = StreamingAnonymizer::new(config(3), sensitive(), 6);
        for _ in 0..4 {
            assert!(s.push(vec![0, 9]).unwrap().is_none());
        }
        let err = s.finish().unwrap_err();
        assert!(matches!(err, CahdError::Infeasible { item: 9, .. }));
    }

    #[test]
    fn empty_stream() {
        let s = StreamingAnonymizer::new(config(2), sensitive(), 10);
        assert!(s.finish().unwrap().is_none());
    }

    #[test]
    #[should_panic(expected = "at least 2p")]
    fn tiny_batch_rejected() {
        StreamingAnonymizer::new(config(5), sensitive(), 9);
    }
}
