//! Batched (streaming) anonymization.
//!
//! Transaction logs grow continuously; re-anonymizing the full history for
//! every release is wasteful, and the paper's pipeline is a batch
//! algorithm. [`StreamingAnonymizer`] wraps it for append-only streams:
//! transactions are buffered, and whenever a batch is full (or on
//! [`StreamingAnonymizer::finish`]) the batch is anonymized with the usual
//! RCM + CAHD pipeline and emitted as an independent release chunk.
//!
//! Two properties make per-batch processing sound:
//!
//! * privacy composes: each chunk satisfies degree `p` on its own, and
//!   chunks are disjoint, so the union does too (an attacker knowing the
//!   batch boundaries learns nothing beyond the per-chunk releases);
//! * feasibility may fail for a batch even when the stream is globally
//!   feasible (a burst of one sensitive item). Rather than failing, the
//!   offending *sensitive transactions* are carried over to the next
//!   batch, where the burst has diluted.
//!
//! # Fault tolerance
//!
//! The full in-flight state (buffer, stash, stream cursor) freezes into a
//! [`StreamingCheckpoint`] via [`StreamingAnonymizer::checkpoint`] and
//! thaws with [`StreamingAnonymizer::resume`], so a killed process picks
//! up exactly where it stopped — already-released chunks are never
//! recomputed, and the resumed run emits the identical remaining chunks.
//! Corrupt input rows are handled per the configured
//! [`InputPolicy`] ([`StreamingAnonymizer::with_recovery`]): rejected
//! under `Strict`, quarantined into the chunk's final group under
//! `Quarantine`. Resumes are counted by the `core.resumed_batches`
//! counter on the recorder configured with
//! [`StreamingAnonymizer::with_recorder`].

use cahd_data::{ItemId, SensitiveSet, TransactionSet};
use cahd_obs::Recorder;
use serde::{Deserialize, Serialize};

use crate::checkpoint::{StreamingCheckpoint, CHECKPOINT_VERSION};
use crate::error::CahdError;
use crate::group::PublishedDataset;
use crate::invariant::{strict_invariant, strict_invariant_eq};
use crate::pipeline::{Anonymizer, AnonymizerConfig};
use crate::recovery::{bad_row_reason, sanitize_row, InputPolicy, RecoveryConfig};

/// A released chunk: the batch's transactions (with their stream
/// positions) and the anonymized groups over them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReleaseChunk {
    /// Stream positions of the batch's transactions; group members index
    /// into this vector.
    pub stream_ids: Vec<u64>,
    /// The anonymized release of the batch.
    pub published: PublishedDataset,
}

/// Buffers a transaction stream and anonymizes it batch by batch.
pub struct StreamingAnonymizer {
    config: AnonymizerConfig,
    sensitive: SensitiveSet,
    batch_size: usize,
    buffer: Vec<(u64, Vec<ItemId>)>,
    /// Transactions deferred from an infeasible batch, prepended to the
    /// next one.
    stash: Vec<(u64, Vec<ItemId>)>,
    next_id: u64,
    /// Total occurrences carried over so far, for monitoring.
    carried_over: usize,
    /// Whether [`StreamingAnonymizer::finish`] already ran.
    finished: bool,
    /// Corrupt-row policy and fault plan for the per-batch pipeline runs.
    recovery: RecoveryConfig,
    /// Recorder the per-batch pipeline runs and recovery counters flow
    /// into (disabled unless configured).
    rec: Recorder,
}

impl std::fmt::Debug for StreamingAnonymizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingAnonymizer")
            .field("batch_size", &self.batch_size)
            .field("buffered", &self.buffer.len())
            .field("stashed", &self.stash.len())
            .field("next_id", &self.next_id)
            .field("carried_over", &self.carried_over)
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

impl StreamingAnonymizer {
    /// Creates a streaming wrapper. `batch_size` must be at least
    /// `2 * p` so batches can hold at least two groups.
    ///
    /// # Panics
    /// Panics if `batch_size < 2 * p`.
    pub fn new(config: AnonymizerConfig, sensitive: SensitiveSet, batch_size: usize) -> Self {
        assert!(
            batch_size >= 2 * config.cahd.p,
            "batch_size must be at least 2p"
        );
        StreamingAnonymizer {
            config,
            sensitive,
            batch_size,
            buffer: Vec::new(),
            stash: Vec::new(),
            next_id: 0,
            carried_over: 0,
            finished: false,
            recovery: RecoveryConfig::strict(),
            rec: Recorder::disabled(),
        }
    }

    /// Sets the corrupt-row policy and fault plan for every batch this
    /// stream releases. The default is [`RecoveryConfig::strict`]: a bad
    /// row fails the batch with [`CahdError::CorruptRow`]. Planned
    /// corrupt-row injections key on the row's *position within the batch*
    /// at release time, not its stream id.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = recovery;
        self
    }

    /// Routes batch pipeline runs and recovery counters
    /// (`core.quarantined_rows`, `core.resumed_batches`, ...) into `rec`.
    #[must_use]
    pub fn with_recorder(mut self, rec: &Recorder) -> Self {
        self.rec = rec.clone();
        self
    }

    /// Number of buffered (not yet released) transactions.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Total sensitive transactions deferred to a later batch so far.
    pub fn carried_over(&self) -> usize {
        self.carried_over
    }

    /// The stream id the next pushed transaction will receive — equal to
    /// the number of transactions pushed so far, which lets a resuming
    /// reader skip straight to its position in the source.
    pub fn next_stream_id(&self) -> u64 {
        self.next_id
    }

    /// Whether [`StreamingAnonymizer::finish`] already ran.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Freezes the resumable state — buffered rows, carry-over stash,
    /// stream cursor, and the remaining-occurrence histogram — into a
    /// sealed, self-digesting checkpoint. Cheap (clones the buffer);
    /// callers typically checkpoint right after each released chunk, so
    /// a resume re-anonymizes nothing already published.
    #[must_use]
    pub fn checkpoint(&self) -> StreamingCheckpoint {
        let mut cp = StreamingCheckpoint {
            version: CHECKPOINT_VERSION,
            p: self.config.cahd.p as u64,
            batch_size: self.batch_size as u64,
            n_items: self.sensitive.n_items() as u64,
            next_id: self.next_id,
            carried_over: self.carried_over as u64,
            finished: self.finished,
            buffer: self.buffer.clone(),
            stash: self.stash.clone(),
            sensitive_items: self.sensitive.items().to_vec(),
            remaining_counts: Vec::new(),
            digest: 0,
        };
        cp.seal();
        cp
    }

    /// Thaws a checkpointed stream. See
    /// [`StreamingAnonymizer::resume_traced`].
    ///
    /// # Errors
    /// As [`StreamingAnonymizer::resume_traced`].
    pub fn resume(
        config: AnonymizerConfig,
        sensitive: SensitiveSet,
        cp: &StreamingCheckpoint,
    ) -> Result<Self, CahdError> {
        Self::resume_traced(config, sensitive, cp, &Recorder::disabled())
    }

    /// Thaws a checkpointed stream, fail-closed: the checkpoint is
    /// validated ([`StreamingCheckpoint::validate`]) and cross-checked
    /// against the live `config` and `sensitive` set before any of its
    /// state is trusted. The resumed stream continues exactly where the
    /// checkpointed one stopped — same buffered rows, same stream ids,
    /// same carry-over — so the remaining chunks are identical to an
    /// uninterrupted run's. Each successful resume bumps the
    /// `core.resumed_batches` counter on `rec`, which also becomes the
    /// stream's recorder (as if passed to
    /// [`StreamingAnonymizer::with_recorder`]).
    ///
    /// # Errors
    /// [`CahdError::CorruptCheckpoint`] if validation or any cross-check
    /// fails.
    pub fn resume_traced(
        config: AnonymizerConfig,
        sensitive: SensitiveSet,
        cp: &StreamingCheckpoint,
        rec: &Recorder,
    ) -> Result<Self, CahdError> {
        cp.validate()?;
        let mismatch = |reason: String| Err(CahdError::CorruptCheckpoint { reason });
        if cp.p != config.cahd.p as u64 {
            return mismatch(format!(
                "checkpoint privacy degree {} does not match the configured {}",
                cp.p, config.cahd.p
            ));
        }
        if cp.n_items != sensitive.n_items() as u64 {
            return mismatch(format!(
                "checkpoint universe {} does not match the sensitive set's {}",
                cp.n_items,
                sensitive.n_items()
            ));
        }
        if cp.sensitive_items != sensitive.items() {
            return mismatch("checkpoint sensitive items differ from the live set".to_string());
        }
        rec.add("core.resumed_batches", 1);
        Ok(StreamingAnonymizer {
            config,
            sensitive,
            batch_size: cp.batch_size as usize,
            buffer: cp.buffer.clone(),
            stash: cp.stash.clone(),
            next_id: cp.next_id,
            carried_over: cp.carried_over as usize,
            finished: cp.finished,
            recovery: RecoveryConfig::strict(),
            rec: rec.clone(),
        })
    }

    /// Appends a transaction; returns a release chunk when a batch
    /// completed.
    ///
    /// # Errors
    /// [`CahdError::StreamFinished`] after [`StreamingAnonymizer::finish`];
    /// otherwise whatever the per-batch pipeline reports.
    pub fn push(&mut self, items: Vec<ItemId>) -> Result<Option<ReleaseChunk>, CahdError> {
        if self.finished {
            return Err(CahdError::StreamFinished);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.buffer.push((id, items));
        if self.buffer.len() >= self.batch_size {
            self.release_batch(false).map(Some)
        } else {
            Ok(None)
        }
    }

    /// Flushes the remaining buffer as a final chunk (no carry-over
    /// allowed: infeasibility is now a hard error the caller must handle,
    /// e.g. with [`crate::suppress::enforce_feasibility`]). Closes the
    /// stream: later [`push`](Self::push) calls error with
    /// [`CahdError::StreamFinished`], and calling `finish` again is a
    /// no-op returning `Ok(None)`.
    pub fn finish(&mut self) -> Result<Option<ReleaseChunk>, CahdError> {
        if self.finished {
            return Ok(None);
        }
        self.finished = true;
        let mut stash = std::mem::take(&mut self.stash);
        self.buffer.append(&mut stash);
        if self.buffer.is_empty() {
            return Ok(None);
        }
        self.release_batch(true).map(Some)
    }

    fn release_batch(&mut self, final_flush: bool) -> Result<ReleaseChunk, CahdError> {
        let p = self.config.cahd.p;
        let n_items = self.sensitive.n_items();
        loop {
            // Ingestion-aware view of the batch: a corrupt row is either a
            // hard error (Strict, reported under its *stream* id) or
            // counted via its sanitized form, which is exactly what the
            // robust pipeline will publish for it.
            let mut rows: Vec<Vec<ItemId>> = Vec::with_capacity(self.buffer.len());
            let mut eff_rows: Vec<Vec<ItemId>> = Vec::with_capacity(self.buffer.len());
            for (pos, (id, row)) in self.buffer.iter().enumerate() {
                let reason = if self.recovery.plan.row_is_corrupt(pos) {
                    Some("injected corruption".to_string())
                } else {
                    bad_row_reason(row, n_items)
                };
                match (reason, self.recovery.policy) {
                    (Some(reason), InputPolicy::Strict) => {
                        return Err(CahdError::CorruptRow {
                            row: usize::try_from(*id).unwrap_or(usize::MAX),
                            reason,
                        });
                    }
                    (Some(_), InputPolicy::Quarantine) => {
                        eff_rows.push(sanitize_row(row, n_items));
                        rows.push(row.clone());
                    }
                    (None, _) => {
                        eff_rows.push(row.clone());
                        rows.push(row.clone());
                    }
                }
            }
            let data = TransactionSet::from_rows(&eff_rows, n_items);
            let counts = self.sensitive.occurrence_counts(&data);
            // Find the worst offender, if any.
            let offender = counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c * p > data.n_transactions())
                .max_by_key(|&(_, &c)| c)
                .map(|(r, _)| self.sensitive.items()[r]);
            match offender {
                None => {
                    let robust = Anonymizer::new(self.config)
                        .anonymize_rows_traced(&rows, &self.sensitive, &self.recovery, &self.rec)
                        .map_err(|e| match e {
                            // Batch-local row index -> stream id.
                            CahdError::CorruptRow { row, reason } => CahdError::CorruptRow {
                                row: usize::try_from(self.buffer[row].0).unwrap_or(usize::MAX),
                                reason,
                            },
                            other => other,
                        })?;
                    let published = robust.result.published;
                    let stream_ids: Vec<u64> = self.buffer.iter().map(|&(id, _)| id).collect();
                    strict_invariant!(
                        published.satisfies(p),
                        "a released chunk must satisfy the privacy degree"
                    );
                    strict_invariant_eq!(
                        published.n_transactions(),
                        stream_ids.len(),
                        "a chunk must publish exactly the batch it covers"
                    );
                    // Deferred transactions open the next batch.
                    self.buffer = std::mem::take(&mut self.stash);
                    return Ok(ReleaseChunk {
                        stream_ids,
                        published,
                    });
                }
                Some(item) if !final_flush => {
                    // Defer one transaction holding the offender to the
                    // next batch and retry.
                    let pos = self
                        .buffer
                        .iter()
                        .rposition(|(_, r)| r.contains(&item))
                        // cahd-lint: allow(L003, reason = "item was counted from this same buffer, so at least one holder is present")
                        .expect("offender has holders");
                    let deferred = self.buffer.remove(pos);
                    self.carried_over += 1;
                    self.stash.push(deferred);
                }
                Some(item) => {
                    // cahd-lint: allow(L003, reason = "item came out of a scan over this same SensitiveSet, so index_of is Some")
                    let support = counts[self.sensitive.index_of(item).unwrap()];
                    return Err(CahdError::Infeasible {
                        item,
                        support,
                        p,
                        n: data.n_transactions(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_published;

    fn sensitive() -> SensitiveSet {
        SensitiveSet::new(vec![9], 10)
    }

    fn config(p: usize) -> AnonymizerConfig {
        AnonymizerConfig::with_privacy_degree(p)
    }

    #[test]
    fn batches_release_and_verify() {
        let mut s = StreamingAnonymizer::new(config(2), sensitive(), 8);
        let mut chunks = Vec::new();
        for i in 0..20u32 {
            let mut row = vec![i % 4];
            if i % 8 == 0 {
                row.push(9);
            }
            if let Some(chunk) = s.push(row).unwrap() {
                chunks.push(chunk);
            }
        }
        if let Some(chunk) = s.finish().unwrap() {
            chunks.push(chunk);
        }
        assert_eq!(chunks.len(), 3); // 8 + 8 + 4
        let total: usize = chunks.iter().map(|c| c.stream_ids.len()).sum();
        assert_eq!(total, 20);
        for c in &chunks {
            assert!(c.published.satisfies(2));
            // Rebuild the batch data from the stream and verify fully.
            let rows: Vec<Vec<u32>> = c
                .stream_ids
                .iter()
                .map(|&id| {
                    let mut row = vec![(id as u32) % 4];
                    if id % 8 == 0 {
                        row.push(9);
                    }
                    row
                })
                .collect();
            let data = TransactionSet::from_rows(&rows, 10);
            verify_published(&data, &sensitive(), &c.published, 2).unwrap();
        }
    }

    #[test]
    fn burst_is_carried_over() {
        // First batch: 3 sensitive among 6 (infeasible for p = 3: 3*3 > 6);
        // later traffic dilutes it.
        let mut s = StreamingAnonymizer::new(config(3), sensitive(), 6);
        let mut rows: Vec<Vec<u32>> = vec![vec![0, 9], vec![1, 9], vec![2, 9]];
        rows.extend((0..15).map(|i| vec![i % 4]));
        let mut chunks = Vec::new();
        for row in rows {
            if let Some(c) = s.push(row).unwrap() {
                chunks.push(c);
            }
        }
        assert!(s.carried_over() > 0);
        if let Some(c) = s.finish().unwrap() {
            chunks.push(c);
        }
        let total: usize = chunks.iter().map(|c| c.stream_ids.len()).sum();
        assert_eq!(total, 18);
        for c in &chunks {
            assert!(c.published.satisfies(3));
        }
    }

    #[test]
    fn final_flush_infeasible_is_error() {
        let mut s = StreamingAnonymizer::new(config(3), sensitive(), 6);
        for _ in 0..4 {
            assert!(s.push(vec![0, 9]).unwrap().is_none());
        }
        let err = s.finish().unwrap_err();
        assert!(matches!(err, CahdError::Infeasible { item: 9, .. }));
    }

    #[test]
    fn empty_stream() {
        let mut s = StreamingAnonymizer::new(config(2), sensitive(), 10);
        assert!(s.finish().unwrap().is_none());
    }

    #[test]
    #[should_panic(expected = "at least 2p")]
    fn tiny_batch_rejected() {
        StreamingAnonymizer::new(config(5), sensitive(), 9);
    }

    #[test]
    fn finish_with_less_than_p_sensitive_rows_is_infeasible() {
        // Fewer buffered rows than p, one of them sensitive: the final
        // flush cannot satisfy 1/p and must error, not silently release.
        let mut s = StreamingAnonymizer::new(config(4), sensitive(), 8);
        assert!(s.push(vec![0, 9]).unwrap().is_none());
        assert!(s.push(vec![1]).unwrap().is_none());
        assert!(s.buffered() < 4);
        let err = s.finish().unwrap_err();
        assert!(matches!(err, CahdError::Infeasible { item: 9, p: 4, .. }));
        // The error closed the stream all the same.
        assert!(s.is_finished());
    }

    #[test]
    fn push_after_finish_is_rejected() {
        let mut s = StreamingAnonymizer::new(config(2), sensitive(), 8);
        for i in 0..3u32 {
            assert!(s.push(vec![i % 4]).unwrap().is_none());
        }
        let final_chunk = s.finish().unwrap().expect("buffered rows flush");
        assert_eq!(final_chunk.stream_ids, vec![0, 1, 2]);
        assert_eq!(s.push(vec![0]).unwrap_err(), CahdError::StreamFinished);
        // A second finish is an idempotent no-op.
        assert!(s.finish().unwrap().is_none());
        assert_eq!(s.buffered(), 0);
    }

    #[test]
    fn checkpoint_resume_round_trip_releases_identical_chunks() {
        let rows: Vec<Vec<u32>> = (0..20u32)
            .map(|i| {
                let mut row = vec![i % 4];
                if i % 8 == 0 {
                    row.push(9);
                }
                row
            })
            .collect();
        // Uninterrupted reference run.
        let mut s = StreamingAnonymizer::new(config(2), sensitive(), 8);
        let mut reference = Vec::new();
        for row in &rows {
            if let Some(c) = s.push(row.clone()).unwrap() {
                reference.push(c);
            }
        }
        if let Some(c) = s.finish().unwrap() {
            reference.push(c);
        }
        // Kill after 11 rows, checkpoint, resume, replay the tail.
        let mut s = StreamingAnonymizer::new(config(2), sensitive(), 8);
        let mut chunks = Vec::new();
        for row in &rows[..11] {
            if let Some(c) = s.push(row.clone()).unwrap() {
                chunks.push(c);
            }
        }
        let cp = s.checkpoint();
        drop(s); // the "killed" process
        let rec = Recorder::new();
        let mut s = StreamingAnonymizer::resume_traced(config(2), sensitive(), &cp, &rec).unwrap();
        assert_eq!(s.buffered(), 3); // 11 pushed, 8 released
        for row in &rows[11..] {
            if let Some(c) = s.push(row.clone()).unwrap() {
                chunks.push(c);
            }
        }
        if let Some(c) = s.finish().unwrap() {
            chunks.push(c);
        }
        assert_eq!(chunks, reference);
        assert_eq!(rec.snapshot().counter("core.resumed_batches"), Some(1));
    }

    #[test]
    fn resume_cross_checks_fail_closed() {
        let mut s = StreamingAnonymizer::new(config(2), sensitive(), 8);
        s.push(vec![0]).unwrap();
        let cp = s.checkpoint();
        // Wrong privacy degree.
        let err = StreamingAnonymizer::resume(config(3), sensitive(), &cp).unwrap_err();
        assert!(matches!(err, CahdError::CorruptCheckpoint { ref reason }
            if reason.contains("privacy degree")));
        // Wrong sensitive set.
        let err = StreamingAnonymizer::resume(config(2), SensitiveSet::new(vec![8], 10), &cp)
            .unwrap_err();
        assert!(matches!(err, CahdError::CorruptCheckpoint { .. }));
        // Tampered payload.
        let mut bad = cp.clone();
        bad.buffer[0].1 = vec![7];
        let err = StreamingAnonymizer::resume(config(2), sensitive(), &bad).unwrap_err();
        assert!(matches!(err, CahdError::CorruptCheckpoint { ref reason }
            if reason.contains("digest")));
    }

    #[test]
    fn quarantine_policy_keeps_bad_stream_rows() {
        let mut s = StreamingAnonymizer::new(config(2), sensitive(), 8)
            .with_recovery(RecoveryConfig::quarantine());
        let mut chunks = Vec::new();
        for i in 0..8u32 {
            let row = if i == 3 {
                vec![1, 1, 99] // duplicate + out-of-range
            } else {
                vec![i % 4]
            };
            if let Some(c) = s.push(row).unwrap() {
                chunks.push(c);
            }
        }
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].published.n_transactions(), 8);
        assert!(chunks[0].published.satisfies(2));

        // The same stream under the default strict policy errors, naming
        // the stream id.
        let mut s = StreamingAnonymizer::new(config(2), sensitive(), 8);
        for i in 0..7u32 {
            let row = if i == 3 { vec![1, 1, 99] } else { vec![i % 4] };
            if i < 7 {
                match s.push(row) {
                    Ok(None) => {}
                    other => panic!("unexpected: {other:?}"),
                }
            }
        }
        let err = s.push(vec![0]).unwrap_err();
        assert!(
            matches!(err, CahdError::CorruptRow { row: 3, .. }),
            "{err:?}"
        );
    }
}
