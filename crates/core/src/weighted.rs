//! CAHD for count-valued (non-binary) transactions.
//!
//! Realizes the paper's future-work direction ("anonymization of
//! high-dimensional data for non-binary databases", motivated by the
//! Netflix Prize ratings release). The privacy model is unchanged — a
//! privacy breach is the *association* of a transaction with a sensitive
//! item, regardless of its count — so the sensitive side still publishes
//! per-group presence frequencies. What changes:
//!
//! * published QID rows carry their exact counts (lossless, like the binary
//!   case publishes exact item sets);
//! * candidate scoring can exploit the counts: two transactions that bought
//!   similar *quantities* are more similar than two that merely share the
//!   item ([`WeightedSimilarity`]).
//!
//! Group formation reuses the verified engine of [`crate::cahd::cahd`]; only the
//! scorer and the published representation differ.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use cahd_data::{ItemId, SensitiveSet, WeightedTransactionSet};

use crate::cahd::{form_groups, CahdConfig, CahdStats, FeasibilityCheck};
use crate::error::CahdError;
use crate::group::{AnonymizedGroup, PublishedDataset};
use crate::invariant::strict_invariant;
use crate::kernel::{MinCountScorer, SimilarityKernel};

/// How candidate similarity is computed from counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WeightedSimilarity {
    /// Number of shared QID items — identical to binary CAHD; counts only
    /// affect the published form.
    PresenceOverlap,
    /// Sum over shared QID items of `min(count_t, count_c)`: rewards
    /// matching quantities. The default.
    #[default]
    MinCount,
}

/// One anonymized group of weighted transactions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightedGroup {
    /// Original transaction indices.
    pub members: Vec<u32>,
    /// Published QID `(item, count)` rows, aligned with `members`.
    pub qid_rows: Vec<Vec<(ItemId, u32)>>,
    /// Sensitive presence frequencies, as in the binary model.
    pub sensitive_counts: Vec<(ItemId, u32)>,
}

impl WeightedGroup {
    /// Number of members.
    pub fn size(&self) -> usize {
        self.qid_rows.len()
    }

    /// Whether the group satisfies privacy degree `p`.
    pub fn satisfies(&self, p: usize) -> bool {
        let g = self.size();
        self.sensitive_counts
            .iter()
            .all(|&(_, f)| (f as usize) * p <= g)
    }
}

/// A complete weighted release.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightedPublished {
    /// Size of the item universe.
    pub n_items: usize,
    /// Sensitive item ids (sorted).
    pub sensitive_items: Vec<ItemId>,
    /// The groups.
    pub groups: Vec<WeightedGroup>,
}

impl WeightedPublished {
    /// Total published transactions.
    pub fn n_transactions(&self) -> usize {
        self.groups.iter().map(WeightedGroup::size).sum()
    }

    /// Whether every group satisfies degree `p`.
    pub fn satisfies(&self, p: usize) -> bool {
        self.groups.iter().all(|g| g.satisfies(p))
    }

    /// Projects the release onto the binary model: QID rows keep their
    /// items and drop the counts. The sensitive summaries are already
    /// presence frequencies, so the result is a valid release of
    /// `data.to_binary()` and can be fed to the binary verifier and the
    /// `cahd-check` pass registry.
    pub fn to_binary(&self) -> PublishedDataset {
        PublishedDataset {
            n_items: self.n_items,
            sensitive_items: self.sensitive_items.clone(),
            groups: self
                .groups
                .iter()
                .map(|g| AnonymizedGroup {
                    members: g.members.clone(),
                    qid_rows: g
                        .qid_rows
                        .iter()
                        .map(|row| row.iter().map(|&(item, _)| item).collect())
                        .collect(),
                    sensitive_counts: g.sensitive_counts.clone(),
                })
                .collect(),
        }
    }
}

/// Runs CAHD over count-valued data (assumed band-ordered, exactly like
/// [`crate::cahd::cahd`]).
pub fn cahd_weighted(
    data: &WeightedTransactionSet,
    sensitive: &SensitiveSet,
    config: &CahdConfig,
    similarity: WeightedSimilarity,
) -> Result<(WeightedPublished, CahdStats), CahdError> {
    cahd_weighted_traced(
        data,
        sensitive,
        config,
        similarity,
        &cahd_obs::Recorder::disabled(),
    )
}

/// Like [`cahd_weighted`], recording the `pipeline/group` span and the
/// greedy engine's `core.*` counters into `rec` (the weighted analogue of
/// [`crate::cahd::cahd_traced`]).
pub fn cahd_weighted_traced(
    data: &WeightedTransactionSet,
    sensitive: &SensitiveSet,
    config: &CahdConfig,
    similarity: WeightedSimilarity,
    rec: &cahd_obs::Recorder,
) -> Result<(WeightedPublished, CahdStats), CahdError> {
    config.validate()?;
    let n = data.n_transactions();
    if sensitive.n_items() != data.n_items() {
        return Err(CahdError::UniverseMismatch {
            data_items: data.n_items(),
            sensitive_items: sensitive.n_items(),
        });
    }
    // cahd-lint: allow(L002, reason = "elapsed-time stat only; release bytes never depend on it")
    let t_start = Instant::now();

    // Split rows into QID (item, count) pairs and sensitive ranks.
    let mut qid_of: Vec<Vec<(ItemId, u32)>> = Vec::with_capacity(n);
    let mut sens_of: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut counts = vec![0usize; sensitive.len()];
    for t in 0..n {
        let mut q = Vec::new();
        let mut s = Vec::new();
        for (item, c) in data.transaction(t) {
            match sensitive.index_of(item) {
                Some(r) => {
                    s.push(r);
                    counts[r] += 1;
                }
                None => q.push((item, c)),
            }
        }
        qid_of.push(q);
        sens_of.push(s);
    }

    // Both similarities score through the kernel layer (crate::kernel).
    // PresenceOverlap is the binary overlap on the item sets, so it rides
    // the adaptive sparse/dense kernel directly; MinCount needs the
    // pivot's counts alongside the stamps, which a one-bit bitset cannot
    // carry, so it uses the sparse-only count scorer.
    let group_span = rec.span("pipeline/group");
    let formed = match similarity {
        WeightedSimilarity::PresenceOverlap => {
            let binary_qid: Vec<Vec<ItemId>> = qid_of
                .iter()
                .map(|row| row.iter().map(|&(item, _)| item).collect())
                .collect();
            let mut kernel =
                SimilarityKernel::new(&binary_qid, data.n_items(), config.kernel.resolved());
            form_groups(
                n,
                &sens_of,
                counts,
                sensitive.items(),
                config,
                |t, cl, out| kernel.score(t, cl, out),
                FeasibilityCheck::Enforce,
                rec,
            )?
        }
        WeightedSimilarity::MinCount => {
            let mut scorer = MinCountScorer::new(&qid_of, data.n_items());
            form_groups(
                n,
                &sens_of,
                counts,
                sensitive.items(),
                config,
                |t, cl, out| scorer.score(t, cl, out),
                FeasibilityCheck::Enforce,
                rec,
            )?
        }
    };
    drop(group_span);

    let make = |members: &[usize]| -> WeightedGroup {
        let mut scounts = vec![0u32; sensitive.len()];
        let mut qid_rows = Vec::with_capacity(members.len());
        for &mt in members {
            qid_rows.push(qid_of[mt].clone());
            for &r in &sens_of[mt] {
                scounts[r] += 1;
            }
        }
        WeightedGroup {
            members: members.iter().map(|&mt| mt as u32).collect(),
            qid_rows,
            sensitive_counts: scounts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(r, &c)| (sensitive.items()[r], c))
                .collect(),
        }
    };
    let mut groups: Vec<WeightedGroup> = formed.groups.iter().map(|m| make(m)).collect();
    if !formed.leftover.is_empty() {
        groups.push(make(&formed.leftover));
    }
    let mut stats = formed.stats;
    stats.elapsed = t_start.elapsed();

    let published = WeightedPublished {
        n_items: data.n_items(),
        sensitive_items: sensitive.items().to_vec(),
        groups,
    };
    strict_invariant!(
        published.satisfies(config.p),
        "weighted CAHD invariant violated"
    );
    Ok((published, stats))
}

/// End-to-end weighted pipeline: RCM band reorganization on the occurrence
/// pattern, then [`cahd_weighted`], with group members mapped back to
/// original transaction indices. The weighted analogue of
/// [`crate::pipeline::Anonymizer`].
pub fn anonymize_weighted(
    data: &WeightedTransactionSet,
    sensitive: &SensitiveSet,
    config: &CahdConfig,
    similarity: WeightedSimilarity,
) -> Result<(WeightedPublished, CahdStats), CahdError> {
    anonymize_weighted_traced(
        data,
        sensitive,
        config,
        similarity,
        &cahd_obs::Recorder::disabled(),
    )
}

/// Like [`anonymize_weighted`], recording the full pipeline span taxonomy
/// (`pipeline`, `pipeline/rcm/*`, `pipeline/permute`, `pipeline/group`,
/// `pipeline/unpermute`), the `rcm.*`/`sparse.*`/`core.*` metrics of the
/// phases, and — under a memory-tracking recorder — the `mem.*` gauges
/// into `rec`. This is what backs `--trace-json`/`--metrics`/`--memory`
/// on `cahd-cli anonymize-weighted`.
pub fn anonymize_weighted_traced(
    data: &WeightedTransactionSet,
    sensitive: &SensitiveSet,
    config: &CahdConfig,
    similarity: WeightedSimilarity,
    rec: &cahd_obs::Recorder,
) -> Result<(WeightedPublished, CahdStats), CahdError> {
    let pipeline_span = rec.span("pipeline");
    let red =
        cahd_rcm::reduce_unsymmetric_traced(data.pattern(), cahd_rcm::UnsymOptions::default(), rec);
    let permuted = {
        let _s = rec.span("pipeline/permute");
        data.permute(&red.row_perm)
    };
    let (mut published, stats) =
        cahd_weighted_traced(&permuted, sensitive, config, similarity, rec)?;
    {
        let _s = rec.span("pipeline/unpermute");
        for g in &mut published.groups {
            for m in &mut g.members {
                *m = red.row_perm.new_to_old(*m as usize) as u32;
            }
        }
    }
    drop(pipeline_span);
    rec.record_memory_gauges();
    Ok((published, stats))
}

/// Independently verifies a weighted release: coverage, verbatim QID rows
/// (items *and* counts), correct sensitive summaries and the privacy
/// degree. Mirrors [`crate::verify::verify_published`].
pub fn verify_weighted(
    data: &WeightedTransactionSet,
    sensitive: &SensitiveSet,
    published: &WeightedPublished,
    p: usize,
) -> Result<(), crate::verify::VerificationError> {
    use crate::verify::VerificationError as E;
    if published.sensitive_items != sensitive.items() {
        return Err(E::SensitiveItemsMismatch);
    }
    let n = data.n_transactions();
    if published.n_transactions() != n {
        return Err(E::Cardinality {
            expected: n,
            actual: published.n_transactions(),
        });
    }
    let mut seen = vec![0usize; n];
    for g in &published.groups {
        for &mt in &g.members {
            if (mt as usize) < n {
                seen[mt as usize] += 1;
            } else {
                return Err(E::Coverage {
                    transaction: mt as usize,
                    times_seen: 0,
                });
            }
        }
    }
    if let Some((t, &c)) = seen.iter().enumerate().find(|&(_, &c)| c != 1) {
        return Err(E::Coverage {
            transaction: t,
            times_seen: c,
        });
    }
    for (gi, g) in published.groups.iter().enumerate() {
        let mut counts = vec![0u32; sensitive.len()];
        for (k, &mt) in g.members.iter().enumerate() {
            let mut qid: Vec<(ItemId, u32)> = Vec::new();
            for (item, c) in data.transaction(mt as usize) {
                match sensitive.index_of(item) {
                    Some(r) => counts[r] += 1,
                    None => qid.push((item, c)),
                }
            }
            if g.qid_rows.get(k) != Some(&qid) {
                return Err(E::QidMismatch {
                    group: gi,
                    member: k,
                });
            }
        }
        let expected: Vec<(ItemId, u32)> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(r, &c)| (sensitive.items()[r], c))
            .collect();
        if expected != g.sensitive_counts {
            return Err(E::SensitiveCountMismatch { group: gi });
        }
        if !g.satisfies(p) {
            return Err(E::PrivacyViolation {
                group: gi,
                degree: None,
                required: p,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ratings-style data: items 0..4 QID with counts 1..5, item 5/6
    /// sensitive.
    fn ratings() -> (WeightedTransactionSet, SensitiveSet) {
        let data = WeightedTransactionSet::from_rows(
            &[
                vec![(0, 5), (1, 3), (5, 1)],
                vec![(0, 5), (1, 3)],
                vec![(0, 1), (1, 1)],
                vec![(2, 4), (3, 2), (6, 1)],
                vec![(2, 4), (3, 2)],
                vec![(2, 1)],
            ],
            7,
        );
        (data, SensitiveSet::new(vec![5, 6], 7))
    }

    #[test]
    fn weighted_release_verifies() {
        let (data, sens) = ratings();
        let (pub_, stats) = cahd_weighted(
            &data,
            &sens,
            &CahdConfig::new(2),
            WeightedSimilarity::MinCount,
        )
        .unwrap();
        verify_weighted(&data, &sens, &pub_, 2).unwrap();
        assert!(stats.groups_formed >= 2);
        assert_eq!(pub_.n_transactions(), 6);
    }

    #[test]
    fn min_count_prefers_matching_quantities() {
        // Pivot 0 has (0,5),(1,3). Candidate 1 matches counts exactly
        // (score 8); candidate 2 shares items but with count 1 each
        // (score 2). MinCount must pick candidate 1.
        let (data, sens) = ratings();
        let (pub_, _) = cahd_weighted(
            &data,
            &sens,
            &CahdConfig::new(2),
            WeightedSimilarity::MinCount,
        )
        .unwrap();
        let g0 = &pub_.groups[0];
        assert_eq!(g0.members, vec![0, 1]);
        assert_eq!(g0.qid_rows[0], vec![(0, 5), (1, 3)]);
    }

    #[test]
    fn presence_overlap_matches_binary_grouping() {
        let (data, sens) = ratings();
        let (wpub, _) = cahd_weighted(
            &data,
            &sens,
            &CahdConfig::new(2),
            WeightedSimilarity::PresenceOverlap,
        )
        .unwrap();
        let (bpub, _) = crate::cahd::cahd(&data.to_binary(), &sens, &CahdConfig::new(2)).unwrap();
        let wm: Vec<Vec<u32>> = wpub.groups.iter().map(|g| g.members.clone()).collect();
        let bm: Vec<Vec<u32>> = bpub.groups.iter().map(|g| g.members.clone()).collect();
        assert_eq!(wm, bm, "presence scorer must reproduce binary grouping");
    }

    #[test]
    fn weighted_infeasible_detected() {
        let data = WeightedTransactionSet::from_rows(
            &[vec![(0, 1), (2, 9)], vec![(1, 1), (2, 1)], vec![(1, 1)]],
            3,
        );
        let sens = SensitiveSet::new(vec![2], 3);
        let err = cahd_weighted(&data, &sens, &CahdConfig::new(2), Default::default()).unwrap_err();
        assert!(matches!(err, CahdError::Infeasible { item: 2, .. }));
    }

    #[test]
    fn verifier_catches_count_tampering() {
        let (data, sens) = ratings();
        let (mut pub_, _) =
            cahd_weighted(&data, &sens, &CahdConfig::new(2), Default::default()).unwrap();
        pub_.groups[0].qid_rows[0][0].1 += 1; // corrupt a count
        let err = verify_weighted(&data, &sens, &pub_, 2).unwrap_err();
        assert!(matches!(
            err,
            crate::verify::VerificationError::QidMismatch { .. }
        ));
    }

    #[test]
    fn binary_projection_verifies() {
        let (data, sens) = ratings();
        let (pub_, _) =
            cahd_weighted(&data, &sens, &CahdConfig::new(2), Default::default()).unwrap();
        crate::verify::verify_published(&data.to_binary(), &sens, &pub_.to_binary(), 2).unwrap();
    }

    #[test]
    fn serde_roundtrip() {
        let (data, sens) = ratings();
        let (pub_, _) =
            cahd_weighted(&data, &sens, &CahdConfig::new(2), Default::default()).unwrap();
        let json = serde_json::to_string(&pub_).unwrap();
        let back: WeightedPublished = serde_json::from_str(&json).unwrap();
        assert_eq!(back, pub_);
    }
}
