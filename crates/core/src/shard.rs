//! Sharded, multi-threaded CAHD group formation.
//!
//! The band structure the RCM reorganization creates is exactly what makes
//! sharding safe: transactions far apart in band order share almost no
//! items, so splitting the row sequence into `k` *contiguous* shards and
//! running the CAHD scan independently per shard loses only the groups
//! that would have straddled a boundary. Terrovitis & Mamoulis's
//! disassociation work makes the privacy side of this precise:
//! partitioning transactions into clusters anonymized independently
//! preserves the guarantee, because each cluster's release is a valid
//! release of its own rows.
//!
//! # Merge semantics and the `1/p` bound
//!
//! Each shard runs the verified [`form_groups`] engine over its own rows
//! with a *per-shard* remaining-occurrence histogram. The merged release
//! is deterministic and scheduling-independent:
//!
//! * regular groups are emitted in shard order (all of shard 0's groups,
//!   then shard 1's, ...), each of size exactly `p`;
//! * every shard's leftover rows are funneled into **one** final global
//!   group instead of one per shard.
//!
//! The boundary-histogram argument for why the per-group `1/p` bound
//! survives the merge: a shard whose scan accepted at least one group ends
//! in a state where `H_i[s] * p <= r_i` for every sensitive item `s`
//! (that inequality *is* the acceptance test, evaluated on the
//! would-be-leftover state), and a shard that accepted none either
//! satisfies it vacuously (its initial histogram was feasible) or is
//! locally infeasible. Summing the per-shard inequalities over feasible
//! shards gives `Σ H_i[s] * p <= Σ r_i` — the merged final group
//! satisfies degree `p`. Locally *infeasible* shards (every occurrence of
//! some item concentrated in one shard) can break the summed bound, so
//! the merge re-validates the final group against the global histogram
//! and, if needed, deterministically dissolves regular groups (last
//! formed first) back into it until the bound holds; global feasibility
//! (`support(s) * p <= n`, checked up front) guarantees termination.
//!
//! With `shards = 1` the computation is the sequential scan of
//! [`cahd`](crate::cahd::cahd) and produces byte-identical output. With any shard count the
//! output is independent of `threads` — workers only decide *when* a
//! shard is computed, never *what* it computes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use cahd_data::{ItemId, SensitiveSet, TransactionSet};
use cahd_obs::{Histogram, Recorder};

use crate::cahd::{cahd_traced, form_groups, make_group, CahdConfig, CahdStats, FeasibilityCheck};
use crate::error::CahdError;
use crate::group::{AnonymizedGroup, PublishedDataset};
use crate::invariant::{strict_invariant, strict_invariant_eq};
use crate::kernel::{KernelMode, SimilarityKernel};
use crate::recovery::{FaultPlan, ShardFault};

/// How to distribute the anonymization across shards and worker threads.
///
/// The default (`shards = 1`, `threads = 1`) is the sequential pipeline.
/// Zero values are treated as 1; `threads` is additionally capped at the
/// shard count (extra workers would have nothing to do).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of contiguous band-order shards the row sequence is split
    /// into. `1` reproduces the sequential scan exactly.
    pub shards: usize,
    /// Number of worker threads shards are distributed over. The output
    /// is identical for every value — threads affect scheduling only.
    pub threads: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            shards: 1,
            threads: 1,
        }
    }
}

impl ParallelConfig {
    /// A config with the given shard and thread counts.
    pub fn new(shards: usize, threads: usize) -> Self {
        ParallelConfig { shards, threads }
    }

    /// The sequential configuration (one shard, one thread).
    pub fn sequential() -> Self {
        ParallelConfig::default()
    }

    /// Whether this config runs the plain sequential scan.
    pub fn is_sequential(&self) -> bool {
        self.shards <= 1
    }
}

/// Counters describing a sharded CAHD run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardedStats {
    /// Aggregated engine counters (summed over shards; `elapsed` is the
    /// wall-clock time of the whole sharded run, not a per-shard sum).
    pub cahd: CahdStats,
    /// Number of shards actually used (the requested count, capped at
    /// the number of transactions).
    pub shards: usize,
    /// Number of worker threads actually used.
    pub threads: usize,
    /// Regular groups formed per shard, in shard order (before any merge
    /// dissolution).
    pub shard_groups: Vec<usize>,
    /// Regular groups dissolved back into the final group by the merge
    /// re-validation. Zero whenever every shard was locally feasible.
    pub merge_dissolved: usize,
    /// Shards whose first scan attempt failed (panic or deadline) and
    /// whose slice was recovered by a retry or the sequential fallback.
    /// Zero on every fault-free run.
    pub recovered_shards: usize,
}

/// Rows and outcome of one shard, in shard-local indices.
struct ShardOutcome {
    groups: Vec<Vec<usize>>,
    leftover: Vec<usize>,
    stats: CahdStats,
    /// Wall-clock nanoseconds the shard's scan took (on whichever worker
    /// ran it — a scheduling-dependent measurement, reported through the
    /// `core.shard_scan_ns` histogram, never a counter).
    scan_ns: u64,
    /// Whether the first scan attempt failed and the slice was recovered
    /// (by the retry or the sequential fallback).
    recovered: bool,
}

/// Raw product of one shard scan: groups and leftover in shard-local
/// ranks, plus the engine stats of the scan.
type ShardScan = (Vec<Vec<usize>>, Vec<usize>, CahdStats);

/// Why one shard scan attempt produced no outcome. Recoverable — unlike a
/// [`CahdError`], which reflects the input and propagates un-retried.
enum ShardFailure {
    /// The worker panicked mid-scan (caught at the attempt boundary).
    Panicked,
    /// The worker reported its deadline as exceeded and abandoned the
    /// attempt (only ever injected — see [`crate::recovery`]).
    Deadline,
}

/// Runs CAHD on `data` (assumed band-ordered) split into
/// `config.shards` contiguous shards processed by `config.threads`
/// workers, and returns the merged release plus run statistics. Group
/// members are row indices into `data`.
///
/// The output is a deterministic function of `(data, sensitive, cahd
/// config, shards)` — thread count never changes it — and `shards = 1`
/// is byte-identical to [`cahd`](crate::cahd::cahd). Errors exactly as [`cahd`](crate::cahd::cahd) does:
/// degenerate parameters, empty dataset, universe mismatch, or global
/// infeasibility (`support(s) * p > n`).
pub fn cahd_sharded(
    data: &TransactionSet,
    sensitive: &SensitiveSet,
    config: &CahdConfig,
    parallel: &ParallelConfig,
) -> Result<(PublishedDataset, ShardedStats), CahdError> {
    cahd_sharded_traced(data, sensitive, config, parallel, &Recorder::disabled())
}

/// Like [`cahd_sharded`], recording the group-formation phase into `rec`:
///
/// * spans `pipeline/group` (whole phase) and `pipeline/group/merge` (the
///   deterministic merge plus the dissolve repair loop), both on the
///   calling thread;
/// * the scheduling-invariant `core.*` engine counters of
///   [`form_groups`] and the kernel path counters
///   (`core.kernel_dense_scores`, `core.kernel_sparse_scores`,
///   `core.kernel_cache_hits`, from each shard's own
///   [`SimilarityKernel`]), summed over shards (sums commute, so the
///   totals are independent of which worker ran which shard), plus
///   `core.merge_dissolved` and `core.fallback_group_size`;
/// * histogram `core.shard_scan_ns` — one observation per shard with its
///   scan wall-clock (values are scheduling-dependent; the *count* is
///   always the shard count);
/// * gauges `core.shards` and `core.threads` (the effective layout).
pub fn cahd_sharded_traced(
    data: &TransactionSet,
    sensitive: &SensitiveSet,
    config: &CahdConfig,
    parallel: &ParallelConfig,
    rec: &Recorder,
) -> Result<(PublishedDataset, ShardedStats), CahdError> {
    cahd_sharded_recovering(data, sensitive, config, parallel, &FaultPlan::none(), rec)
}

/// Like [`cahd_sharded_traced`], with fault recovery driven by `plan`.
///
/// Each shard scan runs under a panic boundary: a worker attempt that
/// panics or exceeds its (injected) deadline is retried once, and if the
/// retry also fails the slice is recomputed on the **sequential reference
/// path** — the stamped sparse scan ([`KernelMode::ForceSparse`]), run
/// uncaught and never fault-injected. Both the retry and the fallback
/// recompute exactly the groups the healthy scan would have produced
/// (kernel modes are output-equivalent), so the merged release is
/// byte-identical whether or not a fault fired, and with an empty `plan`
/// this function *is* [`cahd_sharded_traced`].
///
/// Every attempt records its engine and kernel counters into a private
/// scratch [`Recorder`], merged into `rec` only when the attempt is
/// accepted — a failed attempt leaves no trace, keeping the
/// scheduling-invariant counter identities audited by `CAHD-O001` intact.
/// Recovered slices are counted by `core.recovered_shards` (audited by
/// `CAHD-R001`) and [`ShardedStats::recovered_shards`].
///
/// Genuine input errors ([`CahdError`]) are never retried: they are
/// deterministic properties of the data, not transient faults.
pub fn cahd_sharded_recovering(
    data: &TransactionSet,
    sensitive: &SensitiveSet,
    config: &CahdConfig,
    parallel: &ParallelConfig,
    plan: &FaultPlan,
    rec: &Recorder,
) -> Result<(PublishedDataset, ShardedStats), CahdError> {
    config.validate()?;
    let n = data.n_transactions();
    if sensitive.n_items() != data.n_items() {
        return Err(CahdError::UniverseMismatch {
            data_items: data.n_items(),
            sensitive_items: sensitive.n_items(),
        });
    }
    if n == 0 {
        return Err(CahdError::EmptyDataset);
    }
    let k = parallel.shards.max(1).min(n);
    if k == 1 && !plan.has_shard_faults() {
        // Delegate to the sequential entry point: same engine, same
        // output bytes, and the equivalence property test pins it. With a
        // planned fault even a single shard runs the recovery machinery.
        let (published, stats) = cahd_traced(data, sensitive, config, rec)?;
        let sharded = ShardedStats {
            shard_groups: vec![stats.groups_formed],
            cahd: stats,
            shards: 1,
            threads: 1,
            merge_dissolved: 0,
            recovered_shards: 0,
        };
        return Ok((published, sharded));
    }
    let threads = parallel.threads.max(1).min(k);
    let _group_span = rec.span("pipeline/group");
    rec.gauge("core.shards", k as f64);
    rec.gauge("core.threads", threads as f64);
    // cahd-lint: allow(L002, reason = "elapsed-time stat only; release bytes never depend on it")
    let t_start = Instant::now();
    let p = config.p;

    // Split every transaction into QID items and sensitive ranks once;
    // shards borrow disjoint slices of these.
    let mut qid_of: Vec<Vec<ItemId>> = Vec::with_capacity(n);
    let mut sens_of: Vec<Vec<usize>> = Vec::with_capacity(n);
    for txn in data.iter() {
        let (q, s) = sensitive.split_transaction(txn);
        qid_of.push(q);
        sens_of.push(s);
    }

    // Global feasibility (Section IV): checked once, up front. Shards
    // skip their local check — see `FeasibilityCheck::Skip`.
    let counts = sensitive.occurrence_counts(data);
    for (r, &c) in counts.iter().enumerate() {
        if c * p > n {
            return Err(CahdError::Infeasible {
                item: sensitive.items()[r],
                support: c,
                p,
                n,
            });
        }
    }

    // Balanced contiguous boundaries: shard i covers [i*n/k, (i+1)*n/k).
    let bounds: Vec<(usize, usize)> = (0..k).map(|i| (i * n / k, (i + 1) * n / k)).collect();

    // Resolve the kernel mode once so every shard takes the same path
    // (the env override is read a single time per run, not per worker).
    let kernel_mode = config.kernel.resolved();

    // One scan of shard `i` with the given kernel, recording engine and
    // kernel counters into `scratch` (merged into `rec` only if the
    // attempt is accepted — see `run_shard`).
    let scan_shard =
        |i: usize, mode: KernelMode, scratch: &Recorder| -> Result<ShardScan, CahdError> {
            let (lo, hi) = bounds[i];
            let shard_sens = &sens_of[lo..hi];
            let mut shard_counts = vec![0usize; sensitive.len()];
            for ranks in shard_sens {
                for &r in ranks {
                    shard_counts[r] += 1;
                }
            }
            let mut kernel = SimilarityKernel::new(&qid_of[lo..hi], data.n_items(), mode);
            let formed = form_groups(
                hi - lo,
                shard_sens,
                shard_counts,
                sensitive.items(),
                config,
                |t, cl, out| kernel.score(t, cl, out),
                FeasibilityCheck::Skip,
                scratch,
            )?;
            kernel.flush_to(scratch);
            Ok((formed.groups, formed.leftover, formed.stats))
        };

    // Scan attempt under the fault plan and a panic boundary. The outer
    // `Result` is a genuine input error (never retried); the inner one a
    // recoverable failure of this attempt.
    let attempt_shard = |i: usize,
                         attempt: u32,
                         scratch: &Recorder|
     -> Result<Result<ShardScan, ShardFailure>, CahdError> {
        match plan.shard_fault(i, attempt) {
            Some(ShardFault::Deadline) => return Ok(Err(ShardFailure::Deadline)),
            Some(ShardFault::Panic) | None => {}
        }
        let caught = catch_unwind(AssertUnwindSafe(|| {
            if plan.shard_fault(i, attempt) == Some(ShardFault::Panic) {
                // cahd-lint: allow(L003, reason = "deterministic fault injection, caught by the enclosing catch_unwind")
                panic!("injected fault: shard {i} attempt {attempt}");
            }
            scan_shard(i, kernel_mode, scratch)
        }));
        match caught {
            Ok(Ok(out)) => Ok(Ok(out)),
            Ok(Err(e)) => Err(e),
            Err(_payload) => Ok(Err(ShardFailure::Panicked)),
        }
    };

    let run_shard = |i: usize| -> Result<ShardOutcome, CahdError> {
        // cahd-lint: allow(L002, reason = "feeds the core.shard_scan_ns histogram; merge order of shard outputs is index-based, never time-based")
        let t_shard = Instant::now();
        let mut accepted = None;
        let mut recovered = false;
        // Attempt 0 plus one retry. Attempt counters go to a scratch
        // recorder so a failed attempt leaves no trace; counter adds
        // commute, so merged totals stay worker-scheduling-independent.
        for attempt in 0..2u32 {
            let scratch = if rec.is_enabled() {
                Recorder::new()
            } else {
                Recorder::disabled()
            };
            match attempt_shard(i, attempt, &scratch)? {
                Ok(out) => {
                    rec.merge_from(&scratch);
                    recovered = attempt > 0;
                    accepted = Some(out);
                    break;
                }
                Err(ShardFailure::Panicked | ShardFailure::Deadline) => {}
            }
        }
        let (groups, leftover, stats) = match accepted {
            Some(out) => out,
            None => {
                // Both attempts failed: recompute the slice on the
                // sequential reference path — the stamped sparse scan,
                // uncaught and never injected. Output-equivalence of the
                // kernel modes makes this byte-identical to a healthy
                // scan.
                let scratch = if rec.is_enabled() {
                    Recorder::new()
                } else {
                    Recorder::disabled()
                };
                let out = scan_shard(i, KernelMode::ForceSparse, &scratch)?;
                rec.merge_from(&scratch);
                recovered = true;
                out
            }
        };
        Ok(ShardOutcome {
            groups,
            leftover,
            stats,
            scan_ns: u64::try_from(t_shard.elapsed().as_nanos()).unwrap_or(u64::MAX),
            recovered,
        })
    };

    // Workers pull shard indices from a shared counter and store each
    // outcome in its shard's slot, so the merge below sees results in
    // shard order regardless of which worker computed what.
    let outcomes: Vec<Result<ShardOutcome, CahdError>> = if threads == 1 {
        (0..k).map(run_shard).collect()
    } else {
        let slots: Mutex<Vec<Option<Result<ShardOutcome, CahdError>>>> =
            Mutex::new((0..k).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= k {
                        break;
                    }
                    let outcome = run_shard(i);
                    // cahd-lint: allow(L003, reason = "poisoned only if another worker already panicked; re-panicking surfaces that original failure")
                    slots.lock().expect("shard worker poisoned the slots")[i] = Some(outcome);
                });
            }
        });
        slots
            .into_inner()
            // cahd-lint: allow(L003, reason = "poisoned only if a worker panicked; re-panicking surfaces that original failure")
            .expect("shard worker poisoned the slots")
            .into_iter()
            // cahd-lint: allow(L003, reason = "the fetch_add loop hands out every index in 0..k exactly once before the scope joins")
            .map(|slot| slot.expect("every shard index was claimed by a worker"))
            .collect()
    };

    // --- Deterministic merge: groups in shard order, leftovers pooled. ---
    let merge_span = rec.span("pipeline/group/merge");
    let mut scan_hist = Histogram::new();
    let mut member_groups: Vec<Vec<usize>> = Vec::new();
    let mut leftover: Vec<usize> = Vec::new();
    let mut stats = ShardedStats {
        shards: k,
        threads,
        shard_groups: Vec::with_capacity(k),
        ..ShardedStats::default()
    };
    for (outcome, &(lo, _)) in outcomes.into_iter().zip(&bounds) {
        let out = outcome?;
        scan_hist.observe(out.scan_ns);
        stats.recovered_shards += usize::from(out.recovered);
        stats.shard_groups.push(out.stats.groups_formed);
        stats.cahd.groups_formed += out.stats.groups_formed;
        stats.cahd.rollbacks += out.stats.rollbacks;
        stats.cahd.insufficient_candidates += out.stats.insufficient_candidates;
        stats.cahd.candidates_considered += out.stats.candidates_considered;
        member_groups.extend(
            out.groups
                .into_iter()
                .map(|g| g.into_iter().map(|t| t + lo).collect::<Vec<_>>()),
        );
        leftover.extend(out.leftover.into_iter().map(|t| t + lo));
    }

    // Re-validate the pooled final group against the global histogram and
    // dissolve regular groups (last formed first) until `H[s] * p <=
    // |leftover|` holds for every sensitive item. Global feasibility
    // guarantees termination: dissolving everything reproduces the whole
    // dataset, which satisfies the bound by the up-front check.
    let mut hist = vec![0usize; sensitive.len()];
    for &t in &leftover {
        for &r in &sens_of[t] {
            hist[r] += 1;
        }
    }
    while hist.iter().any(|&c| c * p > leftover.len()) {
        let g = member_groups
            .pop()
            // cahd-lint: allow(L003, reason = "global feasibility (checked at entry) guarantees the loop terminates before member_groups empties")
            .expect("global feasibility bounds the dissolve loop");
        stats.cahd.groups_formed -= 1;
        stats.merge_dissolved += 1;
        for &t in &g {
            for &r in &sens_of[t] {
                hist[r] += 1;
            }
        }
        leftover.extend(g);
    }
    leftover.sort_unstable();
    stats.cahd.fallback_group_size = leftover.len();
    rec.record_histogram("core.shard_scan_ns", &scan_hist);
    rec.add("core.merge_dissolved", stats.merge_dissolved as u64);
    rec.add("core.fallback_group_size", leftover.len() as u64);
    rec.add("core.recovered_shards", stats.recovered_shards as u64);
    drop(merge_span);

    let mut groups: Vec<AnonymizedGroup> = member_groups
        .iter()
        .map(|members| make_group(members, sensitive, &qid_of, &sens_of))
        .collect();
    if !leftover.is_empty() {
        groups.push(make_group(&leftover, sensitive, &qid_of, &sens_of));
    }
    stats.cahd.elapsed = t_start.elapsed();

    let published = PublishedDataset {
        n_items: data.n_items(),
        sensitive_items: sensitive.items().to_vec(),
        groups,
    };
    strict_invariant!(
        published.satisfies(p),
        "sharded CAHD invariant violated after merge"
    );
    strict_invariant_eq!(
        published.n_transactions(),
        n,
        "sharded CAHD must publish every transaction exactly once"
    );
    Ok((published, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cahd::cahd;
    use crate::verify::verify_published;

    fn blocky(n_blocks: usize, rows_per_block: usize) -> (TransactionSet, SensitiveSet) {
        // `n_blocks` disjoint QID blocks of `rows_per_block` rows each;
        // one sensitive occurrence per block. Universe: 4 QID items per
        // block plus one sensitive item per block at the end.
        let n_items = n_blocks * 4 + n_blocks;
        let mut rows = Vec::new();
        for b in 0..n_blocks {
            let base = (b * 4) as u32;
            for i in 0..rows_per_block {
                let mut row = vec![base + (i % 4) as u32, base + ((i + 1) % 4) as u32];
                if i == 0 {
                    row.push((n_blocks * 4 + b) as u32);
                }
                row.sort_unstable();
                rows.push(row);
            }
        }
        let sens: Vec<u32> = (0..n_blocks).map(|b| (n_blocks * 4 + b) as u32).collect();
        (
            TransactionSet::from_rows(&rows, n_items),
            SensitiveSet::new(sens, n_items),
        )
    }

    #[test]
    fn one_shard_is_byte_identical_to_sequential() {
        let (data, sens) = blocky(4, 8);
        let cfg = CahdConfig::new(3);
        let (seq, seq_stats) = cahd(&data, &sens, &cfg).unwrap();
        let (shd, stats) = cahd_sharded(&data, &sens, &cfg, &ParallelConfig::new(1, 8)).unwrap();
        assert_eq!(seq, shd);
        assert_eq!(stats.cahd.groups_formed, seq_stats.groups_formed);
        assert_eq!(stats.shards, 1);
    }

    #[test]
    fn sharded_release_verifies() {
        let (data, sens) = blocky(4, 8);
        for shards in [2usize, 3, 4, 7] {
            let (pub_, stats) = cahd_sharded(
                &data,
                &sens,
                &CahdConfig::new(3),
                &ParallelConfig::new(shards, 2),
            )
            .unwrap();
            verify_published(&data, &sens, &pub_, 3)
                .unwrap_or_else(|e| panic!("shards={shards}: {e}"));
            assert_eq!(stats.shard_groups.len(), shards.min(data.n_transactions()));
        }
    }

    #[test]
    fn output_is_thread_count_independent() {
        let (data, sens) = blocky(4, 8);
        let cfg = CahdConfig::new(3);
        let base = cahd_sharded(&data, &sens, &cfg, &ParallelConfig::new(4, 1))
            .unwrap()
            .0;
        for threads in [2usize, 3, 8] {
            let out = cahd_sharded(&data, &sens, &cfg, &ParallelConfig::new(4, threads))
                .unwrap()
                .0;
            assert_eq!(base, out, "threads={threads}");
        }
    }

    #[test]
    fn locally_infeasible_shard_is_repaired_by_merge() {
        // All occurrences of the sensitive item sit in the first 4 rows:
        // with 4 shards the first shard is locally infeasible (3 * 4 > 4)
        // while the dataset is globally feasible (3 * 4 <= 16). The merge
        // must still produce a valid degree-4 release.
        let mut rows: Vec<Vec<u32>> = Vec::new();
        for i in 0..16u32 {
            let mut row = vec![i % 4];
            if i < 3 {
                row.push(9);
            }
            rows.push(row);
        }
        let data = TransactionSet::from_rows(&rows, 10);
        let sens = SensitiveSet::new(vec![9], 10);
        let (pub_, stats) = cahd_sharded(
            &data,
            &sens,
            &CahdConfig::new(4),
            &ParallelConfig::new(4, 2),
        )
        .unwrap();
        verify_published(&data, &sens, &pub_, 4).unwrap();
        assert!(pub_.satisfies(4));
        // The final pooled group exists and absorbed the overloaded rows.
        assert!(stats.cahd.fallback_group_size >= 12, "{stats:?}");
    }

    #[test]
    fn merge_dissolves_groups_when_pooled_leftover_is_overloaded() {
        // Item 8 occurs 4 times, all in shard 0; p = 2 makes the dataset
        // exactly globally feasible (4 * 2 = 8 = n). Shard 0 forms no
        // groups (every pivot conflicts with every neighbor), shard 1
        // forms one around the single occurrence of item 9. The pooled
        // leftover of 6 rows then carries 4 occurrences of item 8
        // (4 * 2 > 6), forcing the merge to dissolve shard 1's group.
        let rows: Vec<Vec<u32>> = vec![
            vec![0, 8],
            vec![0, 8],
            vec![0, 8],
            vec![0, 8],
            vec![1, 9],
            vec![1],
            vec![1],
            vec![1],
        ];
        let data = TransactionSet::from_rows(&rows, 10);
        let sens = SensitiveSet::new(vec![8, 9], 10);
        let (pub_, stats) = cahd_sharded(
            &data,
            &sens,
            &CahdConfig::new(2),
            &ParallelConfig::new(2, 1),
        )
        .unwrap();
        verify_published(&data, &sens, &pub_, 2).unwrap();
        assert!(stats.merge_dissolved >= 1, "{stats:?}");
        assert_eq!(pub_.n_transactions(), 8);
    }

    #[test]
    fn more_shards_than_rows_is_capped() {
        let (data, sens) = blocky(2, 3);
        let (pub_, stats) = cahd_sharded(
            &data,
            &sens,
            &CahdConfig::new(2),
            &ParallelConfig::new(64, 64),
        )
        .unwrap();
        verify_published(&data, &sens, &pub_, 2).unwrap();
        assert!(stats.shards <= data.n_transactions());
    }

    #[test]
    fn errors_match_sequential_entry_point() {
        let (data, sens) = blocky(2, 4);
        let par = ParallelConfig::new(2, 2);
        assert!(matches!(
            cahd_sharded(&data, &sens, &CahdConfig::new(1), &par),
            Err(CahdError::InvalidPrivacyDegree(1))
        ));
        assert!(matches!(
            cahd_sharded(&data, &sens, &CahdConfig::new(2).with_alpha(0), &par),
            Err(CahdError::InvalidAlpha(0))
        ));
        let empty = TransactionSet::from_rows(&[], data.n_items());
        assert!(matches!(
            cahd_sharded(&empty, &sens, &CahdConfig::new(2), &par),
            Err(CahdError::EmptyDataset)
        ));
        // Globally infeasible: the sensitive item is too frequent.
        let dense = TransactionSet::from_rows(&[vec![0, 2], vec![1, 2], vec![1]], 3);
        let s2 = SensitiveSet::new(vec![2], 3);
        assert!(matches!(
            cahd_sharded(&dense, &s2, &CahdConfig::new(2), &par),
            Err(CahdError::Infeasible { item: 2, .. })
        ));
    }

    #[test]
    fn injected_faults_recover_byte_identically() {
        use crate::recovery::{silence_injected_panics, FaultPlan, ShardFault};
        silence_injected_panics();
        let (data, sens) = blocky(4, 8);
        let cfg = CahdConfig::new(3);
        let par = ParallelConfig::new(4, 2);
        let (clean, clean_stats) = cahd_sharded(&data, &sens, &cfg, &par).unwrap();
        assert_eq!(clean_stats.recovered_shards, 0);
        let plans = [
            // Retry recovers the slice.
            FaultPlan::none().with_shard_fault(1, ShardFault::Panic, 1),
            // Retry also fails -> sequential fallback.
            FaultPlan::none().with_shard_fault(2, ShardFault::Deadline, 2),
            // Several shards at once, mixed modes.
            FaultPlan::none()
                .with_shard_fault(0, ShardFault::Panic, 2)
                .with_shard_fault(3, ShardFault::Deadline, 1),
        ];
        for plan in &plans {
            let (pub_, stats) =
                cahd_sharded_recovering(&data, &sens, &cfg, &par, plan, &Recorder::disabled())
                    .unwrap();
            assert_eq!(pub_, clean, "release must not depend on faults: {plan:?}");
            assert_eq!(
                stats.recovered_shards,
                plan.expected_recovered_shards(stats.shards),
                "{plan:?}"
            );
        }
    }

    #[test]
    fn recovered_run_counters_match_clean_run() {
        use crate::recovery::{silence_injected_panics, FaultPlan, ShardFault};
        silence_injected_panics();
        let (data, sens) = blocky(4, 8);
        let cfg = CahdConfig::new(3);
        let par = ParallelConfig::new(4, 1);
        let clean_rec = Recorder::new();
        cahd_sharded_traced(&data, &sens, &cfg, &par, &clean_rec).unwrap();
        let clean = clean_rec.snapshot();

        // A panic-then-retry recovery must not double-count any engine or
        // kernel counter: the failed attempt's scratch recorder is dropped.
        let rec = Recorder::new();
        let plan = FaultPlan::none().with_shard_fault(1, ShardFault::Panic, 1);
        cahd_sharded_recovering(&data, &sens, &cfg, &par, &plan, &rec).unwrap();
        let trace = rec.snapshot();
        for c in &clean.counters {
            assert_eq!(
                trace.counter(&c.name),
                Some(c.value),
                "counter {} drifted across a recovery",
                c.name
            );
        }
        assert_eq!(trace.counter("core.recovered_shards"), Some(1));
        assert_eq!(clean.counter("core.recovered_shards"), None);
    }

    #[test]
    fn single_shard_fault_runs_the_recovery_machinery() {
        use crate::recovery::{silence_injected_panics, FaultPlan, ShardFault};
        silence_injected_panics();
        let (data, sens) = blocky(2, 6);
        let cfg = CahdConfig::new(2);
        let clean = cahd_sharded(&data, &sens, &cfg, &ParallelConfig::new(1, 1))
            .unwrap()
            .0;
        let plan = FaultPlan::none().with_shard_fault(0, ShardFault::Panic, 2);
        let (pub_, stats) = cahd_sharded_recovering(
            &data,
            &sens,
            &cfg,
            &ParallelConfig::new(1, 1),
            &plan,
            &Recorder::disabled(),
        )
        .unwrap();
        assert_eq!(stats.recovered_shards, 1);
        assert_eq!(pub_, clean);
    }

    #[test]
    fn genuine_errors_are_never_retried() {
        use crate::recovery::{FaultPlan, ShardFault};
        // Globally infeasible input: the error must surface even though a
        // fault (and therefore a retry budget) is planned.
        let dense = TransactionSet::from_rows(&[vec![0, 2], vec![1, 2], vec![1]], 3);
        let s2 = SensitiveSet::new(vec![2], 3);
        let plan = FaultPlan::none().with_shard_fault(0, ShardFault::Panic, 1);
        assert!(matches!(
            cahd_sharded_recovering(
                &dense,
                &s2,
                &CahdConfig::new(2),
                &ParallelConfig::new(2, 1),
                &plan,
                &Recorder::disabled(),
            ),
            Err(CahdError::Infeasible { item: 2, .. })
        ));
    }

    #[test]
    fn parallel_config_defaults_are_sequential() {
        assert!(ParallelConfig::default().is_sequential());
        assert!(ParallelConfig::sequential().is_sequential());
        assert!(!ParallelConfig::new(4, 2).is_sequential());
        assert_eq!(ParallelConfig::new(4, 2).shards, 4);
    }
}
