//! CAHD — Correlation-aware Anonymization of High-dimensional Data.
//!
//! This crate implements the primary contribution of the ICDE 2008 paper
//! "On the Anonymization of Sparse High-Dimensional Data":
//!
//! * the privacy model of Section II ([`group::AnonymizedGroup`],
//!   [`group::PublishedDataset`], privacy degree `p`),
//! * the CAHD greedy group-formation heuristic of Section IV
//!   ([`cahd::cahd`], Fig. 8 of the paper), including the
//!   one-occurrence-per-group candidate lists and the remaining-occurrence
//!   feasibility check,
//! * the end-to-end pipeline of band-matrix reorganization followed by
//!   group formation ([`pipeline::Anonymizer`]),
//! * an independent verifier ([`verify::verify_published`]) that checks a
//!   published dataset against the original data and a target privacy
//!   degree without trusting the algorithm that produced it,
//! * a count-valued (non-binary) variant ([`weighted::cahd_weighted`])
//!   realizing the paper's future-work direction.
//!
//! # Quick start
//!
//! ```
//! use cahd_core::pipeline::{Anonymizer, AnonymizerConfig};
//! use cahd_data::{SensitiveSet, TransactionSet};
//!
//! // Five transactions over items 0..6; items 4 and 5 are sensitive.
//! let data = TransactionSet::from_rows(
//!     &[
//!         vec![0, 1, 4],
//!         vec![0, 1],
//!         vec![2, 3, 5],
//!         vec![2, 3],
//!         vec![0, 2],
//!     ],
//!     6,
//! );
//! let sensitive = SensitiveSet::new(vec![4, 5], 6);
//! let result = Anonymizer::new(AnonymizerConfig::with_privacy_degree(2))
//!     .anonymize(&data, &sensitive)
//!     .unwrap();
//! assert!(result.published.satisfies(2));
//! ```

pub mod cahd;
pub mod checkpoint;
pub mod diversity;
pub mod error;
pub mod group;
pub mod histogram;
mod invariant;
pub mod kernel;
pub mod order;
pub mod pipeline;
pub mod recovery;
pub mod refine;
pub mod shard;
pub mod streaming;
pub mod suppress;
pub mod verify;
pub mod weighted;

pub use cahd::{cahd, cahd_traced, CahdConfig, CahdStats};
pub use checkpoint::{StreamingCheckpoint, CHECKPOINT_VERSION};
pub use diversity::{privacy_report, PrivacyReport};
pub use error::CahdError;
pub use group::{AnonymizedGroup, PublishedDataset};
pub use kernel::{KernelMode, KernelStats, MinCountScorer, QidOverlapScorer, SimilarityKernel};
pub use pipeline::{Anonymizer, AnonymizerConfig, PipelineResult, RobustResult};
pub use recovery::{FaultPlan, InputPolicy, RecoveryConfig, ShardFault};
pub use refine::{intra_group_overlap, refine_groups, RefineStats};
pub use shard::{
    cahd_sharded, cahd_sharded_recovering, cahd_sharded_traced, ParallelConfig, ShardedStats,
};
pub use streaming::{ReleaseChunk, StreamingAnonymizer};
pub use suppress::{enforce_feasibility, SuppressionReport};
pub use verify::{verify_all, verify_published, VerificationError};
pub use weighted::{cahd_weighted, verify_weighted, WeightedPublished, WeightedSimilarity};
