//! Suppression-based feasibility repair.
//!
//! A privacy degree `p` is achievable only when `support(s) * p <= n` for
//! every sensitive item `s` (Section IV's group-validation argument). Real
//! datasets can violate this for a handful of very frequent sensitive
//! items. Rather than failing, a data owner can *suppress* — remove from
//! the data — just enough occurrences of the offending items to restore
//! feasibility; suppression is the classical complement to generalization
//! (Sweeney, cited as \[7\]) and keeps the release truthful (it only omits
//! facts, never invents them).
//!
//! [`enforce_feasibility`] removes the minimum number of occurrences,
//! choosing victims deterministically from a seed, and reports exactly what
//! was dropped so the owner can publish the suppression counts alongside
//! the release (as Table-style metadata).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cahd_data::{ItemId, SensitiveSet, TransactionSet};

use crate::invariant::{strict_invariant, strict_invariant_eq};

/// What [`enforce_feasibility`] removed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SuppressionReport {
    /// `(sensitive item, occurrences removed)`, sorted by item.
    pub suppressed: Vec<(ItemId, usize)>,
}

impl SuppressionReport {
    /// Total occurrences removed.
    pub fn total(&self) -> usize {
        self.suppressed.iter().map(|&(_, c)| c).sum()
    }

    /// Whether nothing was suppressed.
    pub fn is_empty(&self) -> bool {
        self.suppressed.is_empty()
    }
}

/// Returns a copy of `data` in which every sensitive item's support
/// satisfies `support * p <= n`, by removing occurrences of over-frequent
/// sensitive items from a random (seeded) subset of their transactions.
/// QID items are never touched; transaction count is unchanged.
pub fn enforce_feasibility(
    data: &TransactionSet,
    sensitive: &SensitiveSet,
    p: usize,
    seed: u64,
) -> (TransactionSet, SuppressionReport) {
    assert!(p >= 1, "p must be positive");
    let n = data.n_transactions();
    let budget = n / p; // max allowed support per sensitive item
    let counts = sensitive.occurrence_counts(data);

    let mut to_remove: Vec<(ItemId, usize)> = Vec::new();
    for (r, &c) in counts.iter().enumerate() {
        if c > budget {
            to_remove.push((sensitive.items()[r], c - budget));
        }
    }
    if to_remove.is_empty() {
        return (data.clone(), SuppressionReport::default());
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let inv = data.inverted_index();
    // For each offending item, pick the victim transactions.
    let mut drop_item_from: Vec<Vec<bool>> = Vec::new(); // parallel to to_remove
    for &(item, excess) in &to_remove {
        let holders = inv.row(item as usize);
        let mut idx: Vec<usize> = (0..holders.len()).collect();
        for i in 0..excess {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        let mut drop = vec![false; holders.len()];
        for &k in &idx[..excess] {
            drop[k] = true;
        }
        drop_item_from.push(drop);
    }

    // Rebuild rows.
    let mut rows: Vec<Vec<ItemId>> = data.iter().map(<[u32]>::to_vec).collect();
    for (ri, &(item, _)) in to_remove.iter().enumerate() {
        let holders = inv.row(item as usize);
        for (k, &t) in holders.iter().enumerate() {
            if drop_item_from[ri][k] {
                rows[t as usize].retain(|&i| i != item);
            }
        }
    }
    let repaired = TransactionSet::from_rows(&rows, data.n_items());
    strict_invariant_eq!(
        repaired.n_transactions(),
        n,
        "suppression must not drop transactions"
    );
    strict_invariant!(
        sensitive
            .occurrence_counts(&repaired)
            .iter()
            .all(|&c| c <= budget),
        "suppression must restore feasibility for every sensitive item"
    );
    let report = SuppressionReport {
        suppressed: to_remove,
    };
    (repaired, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cahd::{cahd, CahdConfig};
    use crate::verify::verify_published;

    fn overloaded() -> (TransactionSet, SensitiveSet) {
        // Item 9 sensitive with support 6 of n=10: infeasible for p >= 2.
        let rows: Vec<Vec<u32>> = (0..10u32)
            .map(|i| if i < 6 { vec![i % 3, 9] } else { vec![i % 3] })
            .collect();
        (
            TransactionSet::from_rows(&rows, 10),
            SensitiveSet::new(vec![9], 10),
        )
    }

    #[test]
    fn removes_exactly_the_excess() {
        let (data, sens) = overloaded();
        let (fixed, report) = enforce_feasibility(&data, &sens, 2, 7);
        assert_eq!(report.suppressed, vec![(9, 1)]); // 6 -> 5 = 10/2
        assert_eq!(report.total(), 1);
        assert_eq!(sens.occurrence_counts(&fixed), vec![5]);
        assert_eq!(fixed.n_transactions(), 10);
    }

    #[test]
    fn feasible_input_untouched() {
        let (data, sens) = overloaded();
        let (fixed, report) = enforce_feasibility(&data, &sens, 1, 7);
        assert!(report.is_empty());
        assert_eq!(fixed, data);
    }

    #[test]
    fn qid_items_preserved() {
        let (data, sens) = overloaded();
        let (fixed, _) = enforce_feasibility(&data, &sens, 2, 7);
        for t in 0..10 {
            let orig_qid: Vec<u32> = data
                .transaction(t)
                .iter()
                .copied()
                .filter(|&i| !sens.contains(i))
                .collect();
            let new_qid: Vec<u32> = fixed
                .transaction(t)
                .iter()
                .copied()
                .filter(|&i| !sens.contains(i))
                .collect();
            assert_eq!(orig_qid, new_qid, "transaction {t}");
        }
    }

    #[test]
    fn repaired_data_anonymizes() {
        let (data, sens) = overloaded();
        assert!(cahd(&data, &sens, &CahdConfig::new(2)).is_err());
        let (fixed, _) = enforce_feasibility(&data, &sens, 2, 7);
        let (published, _) = cahd(&fixed, &sens, &CahdConfig::new(2)).unwrap();
        verify_published(&fixed, &sens, &published, 2).unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        let (data, sens) = overloaded();
        let (a, _) = enforce_feasibility(&data, &sens, 2, 1);
        let (b, _) = enforce_feasibility(&data, &sens, 2, 1);
        let (c, _) = enforce_feasibility(&data, &sens, 2, 2);
        assert_eq!(a, b);
        assert_ne!(a, c); // different victims (6 choose 1 leaves room)
    }

    #[test]
    fn multiple_offenders() {
        let rows: Vec<Vec<u32>> = (0..8u32)
            .map(|i| match i {
                0..=5 => vec![0, 8, 9],
                _ => vec![1],
            })
            .collect();
        let data = TransactionSet::from_rows(&rows, 10);
        let sens = SensitiveSet::new(vec![8, 9], 10);
        let (fixed, report) = enforce_feasibility(&data, &sens, 4, 3);
        // budget = 2 each; both had 6 -> remove 4 each.
        assert_eq!(report.suppressed, vec![(8, 4), (9, 4)]);
        assert_eq!(sens.occurrence_counts(&fixed), vec![2, 2]);
    }
}
