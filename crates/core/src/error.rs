//! Error types for the anonymization pipeline.

use std::fmt;

/// Errors reported by the CAHD algorithm and the pipeline around it.
///
/// # Reporting precedence
///
/// When an input is degenerate in several ways at once, every entry point
/// ([`crate::cahd::cahd`], [`crate::shard::cahd_sharded`],
/// [`crate::weighted::cahd_weighted`], and the traced variants) reports
/// errors in this fixed order:
///
/// 1. **parameter errors** — [`InvalidPrivacyDegree`] before
///    [`InvalidAlpha`] (both from [`crate::CahdConfig::validate`]); a
///    caller always learns about a bad config first, even on an empty
///    dataset;
/// 2. [`UniverseMismatch`] — the dataset and sensitive set disagree on the
///    item universe, so no shape question about the data is meaningful;
/// 3. [`EmptyDataset`];
/// 4. [`Infeasible`] — parameters and shapes are fine, but no degree-`p`
///    partition exists.
///
/// So `p == 0` on an empty dataset yields [`InvalidPrivacyDegree`], not
/// [`EmptyDataset`] — the precedence test in this module pins it.
///
/// The ingestion and persistence errors ([`CorruptRow`],
/// [`CorruptCheckpoint`], [`StreamFinished`]) are raised *before* the
/// pipeline runs — by the robust entry points and the streaming layer —
/// so they precede everything above when they apply at all.
///
/// [`InvalidPrivacyDegree`]: CahdError::InvalidPrivacyDegree
/// [`InvalidAlpha`]: CahdError::InvalidAlpha
/// [`UniverseMismatch`]: CahdError::UniverseMismatch
/// [`EmptyDataset`]: CahdError::EmptyDataset
/// [`Infeasible`]: CahdError::Infeasible
/// [`CorruptRow`]: CahdError::CorruptRow
/// [`CorruptCheckpoint`]: CahdError::CorruptCheckpoint
/// [`StreamFinished`]: CahdError::StreamFinished
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CahdError {
    /// No partitioning with the requested privacy degree exists: some
    /// sensitive item is too frequent (`support * p > n`).
    Infeasible {
        /// The offending sensitive item id.
        item: u32,
        /// Its number of occurrences.
        support: usize,
        /// The requested privacy degree.
        p: usize,
        /// Total number of transactions.
        n: usize,
    },
    /// The requested privacy degree is degenerate (`p < 2`).
    InvalidPrivacyDegree(usize),
    /// The candidate-list width parameter is degenerate (`alpha < 1`).
    InvalidAlpha(usize),
    /// The dataset contains no transactions.
    EmptyDataset,
    /// The sensitive set was built over a different item universe than the
    /// dataset.
    UniverseMismatch {
        /// Items in the dataset.
        data_items: usize,
        /// Items in the sensitive set.
        sensitive_items: usize,
    },
    /// An input row failed validation under
    /// [`crate::recovery::InputPolicy::Strict`] (out-of-range item or
    /// duplicate item id).
    CorruptRow {
        /// Index of the offending row in the submitted batch.
        row: usize,
        /// Human-readable description of what is wrong with the row.
        reason: String,
    },
    /// A streaming checkpoint failed validation on load (bad digest,
    /// inconsistent fields, or wrong format version). Resume fails closed:
    /// nothing from a corrupt checkpoint is ever trusted.
    CorruptCheckpoint {
        /// Human-readable description of the failed validation.
        reason: String,
    },
    /// [`crate::streaming::StreamingAnonymizer::push`] was called after
    /// [`crate::streaming::StreamingAnonymizer::finish`]; the stream is
    /// closed and its final chunk may already be published.
    StreamFinished,
}

impl fmt::Display for CahdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CahdError::Infeasible {
                item,
                support,
                p,
                n,
            } => write!(
                f,
                "no solution with privacy degree {p}: sensitive item {item} occurs {support} \
                 times in {n} transactions ({support} * {p} > {n})"
            ),
            CahdError::InvalidPrivacyDegree(p) => {
                write!(f, "privacy degree must be >= 2, got {p}")
            }
            CahdError::InvalidAlpha(a) => write!(f, "alpha must be >= 1, got {a}"),
            CahdError::EmptyDataset => write!(f, "dataset contains no transactions"),
            CahdError::UniverseMismatch {
                data_items,
                sensitive_items,
            } => write!(
                f,
                "item universe mismatch: dataset has {data_items} items, sensitive set built \
                 over {sensitive_items}"
            ),
            CahdError::CorruptRow { row, reason } => {
                write!(f, "corrupt input row {row}: {reason}")
            }
            CahdError::CorruptCheckpoint { reason } => {
                write!(f, "corrupt checkpoint: {reason}")
            }
            CahdError::StreamFinished => {
                write!(
                    f,
                    "stream already finished: push after finish is not allowed"
                )
            }
        }
    }
}

impl std::error::Error for CahdError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cahd::{cahd, CahdConfig};
    use crate::shard::{cahd_sharded, ParallelConfig};
    use cahd_data::{SensitiveSet, TransactionSet};

    /// Pins the documented reporting precedence on inputs that are
    /// degenerate in several ways at once.
    #[test]
    fn parameter_errors_precede_dataset_shape_errors() {
        let empty = TransactionSet::from_rows(&[], 3);
        let sens = SensitiveSet::new(vec![2], 3);
        let mismatched = SensitiveSet::new(vec![1], 2);

        // p == 0 AND alpha == 0 AND empty dataset: p wins, then alpha.
        let bad_both = CahdConfig::new(0).with_alpha(0);
        assert_eq!(
            cahd(&empty, &sens, &bad_both),
            Err(CahdError::InvalidPrivacyDegree(0))
        );
        assert_eq!(
            cahd(&empty, &sens, &CahdConfig::new(2).with_alpha(0)),
            Err(CahdError::InvalidAlpha(0))
        );
        // Universe mismatch AND empty dataset: mismatch wins.
        assert_eq!(
            cahd(&empty, &mismatched, &CahdConfig::new(2)),
            Err(CahdError::UniverseMismatch {
                data_items: 3,
                sensitive_items: 2,
            })
        );
        // Only then is the empty dataset itself reported.
        assert_eq!(
            cahd(&empty, &sens, &CahdConfig::new(2)),
            Err(CahdError::EmptyDataset)
        );
        // The sharded entry point orders identically.
        let par = ParallelConfig::new(4, 2);
        assert_eq!(
            cahd_sharded(&empty, &sens, &bad_both, &par),
            Err(CahdError::InvalidPrivacyDegree(0))
        );
        assert_eq!(
            cahd_sharded(&empty, &mismatched, &CahdConfig::new(2), &par),
            Err(CahdError::UniverseMismatch {
                data_items: 3,
                sensitive_items: 2,
            })
        );
    }

    #[test]
    fn display_messages() {
        let e = CahdError::Infeasible {
            item: 3,
            support: 40,
            p: 10,
            n: 100,
        };
        let s = e.to_string();
        assert!(s.contains("item 3"));
        assert!(s.contains("40 * 10 > 100"));
        assert!(CahdError::InvalidPrivacyDegree(1)
            .to_string()
            .contains(">= 2"));
        assert!(CahdError::EmptyDataset
            .to_string()
            .contains("no transactions"));
    }
}
