//! Error types for the anonymization pipeline.

use std::fmt;

/// Errors reported by the CAHD algorithm and the pipeline around it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CahdError {
    /// No partitioning with the requested privacy degree exists: some
    /// sensitive item is too frequent (`support * p > n`).
    Infeasible {
        /// The offending sensitive item id.
        item: u32,
        /// Its number of occurrences.
        support: usize,
        /// The requested privacy degree.
        p: usize,
        /// Total number of transactions.
        n: usize,
    },
    /// The requested privacy degree is degenerate (`p < 2`).
    InvalidPrivacyDegree(usize),
    /// The candidate-list width parameter is degenerate (`alpha < 1`).
    InvalidAlpha(usize),
    /// The dataset contains no transactions.
    EmptyDataset,
    /// The sensitive set was built over a different item universe than the
    /// dataset.
    UniverseMismatch {
        /// Items in the dataset.
        data_items: usize,
        /// Items in the sensitive set.
        sensitive_items: usize,
    },
}

impl fmt::Display for CahdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CahdError::Infeasible {
                item,
                support,
                p,
                n,
            } => write!(
                f,
                "no solution with privacy degree {p}: sensitive item {item} occurs {support} \
                 times in {n} transactions ({support} * {p} > {n})"
            ),
            CahdError::InvalidPrivacyDegree(p) => {
                write!(f, "privacy degree must be >= 2, got {p}")
            }
            CahdError::InvalidAlpha(a) => write!(f, "alpha must be >= 1, got {a}"),
            CahdError::EmptyDataset => write!(f, "dataset contains no transactions"),
            CahdError::UniverseMismatch {
                data_items,
                sensitive_items,
            } => write!(
                f,
                "item universe mismatch: dataset has {data_items} items, sensitive set built \
                 over {sensitive_items}"
            ),
        }
    }
}

impl std::error::Error for CahdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CahdError::Infeasible {
            item: 3,
            support: 40,
            p: 10,
            n: 100,
        };
        let s = e.to_string();
        assert!(s.contains("item 3"));
        assert!(s.contains("40 * 10 > 100"));
        assert!(CahdError::InvalidPrivacyDegree(1)
            .to_string()
            .contains(">= 2"));
        assert!(CahdError::EmptyDataset
            .to_string()
            .contains("no transactions"));
    }
}
