//! Independent verification of a published dataset.
//!
//! [`verify_published`] re-derives every property a release must have from
//! the original data, without trusting the algorithm that produced it:
//! coverage (every transaction in exactly one group), faithful QID
//! publication, correct sensitive summaries, and the privacy degree.
//! Both CAHD and the baselines are checked through this single gate in the
//! test suites and the experiment harness.

use std::fmt;

use cahd_data::{SensitiveSet, TransactionSet};

use crate::group::PublishedDataset;

/// A violated release property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerificationError {
    /// A transaction appears in zero or multiple groups.
    Coverage {
        /// The transaction index.
        transaction: usize,
        /// How many groups contain it.
        times_seen: usize,
    },
    /// The number of published transactions differs from the original.
    Cardinality {
        /// Original transaction count.
        expected: usize,
        /// Published transaction count.
        actual: usize,
    },
    /// A published QID row does not match the original transaction's QID
    /// items.
    QidMismatch {
        /// Group index.
        group: usize,
        /// Member position within the group.
        member: usize,
    },
    /// A group's sensitive summary does not match its members.
    SensitiveCountMismatch {
        /// Group index.
        group: usize,
    },
    /// A group violates the privacy degree.
    PrivacyViolation {
        /// Group index.
        group: usize,
        /// The group's actual degree (None = unbounded, can't happen here).
        degree: Option<usize>,
        /// The required degree.
        required: usize,
    },
    /// The release's sensitive-item list differs from the sensitive set.
    SensitiveItemsMismatch,
}

impl fmt::Display for VerificationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerificationError::Coverage {
                transaction,
                times_seen,
            } => write!(f, "transaction {transaction} appears in {times_seen} groups"),
            VerificationError::Cardinality { expected, actual } => {
                write!(f, "published {actual} transactions, expected {expected}")
            }
            VerificationError::QidMismatch { group, member } => {
                write!(f, "group {group}, member {member}: QID row mismatch")
            }
            VerificationError::SensitiveCountMismatch { group } => {
                write!(f, "group {group}: sensitive summary mismatch")
            }
            VerificationError::PrivacyViolation {
                group,
                degree,
                required,
            } => write!(
                f,
                "group {group} has privacy degree {degree:?}, required {required}"
            ),
            VerificationError::SensitiveItemsMismatch => {
                write!(f, "published sensitive-item list mismatch")
            }
        }
    }
}

impl std::error::Error for VerificationError {}

/// Verifies `published` against the original `data`, the sensitive set and
/// a required privacy degree `p`. Returns the first violation found.
pub fn verify_published(
    data: &TransactionSet,
    sensitive: &SensitiveSet,
    published: &PublishedDataset,
    p: usize,
) -> Result<(), VerificationError> {
    if published.sensitive_items != sensitive.items() {
        return Err(VerificationError::SensitiveItemsMismatch);
    }
    let n = data.n_transactions();
    if published.n_transactions() != n {
        return Err(VerificationError::Cardinality {
            expected: n,
            actual: published.n_transactions(),
        });
    }

    // Coverage.
    let mut seen = vec![0usize; n];
    for g in &published.groups {
        for &mt in &g.members {
            if (mt as usize) < n {
                seen[mt as usize] += 1;
            } else {
                return Err(VerificationError::Coverage {
                    transaction: mt as usize,
                    times_seen: 0,
                });
            }
        }
    }
    for (t, &c) in seen.iter().enumerate() {
        if c != 1 {
            return Err(VerificationError::Coverage {
                transaction: t,
                times_seen: c,
            });
        }
    }

    for (gi, g) in published.groups.iter().enumerate() {
        // QID rows and sensitive counts must match the members.
        let mut counts: Vec<u32> = vec![0; sensitive.len()];
        for (k, &mt) in g.members.iter().enumerate() {
            let (qid, sens_ranks) = sensitive.split_transaction(data.transaction(mt as usize));
            if g.qid_rows.get(k) != Some(&qid) {
                return Err(VerificationError::QidMismatch {
                    group: gi,
                    member: k,
                });
            }
            for r in sens_ranks {
                counts[r] += 1;
            }
        }
        let expected: Vec<(u32, u32)> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(r, &c)| (sensitive.items()[r], c))
            .collect();
        if expected != g.sensitive_counts {
            return Err(VerificationError::SensitiveCountMismatch { group: gi });
        }
        // Privacy.
        if !g.satisfies(p) {
            return Err(VerificationError::PrivacyViolation {
                group: gi,
                degree: g.privacy_degree(),
                required: p,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cahd::{cahd, CahdConfig};
    use crate::group::AnonymizedGroup;

    fn setup() -> (TransactionSet, SensitiveSet, PublishedDataset) {
        let data = TransactionSet::from_rows(
            &[vec![0, 1, 4], vec![0, 1], vec![2, 3], vec![2, 3, 5]],
            6,
        );
        let sens = SensitiveSet::new(vec![4, 5], 6);
        let (pub_, _) = cahd(&data, &sens, &CahdConfig::new(2)).unwrap();
        (data, sens, pub_)
    }

    #[test]
    fn valid_release_passes() {
        let (data, sens, pub_) = setup();
        verify_published(&data, &sens, &pub_, 2).unwrap();
    }

    #[test]
    fn detects_privacy_violation() {
        let (data, sens, pub_) = setup();
        let err = verify_published(&data, &sens, &pub_, 10).unwrap_err();
        assert!(matches!(err, VerificationError::PrivacyViolation { .. }));
    }

    #[test]
    fn detects_missing_transaction() {
        let (data, sens, mut pub_) = setup();
        pub_.groups[0].members[0] = pub_.groups[0].members[1];
        let err = verify_published(&data, &sens, &pub_, 2).unwrap_err();
        assert!(matches!(err, VerificationError::Coverage { .. }));
    }

    #[test]
    fn detects_tampered_qid() {
        let (data, sens, mut pub_) = setup();
        pub_.groups[0].qid_rows[0] = vec![5];
        let err = verify_published(&data, &sens, &pub_, 2).unwrap_err();
        assert!(matches!(err, VerificationError::QidMismatch { group: 0, member: 0 }));
    }

    #[test]
    fn detects_wrong_sensitive_summary() {
        let (data, sens, mut pub_) = setup();
        // Tamper with whichever group has a sensitive count.
        let gi = pub_
            .groups
            .iter()
            .position(|g| !g.sensitive_counts.is_empty())
            .unwrap();
        pub_.groups[gi].sensitive_counts[0].1 += 1;
        let err = verify_published(&data, &sens, &pub_, 2).unwrap_err();
        assert!(matches!(err, VerificationError::SensitiveCountMismatch { .. }));
    }

    #[test]
    fn detects_cardinality_mismatch() {
        let (data, sens, mut pub_) = setup();
        pub_.groups.push(AnonymizedGroup {
            members: vec![0],
            qid_rows: vec![vec![0, 1]],
            sensitive_counts: vec![],
        });
        let err = verify_published(&data, &sens, &pub_, 2).unwrap_err();
        assert!(matches!(err, VerificationError::Cardinality { .. }));
    }

    #[test]
    fn detects_sensitive_list_mismatch() {
        let (data, sens, mut pub_) = setup();
        pub_.sensitive_items = vec![1];
        let err = verify_published(&data, &sens, &pub_, 2).unwrap_err();
        assert_eq!(err, VerificationError::SensitiveItemsMismatch);
    }

    #[test]
    fn error_messages_render() {
        let e = VerificationError::PrivacyViolation {
            group: 1,
            degree: Some(2),
            required: 4,
        };
        assert!(e.to_string().contains("group 1"));
    }
}
