//! Independent verification of a published dataset.
//!
//! [`verify_all`] re-derives every property a release must have from the
//! original data, without trusting the algorithm that produced it:
//! coverage (every transaction in exactly one group), faithful QID
//! publication, correct sensitive summaries, and the privacy degree — and
//! reports *every* violation it finds. [`verify_published`] is the
//! fail-fast wrapper returning only the first violation; both CAHD and the
//! baselines are checked through this single gate in the test suites and
//! the experiment harness, and the `cahd-check` pass framework maps each
//! [`VerificationError`] to a stable diagnostic code.

use std::fmt;

use cahd_data::{SensitiveSet, TransactionSet};

use crate::group::PublishedDataset;

/// A violated release property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerificationError {
    /// A transaction appears in zero or multiple groups.
    Coverage {
        /// The transaction index.
        transaction: usize,
        /// How many groups contain it.
        times_seen: usize,
    },
    /// A group references a transaction index outside the original data.
    MemberOutOfRange {
        /// Group index.
        group: usize,
        /// The out-of-range transaction index.
        transaction: usize,
        /// Number of transactions in the original data.
        n_transactions: usize,
    },
    /// The number of published transactions differs from the original.
    Cardinality {
        /// Original transaction count.
        expected: usize,
        /// Published transaction count.
        actual: usize,
    },
    /// A published QID row does not match the original transaction's QID
    /// items.
    QidMismatch {
        /// Group index.
        group: usize,
        /// Member position within the group.
        member: usize,
    },
    /// A group's sensitive summary does not match its members.
    SensitiveCountMismatch {
        /// Group index.
        group: usize,
    },
    /// A group violates the privacy degree.
    PrivacyViolation {
        /// Group index.
        group: usize,
        /// The group's actual degree (None = unbounded, can't happen here).
        degree: Option<usize>,
        /// The required degree.
        required: usize,
    },
    /// The release's sensitive-item list differs from the sensitive set.
    SensitiveItemsMismatch,
}

impl fmt::Display for VerificationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerificationError::Coverage {
                transaction,
                times_seen,
            } => write!(f, "transaction {transaction} appears in {times_seen} groups"),
            VerificationError::MemberOutOfRange {
                group,
                transaction,
                n_transactions,
            } => write!(
                f,
                "group {group} references transaction {transaction}, but the data has only {n_transactions}"
            ),
            VerificationError::Cardinality { expected, actual } => {
                write!(f, "published {actual} transactions, expected {expected}")
            }
            VerificationError::QidMismatch { group, member } => {
                write!(f, "group {group}, member {member}: QID row mismatch")
            }
            VerificationError::SensitiveCountMismatch { group } => {
                write!(f, "group {group}: sensitive summary mismatch")
            }
            VerificationError::PrivacyViolation {
                group,
                degree,
                required,
            } => write!(
                f,
                "group {group} has privacy degree {degree:?}, required {required}"
            ),
            VerificationError::SensitiveItemsMismatch => {
                write!(f, "published sensitive-item list mismatch")
            }
        }
    }
}

impl std::error::Error for VerificationError {}

/// Verifies `published` against the original `data`, the sensitive set and
/// a required privacy degree `p`, collecting **every** violation instead of
/// stopping at the first. An empty vector means the release is valid.
pub fn verify_all(
    data: &TransactionSet,
    sensitive: &SensitiveSet,
    published: &PublishedDataset,
    p: usize,
) -> Vec<VerificationError> {
    let mut errors = Vec::new();
    if published.sensitive_items != sensitive.items() {
        errors.push(VerificationError::SensitiveItemsMismatch);
    }
    let n = data.n_transactions();
    if published.n_transactions() != n {
        errors.push(VerificationError::Cardinality {
            expected: n,
            actual: published.n_transactions(),
        });
    }

    // Coverage: every original transaction in exactly one group, and no
    // group referencing a transaction outside the data.
    let mut seen = vec![0usize; n];
    for (gi, g) in published.groups.iter().enumerate() {
        for &mt in &g.members {
            if (mt as usize) < n {
                seen[mt as usize] += 1;
            } else {
                errors.push(VerificationError::MemberOutOfRange {
                    group: gi,
                    transaction: mt as usize,
                    n_transactions: n,
                });
            }
        }
    }
    for (t, &c) in seen.iter().enumerate() {
        if c != 1 {
            errors.push(VerificationError::Coverage {
                transaction: t,
                times_seen: c,
            });
        }
    }

    for (gi, g) in published.groups.iter().enumerate() {
        // QID rows and sensitive counts must match the members.
        // Out-of-range members were already reported above; skipping them
        // here keeps the remaining checks well-defined.
        let mut counts: Vec<u32> = vec![0; sensitive.len()];
        let mut summary_defined = true;
        for (k, &mt) in g.members.iter().enumerate() {
            if (mt as usize) >= n {
                summary_defined = false;
                continue;
            }
            let (qid, sens_ranks) = sensitive.split_transaction(data.transaction(mt as usize));
            if g.qid_rows.get(k) != Some(&qid) {
                errors.push(VerificationError::QidMismatch {
                    group: gi,
                    member: k,
                });
            }
            for r in sens_ranks {
                counts[r] += 1;
            }
        }
        if summary_defined {
            let expected: Vec<(u32, u32)> = counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(r, &c)| (sensitive.items()[r], c))
                .collect();
            if expected != g.sensitive_counts {
                errors.push(VerificationError::SensitiveCountMismatch { group: gi });
            }
        }
        // Privacy.
        if !g.satisfies(p) {
            errors.push(VerificationError::PrivacyViolation {
                group: gi,
                degree: g.privacy_degree(),
                required: p,
            });
        }
    }
    errors
}

/// Fail-fast wrapper over [`verify_all`]: returns the first violation.
pub fn verify_published(
    data: &TransactionSet,
    sensitive: &SensitiveSet,
    published: &PublishedDataset,
    p: usize,
) -> Result<(), VerificationError> {
    match verify_all(data, sensitive, published, p).into_iter().next() {
        Some(err) => Err(err),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cahd::{cahd, CahdConfig};
    use crate::group::AnonymizedGroup;

    fn setup() -> (TransactionSet, SensitiveSet, PublishedDataset) {
        let data =
            TransactionSet::from_rows(&[vec![0, 1, 4], vec![0, 1], vec![2, 3], vec![2, 3, 5]], 6);
        let sens = SensitiveSet::new(vec![4, 5], 6);
        let (pub_, _) = cahd(&data, &sens, &CahdConfig::new(2)).unwrap();
        (data, sens, pub_)
    }

    #[test]
    fn valid_release_passes() {
        let (data, sens, pub_) = setup();
        verify_published(&data, &sens, &pub_, 2).unwrap();
    }

    #[test]
    fn detects_privacy_violation() {
        let (data, sens, pub_) = setup();
        let err = verify_published(&data, &sens, &pub_, 10).unwrap_err();
        assert!(matches!(err, VerificationError::PrivacyViolation { .. }));
    }

    #[test]
    fn detects_missing_transaction() {
        let (data, sens, mut pub_) = setup();
        pub_.groups[0].members[0] = pub_.groups[0].members[1];
        let err = verify_published(&data, &sens, &pub_, 2).unwrap_err();
        assert!(matches!(err, VerificationError::Coverage { .. }));
    }

    #[test]
    fn detects_tampered_qid() {
        let (data, sens, mut pub_) = setup();
        pub_.groups[0].qid_rows[0] = vec![5];
        let err = verify_published(&data, &sens, &pub_, 2).unwrap_err();
        assert!(matches!(
            err,
            VerificationError::QidMismatch {
                group: 0,
                member: 0
            }
        ));
    }

    #[test]
    fn detects_wrong_sensitive_summary() {
        let (data, sens, mut pub_) = setup();
        // Tamper with whichever group has a sensitive count.
        let gi = pub_
            .groups
            .iter()
            .position(|g| !g.sensitive_counts.is_empty())
            .unwrap();
        pub_.groups[gi].sensitive_counts[0].1 += 1;
        let err = verify_published(&data, &sens, &pub_, 2).unwrap_err();
        assert!(matches!(
            err,
            VerificationError::SensitiveCountMismatch { .. }
        ));
    }

    #[test]
    fn detects_cardinality_mismatch() {
        let (data, sens, mut pub_) = setup();
        pub_.groups.push(AnonymizedGroup {
            members: vec![0],
            qid_rows: vec![vec![0, 1]],
            sensitive_counts: vec![],
        });
        let err = verify_published(&data, &sens, &pub_, 2).unwrap_err();
        assert!(matches!(err, VerificationError::Cardinality { .. }));
    }

    #[test]
    fn detects_sensitive_list_mismatch() {
        let (data, sens, mut pub_) = setup();
        pub_.sensitive_items = vec![1];
        let err = verify_published(&data, &sens, &pub_, 2).unwrap_err();
        assert_eq!(err, VerificationError::SensitiveItemsMismatch);
    }

    #[test]
    fn detects_member_out_of_range() {
        let (data, sens, mut pub_) = setup();
        pub_.groups[0].members[0] = 999;
        let err = verify_published(&data, &sens, &pub_, 2).unwrap_err();
        assert!(matches!(
            err,
            VerificationError::MemberOutOfRange {
                transaction: 999,
                ..
            }
        ));
        // Distinct from a plain coverage error: the dropped original member
        // is *also* reported, as uncovered.
        let all = verify_all(&data, &sens, &pub_, 2);
        assert!(all
            .iter()
            .any(|e| matches!(e, VerificationError::Coverage { times_seen: 0, .. })));
    }

    #[test]
    fn verify_all_collects_multiple_violations() {
        let (data, sens, mut pub_) = setup();
        pub_.sensitive_items = vec![1];
        pub_.groups[0].qid_rows[0] = vec![5];
        let all = verify_all(&data, &sens, &pub_, 2);
        assert!(all.len() >= 2, "expected several violations, got {all:?}");
        assert!(all.contains(&VerificationError::SensitiveItemsMismatch));
        assert!(all
            .iter()
            .any(|e| matches!(e, VerificationError::QidMismatch { .. })));
    }

    #[test]
    fn error_messages_render() {
        let e = VerificationError::PrivacyViolation {
            group: 1,
            degree: Some(2),
            required: 4,
        };
        assert!(e.to_string().contains("group 1"));
    }
}
