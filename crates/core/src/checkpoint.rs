//! Serializable streaming checkpoints.
//!
//! A [`StreamingCheckpoint`] freezes the full resumable state of a
//! [`crate::streaming::StreamingAnonymizer`] — buffered rows, carried-over
//! stash, stream cursor, and the remaining-occurrence histogram of the
//! sensitive items over the unpublished rows — so a killed process can
//! resume exactly where it stopped instead of discarding the buffer.
//!
//! The struct derives `Serialize`/`Deserialize` (JSON via `serde_json` at
//! the CLI layer) and carries a self-digest. Loading is **fail-closed**:
//! [`StreamingCheckpoint::validate`] rejects any checkpoint whose digest,
//! version, parameters, or internal consistency do not hold, with
//! [`CahdError::CorruptCheckpoint`] — a tampered or truncated file can
//! never silently resume a stream.
//!
//! The digest is FNV-1a over a canonical little-endian encoding of every
//! field, masked to 53 bits so it survives a round-trip through JSON
//! numbers (which are f64 and exact only up to 2^53).

use cahd_data::ItemId;
use serde::{Deserialize, Serialize};

use crate::error::CahdError;

/// Current checkpoint format version. Bumped on any incompatible change;
/// older versions fail closed rather than being migrated silently.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Digests are truncated to 53 bits so they survive JSON's f64 numbers.
const DIGEST_MASK: u64 = (1 << 53) - 1;

/// Frozen resumable state of a streaming anonymization run.
///
/// Produced by [`crate::streaming::StreamingAnonymizer::checkpoint`] and
/// consumed by [`crate::streaming::StreamingAnonymizer::resume`]. All
/// integral fields are `u64` so they serialize exactly through the JSON
/// number model (values here are far below 2^53).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamingCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u64,
    /// Privacy degree the stream runs at.
    pub p: u64,
    /// Batch size of the stream.
    pub batch_size: u64,
    /// Item-universe size of the stream's sensitive set.
    pub n_items: u64,
    /// Next stream id to assign (number of rows pushed so far).
    pub next_id: u64,
    /// Total sensitive transactions deferred across batches so far.
    pub carried_over: u64,
    /// Whether the stream was already finished when checkpointed.
    pub finished: bool,
    /// Buffered (unreleased) rows as `(stream id, items)`.
    pub buffer: Vec<(u64, Vec<ItemId>)>,
    /// Rows deferred from an infeasible batch, opening the next one.
    pub stash: Vec<(u64, Vec<ItemId>)>,
    /// Sensitive item ids (sorted), pinning the universe the stream used.
    pub sensitive_items: Vec<ItemId>,
    /// Remaining-occurrence histogram: for each sensitive item (aligned
    /// with `sensitive_items`), its occurrence count over `buffer` plus
    /// `stash`. Redundant with the rows by construction and re-derived on
    /// load — a mismatch means corruption.
    pub remaining_counts: Vec<u64>,
    /// FNV-1a self-digest over every other field, masked to 53 bits.
    pub digest: u64,
}

impl StreamingCheckpoint {
    /// The digest the other fields imply. [`validate`](Self::validate)
    /// compares this against the stored `digest`; writers assign it.
    #[must_use]
    pub fn compute_digest(&self) -> u64 {
        let mut d = Fnv::new();
        d.u64(self.version);
        d.u64(self.p);
        d.u64(self.batch_size);
        d.u64(self.n_items);
        d.u64(self.next_id);
        d.u64(self.carried_over);
        d.u64(u64::from(self.finished));
        for section in [&self.buffer, &self.stash] {
            d.u64(section.len() as u64);
            for (id, row) in section {
                d.u64(*id);
                d.u64(row.len() as u64);
                for &item in row {
                    d.u64(u64::from(item));
                }
            }
        }
        d.u64(self.sensitive_items.len() as u64);
        for &item in &self.sensitive_items {
            d.u64(u64::from(item));
        }
        d.u64(self.remaining_counts.len() as u64);
        for &c in &self.remaining_counts {
            d.u64(c);
        }
        d.finish() & DIGEST_MASK
    }

    /// The remaining-occurrence histogram the buffered rows imply.
    #[must_use]
    pub fn derive_remaining_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.sensitive_items.len()];
        for (_, row) in self.buffer.iter().chain(&self.stash) {
            for &item in row {
                if let Ok(i) = self.sensitive_items.binary_search(&item) {
                    counts[i] += 1;
                }
            }
        }
        counts
    }

    /// Fail-closed validation: digest, version, parameter sanity, and
    /// internal consistency of the frozen state.
    ///
    /// # Errors
    /// [`CahdError::CorruptCheckpoint`] naming the first failed check.
    pub fn validate(&self) -> Result<(), CahdError> {
        let fail = |reason: String| Err(CahdError::CorruptCheckpoint { reason });
        if self.version != CHECKPOINT_VERSION {
            return fail(format!(
                "unsupported format version {} (expected {CHECKPOINT_VERSION})",
                self.version
            ));
        }
        if self.digest != self.compute_digest() {
            return fail("digest mismatch: checkpoint was tampered with or truncated".into());
        }
        if self.p < 2 {
            return fail(format!("privacy degree {} is degenerate", self.p));
        }
        if self.batch_size < 2 * self.p {
            return fail(format!(
                "batch_size {} below the 2p floor ({})",
                self.batch_size,
                2 * self.p
            ));
        }
        if !self.sensitive_items.windows(2).all(|w| w[0] < w[1]) {
            return fail("sensitive items are not sorted and unique".into());
        }
        if let Some(&item) = self
            .sensitive_items
            .iter()
            .find(|&&i| u64::from(i) >= self.n_items)
        {
            return fail(format!(
                "sensitive item {item} outside universe {}",
                self.n_items
            ));
        }
        for (id, row) in self.buffer.iter().chain(&self.stash) {
            if *id >= self.next_id {
                return fail(format!(
                    "buffered stream id {id} >= cursor {}",
                    self.next_id
                ));
            }
            if let Some(&item) = row.iter().find(|&&i| u64::from(i) >= self.n_items) {
                return fail(format!(
                    "buffered row {id} holds item {item} outside universe {}",
                    self.n_items
                ));
            }
        }
        if self.remaining_counts.len() != self.sensitive_items.len() {
            return fail(format!(
                "remaining-occurrence histogram has {} entries for {} sensitive items",
                self.remaining_counts.len(),
                self.sensitive_items.len()
            ));
        }
        if self.remaining_counts != self.derive_remaining_counts() {
            return fail("remaining-occurrence histogram disagrees with the buffered rows".into());
        }
        Ok(())
    }

    /// Recomputes and stores the digest (after construction or a
    /// deliberate mutation in tests).
    pub fn seal(&mut self) {
        self.remaining_counts = self.derive_remaining_counts();
        self.digest = self.compute_digest();
    }
}

/// Minimal FNV-1a accumulator over little-endian `u64` words.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StreamingCheckpoint {
        let mut cp = StreamingCheckpoint {
            version: CHECKPOINT_VERSION,
            p: 2,
            batch_size: 6,
            n_items: 10,
            next_id: 5,
            carried_over: 1,
            finished: false,
            buffer: vec![(3, vec![0, 1]), (4, vec![2, 9])],
            stash: vec![(1, vec![9])],
            sensitive_items: vec![9],
            remaining_counts: Vec::new(),
            digest: 0,
        };
        cp.seal();
        cp
    }

    #[test]
    fn sealed_checkpoint_validates() {
        let cp = sample();
        assert!(cp.validate().is_ok());
        assert_eq!(cp.remaining_counts, vec![2]);
        assert!(cp.digest <= DIGEST_MASK);
    }

    #[test]
    fn any_field_tamper_fails_closed() {
        let mut cp = sample();
        cp.next_id = 6;
        let err = cp.validate().unwrap_err();
        assert!(matches!(err, CahdError::CorruptCheckpoint { ref reason }
            if reason.contains("digest")));

        let mut cp = sample();
        cp.buffer[0].1.push(3);
        assert!(cp.validate().is_err());

        // Even with a freshly sealed digest, an impossible state fails.
        let mut cp = sample();
        cp.buffer[0].0 = 99; // id beyond the cursor
        cp.seal();
        let err = cp.validate().unwrap_err();
        assert!(matches!(err, CahdError::CorruptCheckpoint { ref reason }
            if reason.contains("cursor")));

        let mut cp = sample();
        cp.version = 2;
        cp.seal();
        assert!(matches!(
            cp.validate().unwrap_err(),
            CahdError::CorruptCheckpoint { ref reason } if reason.contains("version")
        ));

        let mut cp = sample();
        cp.batch_size = 3;
        cp.seal();
        assert!(cp.validate().is_err());
    }

    #[test]
    fn histogram_mismatch_is_detected_behind_a_valid_digest() {
        let mut cp = sample();
        cp.remaining_counts = vec![7];
        cp.digest = cp.compute_digest(); // digest over the lie is consistent
        let err = cp.validate().unwrap_err();
        assert!(matches!(err, CahdError::CorruptCheckpoint { ref reason }
            if reason.contains("histogram")));
    }

    #[test]
    fn json_round_trip_is_exact() {
        let cp = sample();
        let json = serde_json::to_string(&cp).unwrap();
        let back: StreamingCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cp);
        assert!(back.validate().is_ok());
    }
}
