//! Experiment harness for the CAHD reproduction.
//!
//! Regenerates every table and figure of the paper's evaluation section on
//! the BMS-like synthetic profiles (see `cahd-data::profiles` and
//! DESIGN.md for the dataset substitution rationale). The `experiments`
//! binary drives [`experiments`]; the Criterion benches under `benches/`
//! reuse [`runs`] for micro-level timing.

pub mod context;
pub mod experiments;
pub mod extensions;
pub mod report;
pub mod runs;
pub mod snapshot;

pub use context::{DatasetId, ExperimentContext};
pub use report::Table;
