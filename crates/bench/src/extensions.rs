//! Extension experiments beyond the paper's evaluation section.
//!
//! * [`ext_orderings`] — the paper's future-work direction: compare RCM
//!   against dimensionality-reduction-style orderings (MinHash,
//!   lexicographic) and no ordering at all, on both band quality and
//!   downstream CAHD utility.
//! * [`ext_generalization`] — the paper's Section I motivation, measured:
//!   the same Mondrian partition published generalized vs permuted, showing
//!   the dimensionality curse (mixed-column explosion and KL collapse).
//! * [`ext_mining`] — the motivating analysis task: QID-only frequent
//!   itemsets are preserved exactly; sensitive-pattern supports are
//!   estimable with small relative error under CAHD.

use std::time::Instant;

use cahd_baselines::generalization::generalized_mondrian;
use cahd_baselines::PmConfig;
use cahd_core::weighted::{cahd_weighted, WeightedSimilarity};
use cahd_core::{cahd, CahdConfig};
use cahd_eval::kl::{kl_divergence, DEFAULT_SMOOTHING};
use cahd_eval::mining::{published_qid_support, sensitive_support_error, top_k_itemsets};
use cahd_eval::{actual_pdf, evaluate_workload, generate_workload_seeded};
use cahd_rcm::{RowOrder, UnsymOptions};

use crate::context::{DatasetId, ExperimentContext};
use crate::report::{fmt_secs, Table};
use crate::runs::{prepare, run_cahd, run_pm, run_random, select_sensitive};

fn write_csv(ctx: &ExperimentContext, table: &Table, name: &str) {
    if let Some(dir) = &ctx.out_dir {
        if let Err(e) = table.write_csv(dir, name) {
            eprintln!("warning: failed to write {name}.csv: {e}");
        }
    }
}

/// Row-ordering ablation: band quality, ordering cost and CAHD utility per
/// strategy (BMS1-like, p = 10, m = 10, r = 4).
pub fn ext_orderings(ctx: &ExperimentContext) -> Table {
    let mut t = Table::new(
        "Ext: row-ordering strategies (p = 10, m = 10, r = 4)",
        &[
            "dataset",
            "ordering",
            "adjacent overlap",
            "order secs",
            "CAHD KL",
        ],
    );
    let correlated = cahd_data::profiles::fig6_like(0.9, ctx.sub_seed("extord-corr"));
    let datasets: [(&str, cahd_data::TransactionSet); 2] = [
        ("BMS1-like", ctx.dataset(DatasetId::Bms1)),
        ("quest corr=0.9", correlated),
    ];
    for (name, data) in datasets {
        let sens = select_sensitive(&data, 10, 20, ctx.sub_seed("extord-sens"));
        let queries_seed = ctx.sub_seed("extord-q");
        for strat in RowOrder::ALL {
            let t0 = Instant::now();
            let perm = strat.order(data.matrix(), ctx.sub_seed("extord-mh"));
            let order_time = t0.elapsed();
            let permuted = data.permute(&perm);
            // Mean number of items shared by consecutive transactions — the
            // locality CAHD's candidate lists exploit.
            let n = permuted.n_transactions();
            let overlap: usize = (0..n - 1)
                .map(|i| {
                    cahd_sparse::CsrMatrix::intersection_len(
                        permuted.transaction(i),
                        permuted.transaction(i + 1),
                    )
                })
                .sum();
            let (published, _) = cahd(&permuted, &sens, &CahdConfig::new(10)).expect("feasible");
            let queries = generate_workload_seeded(&permuted, &sens, 4, 100, queries_seed);
            let kl = evaluate_workload(&permuted, &published, &queries).mean_kl;
            t.row(&[
                name.into(),
                strat.name().into(),
                format!("{:.3}", overlap as f64 / (n - 1) as f64),
                fmt_secs(order_time),
                format!("{kl:.4}"),
            ]);
        }
    }
    write_csv(ctx, &t, "ext_orderings");
    t
}

/// The dimensionality curse, measured: the same Mondrian partition
/// published generalized vs permuted, against CAHD, across p.
pub fn ext_generalization(ctx: &ExperimentContext) -> Table {
    let mut t = Table::new(
        "Ext: generalization collapse (m = 10, r = 4)",
        &[
            "dataset",
            "p",
            "mixed cols",
            "KL generalized",
            "KL PM (permuted)",
            "KL CAHD",
        ],
    );
    for id in DatasetId::ALL {
        let prep = prepare(ctx.dataset(id), UnsymOptions::default());
        let sens = select_sensitive(&prep.data, 10, 20, ctx.sub_seed("extgen-sens"));
        for p in [5usize, 10, 20] {
            let seed = ctx.sub_seed(&format!("extgen-{}-{p}", id.name()));
            let (gen_rel, pm_rel) =
                generalized_mondrian(&prep.data, &sens, &PmConfig::new(p)).expect("feasible");
            let cahd_rel = run_cahd(&prep, &sens, p, 3).expect("feasible").published;

            let queries = generate_workload_seeded(&prep.data, &sens, 4, 100, seed);
            let mut kl_gen_sum = 0.0;
            let mut n_gen = 0usize;
            for q in &queries {
                if let (Some(act), Some(est)) = (
                    actual_pdf(&prep.data, q),
                    gen_rel.estimated_pdf(q.sensitive, &q.qid),
                ) {
                    kl_gen_sum += kl_divergence(&act, &est, DEFAULT_SMOOTHING);
                    n_gen += 1;
                }
            }
            let kl_gen = if n_gen == 0 {
                f64::NAN
            } else {
                kl_gen_sum / n_gen as f64
            };
            let kl_pm = evaluate_workload(&prep.data, &pm_rel, &queries).mean_kl;
            let kl_cahd = evaluate_workload(&prep.data, &cahd_rel, &queries).mean_kl;
            t.row(&[
                id.name().into(),
                p.to_string(),
                format!("{:.1}%", gen_rel.mixed_fraction() * 100.0),
                format!("{kl_gen:.4}"),
                format!("{kl_pm:.4}"),
                format!("{kl_cahd:.4}"),
            ]);
        }
    }
    write_csv(ctx, &t, "ext_generalization");
    t
}

/// Pattern-mining preservation: top QID itemsets survive exactly; supports
/// of (sensitive, QID) patterns reconstruct with bounded relative error.
pub fn ext_mining(ctx: &ExperimentContext) -> Table {
    let mut t = Table::new(
        "Ext: pattern preservation (top-20 itemsets, p = 10, m = 10)",
        &[
            "dataset",
            "qid itemsets preserved",
            "sens support err CAHD",
            "sens support err PM",
            "sens support err Random",
        ],
    );
    for id in DatasetId::ALL {
        let prep = prepare(ctx.dataset(id), UnsymOptions::default());
        let sens = select_sensitive(&prep.data, 10, 20, ctx.sub_seed("extmine-sens"));
        let p = 10;
        let cahd_rel = run_cahd(&prep, &sens, p, 3).expect("feasible").published;
        let pm_rel = run_pm(&prep.data, &sens, p).expect("feasible").published;
        let rnd_rel = run_random(&prep.data, &sens, p, ctx.sub_seed("extmine-rnd"))
            .expect("feasible")
            .published;

        // Top QID-only itemsets (length >= 2): exact preservation check.
        let top = top_k_itemsets(&prep.data, 20, 2, 3);
        let qid_only: Vec<_> = top
            .iter()
            .filter(|s| s.items.iter().all(|&i| !sens.contains(i)))
            .collect();
        let preserved = qid_only
            .iter()
            .filter(|s| published_qid_support(&cahd_rel, &s.items) == s.support)
            .count();

        // Sensitive patterns: each sensitive item paired with its most
        // co-occurring QID item (found by one pass over its transactions).
        let inv = prep.data.inverted_index();
        let mut cooc = vec![0u32; prep.data.n_items()];
        let patterns: Vec<(u32, Vec<u32>)> = sens
            .items()
            .iter()
            .filter(|&&s| !inv.row(s as usize).is_empty())
            .filter_map(|&s| {
                cooc.iter_mut().for_each(|c| *c = 0);
                for &txn in inv.row(s as usize) {
                    for &it in prep.data.transaction(txn as usize) {
                        if !sens.contains(it) {
                            cooc[it as usize] += 1;
                        }
                    }
                }
                let best_q = (0..prep.data.n_items() as u32).max_by_key(|&q| cooc[q as usize])?;
                (cooc[best_q as usize] > 0).then(|| (s, vec![best_q]))
            })
            .collect();
        let fmt_err = |rel| match sensitive_support_error(&prep.data, rel, &patterns) {
            Some(e) => format!("{:.1}%", e * 100.0),
            None => "n/a".into(),
        };
        t.row(&[
            id.name().into(),
            format!("{preserved}/{}", qid_only.len()),
            fmt_err(&cahd_rel),
            fmt_err(&pm_rel),
            fmt_err(&rnd_rel),
        ]);
    }
    write_csv(ctx, &t, "ext_mining");
    t
}

/// Weighted (count-valued) CAHD: rating-preservation and the value of
/// count-aware similarity, on a Netflix-like ratings matrix.
pub fn ext_weighted(ctx: &ExperimentContext) -> Table {
    use cahd_data::WeightedTransactionSet;
    let mut t = Table::new(
        "Ext: weighted CAHD on ratings data (p = 10, m = 8)",
        &[
            "similarity",
            "groups",
            "mean |rating diff| within group",
            "cahd secs",
        ],
    );
    // Ratings matrix: pattern from Quest, stars 1..5 with a per-user bias.
    let pattern = cahd_data::QuestGenerator::new(
        cahd_data::QuestConfig {
            n_transactions: (4_000f64 * ctx.scale.max(0.05) * 4.0) as usize,
            n_items: 600,
            avg_txn_len: 8.0,
            n_patterns: 80,
            avg_pattern_len: 5.0,
            correlation: 0.6,
            ..Default::default()
        },
        ctx.sub_seed("extw-data"),
    )
    .generate();
    use rand::Rng as _;
    use rand::SeedableRng as _;
    let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.sub_seed("extw-stars"));
    let rows: Vec<Vec<(u32, u32)>> = (0..pattern.n_transactions())
        .map(|txn| {
            let bias = rng.gen_range(0..2);
            pattern
                .transaction(txn)
                .iter()
                .map(|&title| (title, (1 + bias + rng.gen_range(0..4)).min(5)))
                .collect()
        })
        .collect();
    let data = WeightedTransactionSet::from_rows(&rows, 600);
    let sens = select_sensitive(&data.to_binary(), 8, 20, ctx.sub_seed("extw-sens"));
    let red = cahd_rcm::reduce_unsymmetric(data.pattern(), UnsymOptions::default());
    let permuted = data.permute(&red.row_perm);

    for sim in [
        WeightedSimilarity::PresenceOverlap,
        WeightedSimilarity::MinCount,
    ] {
        let t0 = Instant::now();
        let (pub_, _) =
            cahd_weighted(&permuted, &sens, &CahdConfig::new(10), sim).expect("feasible");
        let secs = t0.elapsed();
        // Within-group rating coherence: mean |count_a - count_b| over
        // shared items of member pairs (lower = groups preserve rating
        // structure better).
        let mut diff_sum = 0f64;
        let mut diff_n = 0u64;
        for g in &pub_.groups {
            for a in 0..g.qid_rows.len() {
                for b in (a + 1)..g.qid_rows.len().min(a + 4) {
                    let (ra, rb) = (&g.qid_rows[a], &g.qid_rows[b]);
                    let mut i = 0;
                    let mut j = 0;
                    while i < ra.len() && j < rb.len() {
                        match ra[i].0.cmp(&rb[j].0) {
                            std::cmp::Ordering::Less => i += 1,
                            std::cmp::Ordering::Greater => j += 1,
                            std::cmp::Ordering::Equal => {
                                diff_sum += (ra[i].1 as f64 - rb[j].1 as f64).abs();
                                diff_n += 1;
                                i += 1;
                                j += 1;
                            }
                        }
                    }
                }
            }
        }
        let name = match sim {
            WeightedSimilarity::PresenceOverlap => "presence",
            WeightedSimilarity::MinCount => "min-count",
        };
        t.row(&[
            name.into(),
            pub_.groups.len().to_string(),
            format!("{:.3}", diff_sum / diff_n.max(1) as f64),
            fmt_secs(secs),
        ]);
    }
    write_csv(ctx, &t, "ext_weighted");
    t
}

/// Local-search refinement on top of CAHD: objective gain and KL before /
/// after, across p.
pub fn ext_refine(ctx: &ExperimentContext) -> Table {
    use cahd_core::{intra_group_overlap, refine_groups, verify_published};
    let mut t = Table::new(
        "Ext: swap refinement after CAHD (m = 10, r = 4, window = 2)",
        &[
            "dataset",
            "p",
            "overlap before",
            "overlap after",
            "KL before",
            "KL after",
            "swaps",
        ],
    );
    for id in DatasetId::ALL {
        let prep = prepare(ctx.dataset(id), UnsymOptions::default());
        let sens = select_sensitive(&prep.data, 10, 20, ctx.sub_seed("extref-sens"));
        for p in [10usize, 20] {
            let seed = ctx.sub_seed(&format!("extref-{}-{p}", id.name()));
            let mut release = run_cahd(&prep, &sens, p, 3).expect("feasible").published;
            let before_overlap = intra_group_overlap(&release);
            let queries = generate_workload_seeded(&prep.data, &sens, 4, 100, seed);
            let kl_before = evaluate_workload(&prep.data, &release, &queries).mean_kl;
            let stats = refine_groups(&mut release, &prep.data, &sens, p, 2, 3);
            verify_published(&prep.data, &sens, &release, p).expect("refined release valid");
            let kl_after = evaluate_workload(&prep.data, &release, &queries).mean_kl;
            t.row(&[
                id.name().into(),
                p.to_string(),
                before_overlap.to_string(),
                intra_group_overlap(&release).to_string(),
                format!("{kl_before:.4}"),
                format!("{kl_after:.4}"),
                stats.swaps_applied.to_string(),
            ]);
        }
    }
    write_csv(ctx, &t, "ext_refine");
    t
}

/// Item-popularity skew vs re-identification risk — a negative result,
/// kept because it is informative: one might expect Zipf-like item
/// popularity (which real clickstreams have and uniform Quest lacks) to
/// explain why our Table II magnitudes sit below the paper's. The sweep
/// shows the opposite — skew *concentrates* baskets on a popular head and
/// reduces uniqueness. The residual gap therefore comes from per-user
/// idiosyncratic rare items, which a shared-pattern-pool generator cannot
/// produce by construction (see EXPERIMENTS.md).
pub fn ext_skew(ctx: &ExperimentContext) -> Table {
    use cahd_eval::reidentification_probability;
    use rand::SeedableRng as _;
    let mut t = Table::new(
        "Ext: Table II vs Quest item-popularity skew (BMS2-like shape)",
        &["item skew", "k=1", "k=2", "k=3", "k=4"],
    );
    for skew in [0.0f64, 0.6, 1.0] {
        let cfg = cahd_data::QuestConfig {
            item_skew: skew,
            ..cahd_data::profiles::bms2_config(ctx.scale)
        };
        let data = cahd_data::QuestGenerator::new(cfg, ctx.sub_seed("extskew")).generate();
        let mut cells = vec![format!("{skew:.1}")];
        for k in 1..=4 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.sub_seed(&format!("extskew-{k}")));
            let p =
                reidentification_probability(&data, None, k, 10_000, &mut rng).unwrap_or(f64::NAN);
            cells.push(format!("{:.1}%", p * 100.0));
        }
        t.row(&cells);
    }
    write_csv(ctx, &t, "ext_skew");
    t
}

/// Linkage-attack simulation (Definition 3, observed): attacker posterior
/// on raw data vs the CAHD release, per amount of background knowledge.
pub fn ext_attack(ctx: &ExperimentContext) -> Table {
    use cahd_eval::{attack_published, attack_raw};
    use rand::SeedableRng as _;
    let mut t = Table::new(
        "Ext: linkage attack, mean posterior on the true sensitive item (p = 10, m = 10)",
        &[
            "dataset",
            "k",
            "raw",
            "released",
            "released max",
            "bound 1/p",
        ],
    );
    let p = 10;
    for id in DatasetId::ALL {
        let prep = prepare(ctx.dataset(id), UnsymOptions::default());
        let sens = select_sensitive(&prep.data, 10, 20, ctx.sub_seed("extatk-sens"));
        let release = run_cahd(&prep, &sens, p, 3).expect("feasible").published;
        for k in [1usize, 2, 3] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.sub_seed(&format!("extatk-{k}")));
            let raw = attack_raw(&prep.data, &sens, k, 2_000, &mut rng);
            let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.sub_seed(&format!("extatk-{k}")));
            let rel = attack_published(&prep.data, &sens, &release, k, 2_000, &mut rng);
            let (Some(raw), Some(rel)) = (raw, rel) else {
                continue;
            };
            t.row(&[
                id.name().into(),
                k.to_string(),
                format!("{:.4}", raw.mean_true_posterior),
                format!("{:.4}", rel.mean_true_posterior),
                format!("{:.4}", rel.max_posterior),
                format!("{:.4}", 1.0 / p as f64),
            ]);
        }
    }
    write_csv(ctx, &t, "ext_attack");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExperimentContext {
        ExperimentContext {
            scale: 0.02,
            seed: 7,
            out_dir: None,
        }
    }

    #[test]
    fn ext_orderings_covers_all_strategies() {
        let t = ext_orderings(&tiny_ctx());
        assert_eq!(t.n_rows(), 2 * RowOrder::ALL.len());
    }

    #[test]
    fn ext_generalization_shape() {
        let t = ext_generalization(&tiny_ctx());
        assert_eq!(t.n_rows(), 6); // 2 datasets x 3 p values
    }

    #[test]
    fn ext_mining_shape() {
        let t = ext_mining(&tiny_ctx());
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn ext_weighted_shape() {
        let t = ext_weighted(&tiny_ctx());
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn ext_attack_bound_holds() {
        let t = ext_attack(&tiny_ctx());
        assert!(t.n_rows() >= 4);
    }

    #[test]
    fn ext_refine_shape() {
        let t = ext_refine(&tiny_ctx());
        assert_eq!(t.n_rows(), 4);
    }

    #[test]
    fn ext_skew_shape() {
        let t = ext_skew(&tiny_ctx());
        assert_eq!(t.n_rows(), 3);
    }
}
