//! Shared experiment context: datasets, scaling, seeding, output directory.

use std::path::PathBuf;

use cahd_data::profiles;
use cahd_data::TransactionSet;

/// Parameters shared by every experiment.
#[derive(Clone, Debug)]
pub struct ExperimentContext {
    /// Multiplier on the BMS transaction counts (1.0 = paper scale). The
    /// default 0.25 keeps the full suite fast; utility *trends* are stable
    /// across scales.
    pub scale: f64,
    /// Master seed; every experiment derives sub-seeds deterministically.
    pub seed: u64,
    /// Optional directory for CSV / PGM artifacts.
    pub out_dir: Option<PathBuf>,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        ExperimentContext {
            scale: 0.25,
            seed: 42,
            out_dir: None,
        }
    }
}

/// Which of the two paper datasets an experiment runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetId {
    /// BMS-WebView-1-like profile.
    Bms1,
    /// BMS-WebView-2-like profile.
    Bms2,
}

impl DatasetId {
    /// Both datasets, in paper order.
    pub const ALL: [DatasetId; 2] = [DatasetId::Bms1, DatasetId::Bms2];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Bms1 => "BMS1-like",
            DatasetId::Bms2 => "BMS2-like",
        }
    }
}

impl ExperimentContext {
    /// Generates (deterministically) one of the BMS-like datasets.
    pub fn dataset(&self, id: DatasetId) -> TransactionSet {
        match id {
            DatasetId::Bms1 => profiles::bms1_like(self.scale, self.seed ^ 0xB1),
            DatasetId::Bms2 => profiles::bms2_like(self.scale, self.seed ^ 0xB2),
        }
    }

    /// Derives a sub-seed for a named experiment component.
    pub fn sub_seed(&self, tag: &str) -> u64 {
        // FNV-1a over the tag, mixed with the master seed.
        let mut h = 0xcbf29ce484222325u64 ^ self.seed;
        for b in tag.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_seeds_differ_by_tag_and_seed() {
        let a = ExperimentContext::default();
        let b = ExperimentContext {
            seed: 43,
            ..Default::default()
        };
        assert_ne!(a.sub_seed("x"), a.sub_seed("y"));
        assert_ne!(a.sub_seed("x"), b.sub_seed("x"));
        assert_eq!(a.sub_seed("x"), a.sub_seed("x"));
    }

    #[test]
    fn datasets_are_deterministic() {
        let ctx = ExperimentContext {
            scale: 0.01,
            ..Default::default()
        };
        assert_eq!(ctx.dataset(DatasetId::Bms1), ctx.dataset(DatasetId::Bms1));
        assert_ne!(ctx.dataset(DatasetId::Bms1), ctx.dataset(DatasetId::Bms2));
    }

    #[test]
    fn names() {
        assert_eq!(DatasetId::Bms1.name(), "BMS1-like");
        assert_eq!(DatasetId::ALL.len(), 2);
    }
}
