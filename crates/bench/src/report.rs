//! Plain-text table rendering and CSV export for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned table with a title, built row by row.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(std::string::String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{c:>w$}");
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV form to `dir/<name>.csv`.
    pub fn write_csv(&self, dir: &Path, name: &str) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{name}.csv")), self.to_csv())
    }
}

/// Formats a duration in seconds with millisecond precision.
pub fn fmt_secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["100".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // header, separator, 2 rows (+ title)
        assert_eq!(lines.len(), 5);
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("demo", &["a,b", "c"]);
        t.row(&["x\"y".into(), "z".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("\"a,b\",c\n"));
        assert!(csv.contains("\"x\"\"y\""));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_arity_panics() {
        let mut t = Table::new("demo", &["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn csv_file_written() {
        let mut t = Table::new("demo", &["a"]);
        t.row(&["1".into()]);
        let dir = std::env::temp_dir().join(format!("cahd_report_{}", std::process::id()));
        t.write_csv(&dir, "demo").unwrap();
        let s = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(s, "a\n1\n");
    }
}
