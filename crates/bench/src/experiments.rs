//! One regenerator per table/figure of the paper's evaluation (Section V).
//!
//! Each function returns the rendered [`Table`]s (and writes CSV artifacts
//! when the context has an output directory), so the `experiments` binary,
//! the integration tests and EXPERIMENTS.md all consume the same code
//! paths.
//!
//! | paper artifact | function    | sweep                               |
//! |----------------|-------------|-------------------------------------|
//! | Table I        | [`table1`]  | dataset characteristics             |
//! | Table II       | [`table2`]  | re-identification vs known items    |
//! | Fig. 6         | [`fig6`]    | RCM band quality vs correlation     |
//! | Fig. 9         | [`fig9`]    | KL vs p (r = 4)                     |
//! | Fig. 10        | [`fig10`]   | KL vs m (r = 4, p in {10, 20})      |
//! | Fig. 11        | [`fig11`]   | KL vs r (m = 10, p in {10, 20})     |
//! | Fig. 12        | [`fig12`]   | execution time vs p (m = 20)        |
//! | Fig. 13        | [`fig13`]   | KL and time vs alpha (BMS2, m = 10) |

use cahd_core::verify_published;
use cahd_data::{DatasetStats, SensitiveSet};
use cahd_eval::reidentification_probability;
use cahd_rcm::UnsymOptions;
use cahd_sparse::viz::DensityGrid;
use cahd_sparse::Permutation;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::context::{DatasetId, ExperimentContext};
use crate::report::{fmt_secs, Table};
use crate::runs::{
    kl_of, prepare, run_cahd, run_pm, run_random, select_sensitive, PreparedDataset,
};

fn write_csv(ctx: &ExperimentContext, table: &Table, name: &str) {
    if let Some(dir) = &ctx.out_dir {
        if let Err(e) = table.write_csv(dir, name) {
            eprintln!("warning: failed to write {name}.csv: {e}");
        }
    }
}

/// Table I: dataset characteristics, with the paper's reference values.
pub fn table1(ctx: &ExperimentContext) -> Table {
    let mut t = Table::new(
        "Table I: dataset characteristics",
        &[
            "dataset",
            "transactions",
            "items",
            "max len",
            "avg len",
            "paper (txns/items/max/avg)",
        ],
    );
    let paper = ["59602/497/267/2.5", "77512/3340/161/5.0"];
    for (id, pref) in DatasetId::ALL.into_iter().zip(paper) {
        let data = ctx.dataset(id);
        let s = DatasetStats::compute(&data);
        t.row(&[
            id.name().into(),
            s.transactions.to_string(),
            s.items.to_string(),
            s.max_length.to_string(),
            format!("{:.2}", s.avg_length),
            pref.into(),
        ]);
    }
    write_csv(ctx, &t, "table1");
    t
}

/// Table II: re-identification probability vs number of known QID items.
pub fn table2(ctx: &ExperimentContext) -> Table {
    let mut t = Table::new(
        "Table II: re-identification probability",
        &["dataset", "k=1", "k=2", "k=3", "k=4", "paper (k=1..4)"],
    );
    let paper = ["0.3% 9.5% 24.3% 50.0%", "0.8% 18.8% 41.6% 91.1%"];
    let trials = 20_000;
    for (id, pref) in DatasetId::ALL.into_iter().zip(paper) {
        let data = ctx.dataset(id);
        let mut cells: Vec<String> = vec![id.name().into()];
        for k in 1..=4 {
            let mut rng = StdRng::seed_from_u64(ctx.sub_seed(&format!("table2-{k}")));
            let p =
                reidentification_probability(&data, None, k, trials, &mut rng).unwrap_or(f64::NAN);
            cells.push(format!("{:.1}%", p * 100.0));
        }
        cells.push(pref.into());
        t.row(&cells);
    }
    write_csv(ctx, &t, "table2");
    t
}

/// Fig. 6: RCM effectiveness vs data correlation (1000x1000 Quest data).
///
/// Returns the metric table and the ASCII density panels
/// (before/after per correlation level). PGM images are written to the
/// output directory when one is configured.
pub fn fig6(ctx: &ExperimentContext) -> (Table, Vec<String>) {
    let mut t = Table::new(
        "Fig. 6: RCM band quality vs correlation (1000x1000, ~20 items/txn)",
        &[
            "correlation",
            "row span before",
            "row span after",
            "improvement",
            "edge span before",
            "edge span after",
            "rcm secs",
        ],
    );
    let mut panels = Vec::new();
    for corr in [0.1, 0.5, 0.9] {
        let data = cahd_data::profiles::fig6_like(corr, ctx.sub_seed("fig6"));
        let red = cahd_rcm::reduce_unsymmetric(data.matrix(), UnsymOptions::default());
        // The paper's bandwidth metric lives on the A*A^T graph: mean edge
        // span |pos(u) - pos(v)| under the identity vs the RCM labeling.
        let graph = cahd_sparse::RowGraph::build_explicit(data.matrix());
        let id = Permutation::identity(data.n_transactions());
        let span_before = cahd_sparse::bandwidth::graph_band_stats(&graph, &id).mean_edge_span;
        let span_after =
            cahd_sparse::bandwidth::graph_band_stats(&graph, &red.row_perm).mean_edge_span;
        t.row(&[
            format!("{corr:.1}"),
            format!("{:.1}", red.before.mean_row_span),
            format!("{:.1}", red.after.mean_row_span),
            format!(
                "{:.2}x",
                red.before.mean_row_span / red.after.mean_row_span.max(1e-9)
            ),
            format!("{span_before:.1}"),
            format!("{span_after:.1}"),
            fmt_secs(red.rcm_time),
        ]);
        let id_r = Permutation::identity(data.n_transactions());
        let id_c = Permutation::identity(data.n_items());
        let before = DensityGrid::new(data.matrix(), &id_r, &id_c, 30, 60);
        let after = DensityGrid::new(data.matrix(), &red.row_perm, &red.col_perm, 30, 60);
        panels.push(format!(
            "-- correlation {corr:.1}: original --\n{}-- correlation {corr:.1}: after RCM --\n{}",
            before.to_ascii(),
            after.to_ascii()
        ));
        if let Some(dir) = &ctx.out_dir {
            let _ = std::fs::create_dir_all(dir);
            let _ = std::fs::write(
                dir.join(format!("fig6_corr{corr}_before.pgm")),
                before.to_pgm(),
            );
            let _ = std::fs::write(
                dir.join(format!("fig6_corr{corr}_after.pgm")),
                after.to_pgm(),
            );
        }
    }
    write_csv(ctx, &t, "fig6");
    (t, panels)
}

/// Runs `f` on each item in its own thread and returns results in input
/// order. Every experiment point is independently seeded, so parallel
/// execution leaves results bit-identical to the sequential ones.
fn parallel_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = items.iter().map(|it| scope.spawn(|_| f(it))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment thread panicked"))
            .collect()
    })
    .expect("scope panicked")
}

/// One CAHD-vs-PM utility comparison row.
fn utility_row(
    prep: &PreparedDataset,
    sensitive: &SensitiveSet,
    p: usize,
    alpha: usize,
    r: usize,
    seed: u64,
) -> (f64, f64, f64) {
    let cahd_res = run_cahd(prep, sensitive, p, alpha).expect("feasible by construction");
    verify_published(&prep.data, sensitive, &cahd_res.published, p).expect("CAHD release valid");
    let pm_res = run_pm(&prep.data, sensitive, p).expect("feasible by construction");
    verify_published(&prep.data, sensitive, &pm_res.published, p).expect("PM release valid");
    let rnd_res = run_random(&prep.data, sensitive, p, seed ^ 0x5eed).expect("feasible");
    let kl_cahd = kl_of(&prep.data, sensitive, &cahd_res.published, r, seed).mean_kl;
    let kl_pm = kl_of(&prep.data, sensitive, &pm_res.published, r, seed).mean_kl;
    let kl_rnd = kl_of(&prep.data, sensitive, &rnd_res.published, r, seed).mean_kl;
    (kl_cahd, kl_pm, kl_rnd)
}

/// Fig. 9: reconstruction error vs privacy degree `p` (r = 4, m = 10).
pub fn fig9(ctx: &ExperimentContext) -> Table {
    let mut t = Table::new(
        "Fig. 9: KL divergence vs p (r = 4, m = 10)",
        &["dataset", "p", "CAHD", "PM", "Random"],
    );
    for id in DatasetId::ALL {
        let prep = prepare(ctx.dataset(id), UnsymOptions::default());
        let sens = select_sensitive(&prep.data, 10, 20, ctx.sub_seed("fig9-sens"));
        let ps = [4usize, 8, 12, 16, 20];
        let rows = parallel_map(&ps, |&p| {
            let seed = ctx.sub_seed(&format!("fig9-{}-{p}", id.name()));
            (p, utility_row(&prep, &sens, p, 3, 4, seed))
        });
        for (p, (c, pm, rnd)) in rows {
            t.row(&[
                id.name().into(),
                p.to_string(),
                format!("{c:.4}"),
                format!("{pm:.4}"),
                format!("{rnd:.4}"),
            ]);
        }
    }
    write_csv(ctx, &t, "fig9");
    t
}

/// Fig. 10: reconstruction error vs number of sensitive items `m`
/// (r = 4, p in {10, 20}).
pub fn fig10(ctx: &ExperimentContext) -> Table {
    let mut t = Table::new(
        "Fig. 10: KL divergence vs m (r = 4)",
        &["dataset", "p", "m", "CAHD", "PM", "Random"],
    );
    for id in DatasetId::ALL {
        let prep = prepare(ctx.dataset(id), UnsymOptions::default());
        let settings: Vec<(usize, usize)> = [5usize, 10, 15, 20]
            .into_iter()
            .flat_map(|m| [(m, 10usize), (m, 20usize)])
            .collect();
        let rows = parallel_map(&settings, |&(m, p)| {
            let sens = select_sensitive(&prep.data, m, 20, ctx.sub_seed(&format!("fig10-{m}")));
            let seed = ctx.sub_seed(&format!("fig10-{}-{p}-{m}", id.name()));
            (m, p, utility_row(&prep, &sens, p, 3, 4, seed))
        });
        for (m, p, (c, pm, rnd)) in rows {
            t.row(&[
                id.name().into(),
                p.to_string(),
                m.to_string(),
                format!("{c:.4}"),
                format!("{pm:.4}"),
                format!("{rnd:.4}"),
            ]);
        }
    }
    write_csv(ctx, &t, "fig10");
    t
}

/// Fig. 11: reconstruction error vs group-by size `r` (m = 10,
/// p in {10, 20}).
pub fn fig11(ctx: &ExperimentContext) -> Table {
    let mut t = Table::new(
        "Fig. 11: KL divergence vs r (m = 10)",
        &["dataset", "p", "r", "CAHD", "PM", "Random"],
    );
    for id in DatasetId::ALL {
        let prep = prepare(ctx.dataset(id), UnsymOptions::default());
        let sens = select_sensitive(&prep.data, 10, 20, ctx.sub_seed("fig11-sens"));
        let settings: Vec<(usize, usize)> = [10usize, 20]
            .into_iter()
            .flat_map(|p| [2usize, 4, 6, 8].into_iter().map(move |r| (p, r)))
            .collect();
        let rows = parallel_map(&settings, |&(p, r)| {
            let seed = ctx.sub_seed(&format!("fig11-{}-{p}-{r}", id.name()));
            (p, r, utility_row(&prep, &sens, p, 3, r, seed))
        });
        for (p, r, (c, pm, rnd)) in rows {
            t.row(&[
                id.name().into(),
                p.to_string(),
                r.to_string(),
                format!("{c:.4}"),
                format!("{pm:.4}"),
                format!("{rnd:.4}"),
            ]);
        }
    }
    write_csv(ctx, &t, "fig11");
    t
}

/// Fig. 12: execution time vs `p` (m = 20). RCM is reported separately —
/// it is a one-off transformation shared across all `p`.
pub fn fig12(ctx: &ExperimentContext) -> Table {
    let mut t = Table::new(
        "Fig. 12: execution time vs p (m = 20), seconds",
        &["dataset", "p", "CAHD", "PM", "RCM (one-off)"],
    );
    for id in DatasetId::ALL {
        let prep = prepare(ctx.dataset(id), UnsymOptions::default());
        let sens = select_sensitive(&prep.data, 20, 20, ctx.sub_seed("fig12-sens"));
        for p in [4usize, 8, 12, 16, 20] {
            let cahd_res = run_cahd(&prep, &sens, p, 3).expect("feasible");
            let pm_res = run_pm(&prep.data, &sens, p).expect("feasible");
            t.row(&[
                id.name().into(),
                p.to_string(),
                fmt_secs(cahd_res.time),
                fmt_secs(pm_res.time),
                fmt_secs(prep.band.rcm_time),
            ]);
        }
    }
    write_csv(ctx, &t, "fig12");
    t
}

/// Fig. 13: the effect of the candidate-list width `alpha` on utility and
/// time (BMS2-like, m = 10, p = 10).
pub fn fig13(ctx: &ExperimentContext) -> Table {
    let mut t = Table::new(
        "Fig. 13: KL divergence and time vs alpha (BMS2-like, m = 10, p = 10)",
        &["alpha", "CAHD KL", "CAHD secs"],
    );
    let prep = prepare(ctx.dataset(DatasetId::Bms2), UnsymOptions::default());
    let sens = select_sensitive(&prep.data, 10, 20, ctx.sub_seed("fig13-sens"));
    for alpha in [1usize, 2, 3, 4, 5] {
        let res = run_cahd(&prep, &sens, 10, alpha).expect("feasible");
        verify_published(&prep.data, &sens, &res.published, 10).expect("valid");
        let kl = kl_of(
            &prep.data,
            &sens,
            &res.published,
            4,
            ctx.sub_seed("fig13-q"),
        );
        t.row(&[
            alpha.to_string(),
            format!("{:.4}", kl.mean_kl),
            fmt_secs(res.time),
        ]);
    }
    write_csv(ctx, &t, "fig13");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExperimentContext {
        ExperimentContext {
            scale: 0.02,
            seed: 7,
            out_dir: None,
        }
    }

    #[test]
    fn table1_has_both_datasets() {
        let t = table1(&tiny_ctx());
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn fig9_shape() {
        let t = fig9(&tiny_ctx());
        assert_eq!(t.n_rows(), 10); // 2 datasets x 5 p values
    }

    #[test]
    fn fig13_shape() {
        let t = fig13(&tiny_ctx());
        assert_eq!(t.n_rows(), 5);
    }
}
