//! Shared method-execution helpers for the experiment harness.
//!
//! The RCM transformation is a one-off cost per dataset (the paper reports
//! it separately in Fig. 12), so experiments that sweep `p`, `m`, `r` or
//! `alpha` prepare a dataset once with [`prepare`] and run CAHD repeatedly
//! on the band-ordered copy.

use std::time::{Duration, Instant};

use cahd_core::{cahd, cahd_sharded, CahdConfig, CahdError, ParallelConfig, PublishedDataset};
use cahd_data::{SensitiveSet, TransactionSet};
use cahd_eval::{evaluate_workload, generate_workload_seeded, ReconstructionSummary};
use cahd_rcm::{reduce_unsymmetric, BandReduction, UnsymOptions};

use cahd_baselines::{perm_mondrian, random_grouping, PmConfig};

/// A dataset with its band reorganization precomputed.
pub struct PreparedDataset {
    /// The original transaction set.
    pub data: TransactionSet,
    /// The RCM reduction (row/column permutations, band stats, timing).
    pub band: BandReduction,
    /// The band-ordered copy CAHD consumes.
    pub permuted: TransactionSet,
}

/// Runs RCM once and caches the permuted dataset.
pub fn prepare(data: TransactionSet, options: UnsymOptions) -> PreparedDataset {
    let band = reduce_unsymmetric(data.matrix(), options);
    let permuted = data.permute(&band.row_perm);
    PreparedDataset {
        data,
        band,
        permuted,
    }
}

/// The outcome of one anonymization run.
pub struct MethodResult {
    /// The release (members refer to original transaction indices).
    pub published: PublishedDataset,
    /// Wall-clock time of the grouping phase (RCM excluded, as in
    /// Fig. 12).
    pub time: Duration,
}

/// Runs CAHD on a prepared dataset (group formation timed alone).
pub fn run_cahd(
    prep: &PreparedDataset,
    sensitive: &SensitiveSet,
    p: usize,
    alpha: usize,
) -> Result<MethodResult, CahdError> {
    let t0 = Instant::now();
    let (mut published, _) = cahd(
        &prep.permuted,
        sensitive,
        &CahdConfig::new(p).with_alpha(alpha),
    )?;
    let time = t0.elapsed();
    for g in &mut published.groups {
        for m in &mut g.members {
            *m = prep.band.row_perm.new_to_old(*m as usize) as u32;
        }
    }
    Ok(MethodResult { published, time })
}

/// Runs the sharded parallel CAHD on a prepared dataset (group formation
/// timed alone, as in [`run_cahd`]).
pub fn run_cahd_sharded(
    prep: &PreparedDataset,
    sensitive: &SensitiveSet,
    p: usize,
    alpha: usize,
    parallel: ParallelConfig,
) -> Result<MethodResult, CahdError> {
    let t0 = Instant::now();
    let (mut published, _) = cahd_sharded(
        &prep.permuted,
        sensitive,
        &CahdConfig::new(p).with_alpha(alpha),
        &parallel,
    )?;
    let time = t0.elapsed();
    for g in &mut published.groups {
        for m in &mut g.members {
            *m = prep.band.row_perm.new_to_old(*m as usize) as u32;
        }
    }
    Ok(MethodResult { published, time })
}

/// Runs the PermMondrian baseline.
pub fn run_pm(
    data: &TransactionSet,
    sensitive: &SensitiveSet,
    p: usize,
) -> Result<MethodResult, CahdError> {
    let t0 = Instant::now();
    let (published, _) = perm_mondrian(data, sensitive, &PmConfig::new(p))?;
    Ok(MethodResult {
        published,
        time: t0.elapsed(),
    })
}

/// Runs the Anatomy-flavored random-grouping reference.
pub fn run_random(
    data: &TransactionSet,
    sensitive: &SensitiveSet,
    p: usize,
    seed: u64,
) -> Result<MethodResult, CahdError> {
    let t0 = Instant::now();
    let published = random_grouping(data, sensitive, p, seed)?;
    Ok(MethodResult {
        published,
        time: t0.elapsed(),
    })
}

/// Selects `m` sensitive items, reproducibly, keeping degree `p_max`
/// feasible.
pub fn select_sensitive(data: &TransactionSet, m: usize, p_max: usize, seed: u64) -> SensitiveSet {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    SensitiveSet::select_random(data, m, p_max, &mut rng)
        .expect("profiles always have enough low-support items")
}

/// Generates the paper's 100-query workload and evaluates the mean KL
/// divergence of a release.
pub fn kl_of(
    data: &TransactionSet,
    sensitive: &SensitiveSet,
    published: &PublishedDataset,
    r: usize,
    seed: u64,
) -> ReconstructionSummary {
    let queries = generate_workload_seeded(data, sensitive, r, 100, seed);
    evaluate_workload(data, published, &queries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cahd_core::verify_published;
    use cahd_data::profiles;

    fn tiny() -> (PreparedDataset, SensitiveSet) {
        let data = profiles::bms1_like(0.01, 3);
        let sens = select_sensitive(&data, 5, 20, 11);
        (prepare(data, UnsymOptions::default()), sens)
    }

    #[test]
    fn cahd_run_verifies_and_reports_time() {
        let (prep, sens) = tiny();
        let res = run_cahd(&prep, &sens, 4, 3).unwrap();
        verify_published(&prep.data, &sens, &res.published, 4).unwrap();
    }

    #[test]
    fn sharded_run_verifies_and_maps_members_back() {
        let (prep, sens) = tiny();
        let res = run_cahd_sharded(&prep, &sens, 4, 3, ParallelConfig::new(4, 2)).unwrap();
        verify_published(&prep.data, &sens, &res.published, 4).unwrap();
        // shards = 1 reproduces the sequential helper exactly.
        let seq = run_cahd(&prep, &sens, 4, 3).unwrap();
        let one = run_cahd_sharded(&prep, &sens, 4, 3, ParallelConfig::new(1, 4)).unwrap();
        assert_eq!(seq.published, one.published);
    }

    #[test]
    fn pm_and_random_verify() {
        let (prep, sens) = tiny();
        let pm = run_pm(&prep.data, &sens, 4).unwrap();
        verify_published(&prep.data, &sens, &pm.published, 4).unwrap();
        let rnd = run_random(&prep.data, &sens, 4, 5).unwrap();
        verify_published(&prep.data, &sens, &rnd.published, 4).unwrap();
    }

    #[test]
    fn kl_is_finite_and_nonnegative() {
        let (prep, sens) = tiny();
        let res = run_cahd(&prep, &sens, 4, 3).unwrap();
        let kl = kl_of(&prep.data, &sens, &res.published, 3, 7);
        assert!(kl.n_queries > 0);
        assert!(kl.mean_kl.is_finite());
        assert!(kl.mean_kl >= 0.0);
    }
}
