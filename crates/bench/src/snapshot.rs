//! Perf-snapshot emitter: serialize one traced reference run per
//! configuration into a `BENCH_<epoch-secs>.json` file.
//!
//! Unlike the Criterion benches (statistical micro-timings) and the
//! `experiments` binary (paper tables), a snapshot is a single cheap
//! end-to-end measurement designed to be committed or archived as a CI
//! artifact and diffed across commits: phase wall-clocks from the span
//! tree plus the deterministic work counters (pivots, candidate scans),
//! so a perf regression can be split into "doing more work" vs "doing
//! the same work slower". See `docs/OBSERVABILITY.md` for how to read
//! the file.

use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use cahd_core::pipeline::{Anonymizer, AnonymizerConfig};
use cahd_core::shard::ParallelConfig;
use cahd_data::{profiles, SensitiveSet};
use cahd_obs::{memtrack, Recorder};
use cahd_rcm::OrderingStrategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One traced reference run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SnapshotEntry {
    /// Workload id, e.g. `bms1/p4/shards1`.
    pub name: String,
    /// Dataset size (transactions).
    pub n_transactions: u64,
    /// Dataset universe (items).
    pub n_items: u64,
    /// Privacy degree.
    pub p: u64,
    /// Shard count (1 = sequential).
    pub shards: u64,
    /// End-to-end pipeline wall-clock, milliseconds.
    pub total_ms: f64,
    /// RCM phase wall-clock (span `pipeline/rcm`), milliseconds.
    pub rcm_ms: f64,
    /// Group-formation wall-clock (span `pipeline/group`), milliseconds.
    pub group_ms: f64,
    /// Groups in the release.
    pub groups: u64,
    /// Deterministic work: pivots scanned by the greedy engine.
    pub pivots_scanned: u64,
    /// Deterministic work: candidate-transaction scans.
    pub candidates_scanned: u64,
    /// Peak allocator high-water mark during the run, bytes. Zero when
    /// the emitting binary does not register
    /// [`cahd_obs::TrackingAllocator`] (`perf_snapshot` does).
    pub peak_alloc_bytes: u64,
    /// Allocation count during the run; like the work counters this is a
    /// "doing more work" signal, but for the allocator.
    pub allocs: u64,
}

/// A full snapshot file.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PerfSnapshot {
    /// Unix timestamp (seconds) the snapshot was taken.
    pub created_unix_s: u64,
    /// Whether the quick (CI-sized) workload set was used.
    pub quick: bool,
    /// Seed for dataset synthesis and sensitive-item selection.
    pub seed: u64,
    /// The runs.
    pub entries: Vec<SnapshotEntry>,
}

/// Milliseconds of a span, 0 when absent.
fn span_ms(trace: &cahd_obs::TraceReport, path: &str) -> f64 {
    trace.span(path).map_or(0.0, |s| s.total_ns as f64 / 1e6)
}

/// Runs one traced reference configuration. The pipeline runs five
/// times and each phase timing records its fastest observation (the work
/// counters are deterministic across repeats, so the repeats only damp
/// scheduler noise): per-phase minima track the cost of the work itself
/// rather than whichever run the scheduler favoured overall.
#[allow(clippy::too_many_arguments)]
fn run_entry(
    name: &str,
    data: &cahd_data::TransactionSet,
    p: usize,
    alpha: usize,
    shards: usize,
    seed: u64,
    ordering: OrderingStrategy,
    ordering_threads: usize,
    hub_cap: Option<u32>,
) -> SnapshotEntry {
    let mut rng = StdRng::seed_from_u64(seed);
    let sensitive = SensitiveSet::select_random(data, 4, p, &mut rng)
        .expect("reference profiles admit 4 sensitive items");
    let mut cfg = AnonymizerConfig::with_privacy_degree(p)
        .with_ordering(ordering)
        .with_hub_cap(hub_cap);
    cfg.cahd = cfg.cahd.with_alpha(alpha);
    if shards > 1 {
        cfg = cfg.with_parallel(ParallelConfig::new(shards, 2));
    }
    cfg.rcm.threads = cfg.rcm.threads.max(ordering_threads);
    let mut best: Option<SnapshotEntry> = None;
    for _ in 0..5 {
        // Re-arm the allocator high-water mark so each repeat measures
        // its own peak above the current live set, not a stale maximum
        // from an earlier repeat or workload. All zeros when the binary
        // does not run the tracking allocator.
        memtrack::reset_peak();
        let mem_before = memtrack::stats();
        let rec = Recorder::new();
        let res = Anonymizer::new(cfg)
            .anonymize_traced(data, &sensitive, &rec)
            .expect("reference workload is feasible");
        let mem_after = memtrack::stats();
        let trace = res.trace.expect("traced run yields a report");
        let entry = SnapshotEntry {
            name: name.to_string(),
            n_transactions: data.n_transactions() as u64,
            n_items: data.n_items() as u64,
            p: p as u64,
            shards: shards as u64,
            total_ms: res.total_time.as_secs_f64() * 1e3,
            rcm_ms: span_ms(&trace, "pipeline/rcm"),
            group_ms: span_ms(&trace, "pipeline/group"),
            groups: res.published.n_groups() as u64,
            pivots_scanned: trace.counter_or_zero("core.pivots_scanned"),
            candidates_scanned: trace.counter_or_zero("core.candidates_scanned"),
            peak_alloc_bytes: mem_after.peak_bytes,
            allocs: mem_after.allocs - mem_before.allocs,
        };
        best = Some(match best.take() {
            None => entry,
            Some(b) => SnapshotEntry {
                total_ms: b.total_ms.min(entry.total_ms),
                rcm_ms: b.rcm_ms.min(entry.rcm_ms),
                group_ms: b.group_ms.min(entry.group_ms),
                // The first repeat pays one-off lazy initialization; the
                // minima track the steady-state footprint, mirroring the
                // per-phase timing minima.
                peak_alloc_bytes: b.peak_alloc_bytes.min(entry.peak_alloc_bytes),
                allocs: b.allocs.min(entry.allocs),
                ..b
            },
        });
    }
    best.expect("three runs produce a best entry")
}

/// Collects the snapshot: the BMS-like reference profiles plus the dense
/// kernel workload at `--quick` (CI) or full size, each sequential and
/// sharded. The `dense` entries exist to track the similarity kernel's
/// packed-bitset path (see `cahd_core::kernel`); the BMS entries keep its
/// long-tail sparse path honest.
pub fn collect(quick: bool, seed: u64) -> PerfSnapshot {
    collect_filtered(quick, seed, None)
}

/// Like [`collect`], but only runs the entries whose name starts with
/// `only` (e.g. `bms1` or `bms1/p4/ord-`). Skipped workloads are never
/// executed, so a targeted re-measure costs a fraction of the full set;
/// the resulting partial snapshot diffs cleanly because `bench_diff`
/// ignores entries missing from one side.
pub fn collect_filtered(quick: bool, seed: u64, only: Option<&str>) -> PerfSnapshot {
    let keep = |name: &str| only.is_none_or(|prefix| name.starts_with(prefix));
    let scale = if quick { 0.02 } else { 0.25 };
    let created_unix_s = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let bms1 = profiles::bms1_like(scale, seed);
    let bms2 = profiles::bms2_like(scale, seed);
    let dense = profiles::dense_like(scale, seed);
    let mut entries = Vec::new();
    // The dense workload runs at p = 8, alpha = 6: candidate lists hold
    // `alpha * p` transactions, so the higher degree and wider window
    // keep candidate scoring — the part the kernel accelerates — the
    // dominant group-phase cost.
    for (profile, data, p, alpha) in [
        ("bms1", &bms1, 4usize, 3usize),
        ("bms2", &bms2, 4, 3),
        ("dense", &dense, 8, 6),
    ] {
        for shards in [1usize, 4] {
            let name = format!("{profile}/p{p}/shards{shards}");
            if !keep(&name) {
                continue;
            }
            entries.push(run_entry(
                &name,
                data,
                p,
                alpha,
                shards,
                seed,
                OrderingStrategy::Rcm,
                1,
                None,
            ));
        }
    }
    // Ordering-strategy sweep on bms1 (the workload whose RCM phase the
    // frontier-parallel engine targets): one entry per strategy and
    // ordering thread count, named `bms1/p4/ord-<strategy>-t<threads>`.
    // `rcm` is byte-identical to the reference at any thread count; `bfs`
    // and `cluster` trade band quality for ordering speed (their release
    // quality is pinned by the `ordering_quality` bench test).
    for strategy in OrderingStrategy::ALL {
        for threads in [1usize, 8] {
            let name = format!("bms1/p4/ord-{}-t{threads}", strategy.name());
            if !keep(&name) {
                continue;
            }
            entries.push(run_entry(
                &name, &bms1, 4, 3, 1, seed, strategy, threads, None,
            ));
        }
    }
    // Million-row implicit-ordering workload, full mode only (quick CI
    // snapshots must stay seconds-cheap). One entry, rcm at 8 ordering
    // threads, no hub cap: the profile whose explicit `A x A^T` is out
    // of reach rides the inverted index, whose segment-deduplicated
    // traversals keep every sweep at O(nnz) — only the one-shot exact
    // degree pass pays sum(support^2). The rcm_ms column tracks the
    // "orders a million rows in single-digit seconds" contract, with no
    // quality tradeoff (see crates/bench/tests/questxl_scale.rs to
    // remeasure, capped or uncapped). Generated lazily so `--only`
    // filters skip the million-row synthesis too.
    if !quick {
        let name = "questxl/p4/ord-rcm-t8";
        if keep(name) {
            let questxl = profiles::quest_xl_like(scale, seed);
            entries.push(run_entry(
                name,
                &questxl,
                4,
                3,
                1,
                seed,
                OrderingStrategy::Rcm,
                8,
                None,
            ));
        }
    }
    PerfSnapshot {
        created_unix_s,
        quick,
        seed,
        entries,
    }
}

impl PerfSnapshot {
    /// The canonical file name, `BENCH_<epoch-secs>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.created_unix_s)
    }

    /// Writes the snapshot into `dir` and re-reads it to prove the file
    /// parses back to the same value. Returns the written path.
    pub fn write_validated(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        let text = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::other(format!("snapshot does not serialize: {e}")))?;
        std::fs::write(&path, text)?;
        let back: PerfSnapshot = serde_json::from_str(&std::fs::read_to_string(&path)?)
            .map_err(|e| std::io::Error::other(format!("snapshot does not re-parse: {e}")))?;
        if back != *self {
            return Err(std::io::Error::other(
                "snapshot re-parses to a different value",
            ));
        }
        Ok(path)
    }

    /// One line per entry, for terminal output.
    pub fn render_human(&self) -> String {
        let mut out = format!(
            "perf snapshot @{} ({} mode)\n",
            self.created_unix_s,
            if self.quick { "quick" } else { "full" }
        );
        for e in &self.entries {
            out.push_str(&format!(
                "  {:<20} n={:<6} total {:>8.1} ms  rcm {:>8.1} ms  group {:>8.1} ms  \
                 pivots {:>6}  groups {:>5}  peak {:>7.2} MiB  allocs {:>8}\n",
                e.name,
                e.n_transactions,
                e.total_ms,
                e.rcm_ms,
                e.group_ms,
                e.pivots_scanned,
                e.groups,
                e.peak_alloc_bytes as f64 / (1024.0 * 1024.0),
                e.allocs,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_snapshot_collects_writes_and_revalidates() {
        let snap = collect(true, 7);
        assert_eq!(snap.entries.len(), 12);
        for strategy in OrderingStrategy::ALL {
            for threads in [1, 8] {
                let name = format!("bms1/p4/ord-{}-t{threads}", strategy.name());
                assert!(
                    snap.entries.iter().any(|e| e.name == name),
                    "missing ordering entry {name}"
                );
            }
        }
        for e in &snap.entries {
            assert!(e.pivots_scanned > 0, "{}", e.name);
            assert!(e.total_ms >= e.group_ms, "{}", e.name);
            // This test binary does not register the tracking allocator,
            // so the memory columns must stay at their inert zeros.
            assert_eq!((e.peak_alloc_bytes, e.allocs), (0, 0), "{}", e.name);
        }
        // Sequential and sharded runs of a profile agree on the dataset.
        assert_eq!(
            snap.entries[0].n_transactions,
            snap.entries[1].n_transactions
        );
        let dir = std::env::temp_dir().join(format!("cahd_snap_{}", std::process::id()));
        let path = snap.write_validated(&dir).unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with("BENCH_"));
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn only_prefix_restricts_the_collected_entries() {
        let snap = collect_filtered(true, 7, Some("bms1/p4/ord-"));
        assert_eq!(snap.entries.len(), 6);
        assert!(snap
            .entries
            .iter()
            .all(|e| e.name.starts_with("bms1/p4/ord-")));
        // An unmatched prefix yields an empty (but valid) snapshot.
        assert!(collect_filtered(true, 7, Some("nope")).entries.is_empty());
    }
}
