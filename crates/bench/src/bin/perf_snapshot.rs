//! Emits a `BENCH_<epoch-secs>.json` perf snapshot of the traced
//! reference workloads (see `cahd_bench::snapshot`).
//!
//! ```text
//! perf_snapshot [--quick] [--seed N] [--out-dir DIR] [--only PREFIX]
//! ```
//!
//! `--quick` runs the CI-sized workload set; the default is the 0.25-scale
//! profile used by the paper reproduction. `--only PREFIX` runs only the
//! entries whose name starts with the prefix (a targeted re-measure; the
//! skipped workloads never execute). The file is re-read after writing,
//! so a zero exit status also certifies the schema round-trips.
//!
//! This binary registers [`cahd_obs::TrackingAllocator`], so each entry's
//! `peak_alloc_bytes`/`allocs` columns carry real allocator readings —
//! the same workloads snapshot as zeros from a binary without it.

use std::path::PathBuf;
use std::process::ExitCode;

use cahd_bench::snapshot;
use cahd_obs::TrackingAllocator;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

const USAGE: &str = "usage: perf_snapshot [--quick] [--seed N] [--out-dir DIR] [--only PREFIX]";

fn main() -> ExitCode {
    let mut quick = false;
    let mut seed = 42u64;
    let mut out_dir = PathBuf::from(".");
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => seed = v,
                None => return usage_error("--seed needs an integer"),
            },
            "--out-dir" => match args.next() {
                Some(v) => out_dir = PathBuf::from(v),
                None => return usage_error("--out-dir needs a directory"),
            },
            "--only" => match args.next() {
                Some(v) => only = Some(v),
                None => return usage_error("--only needs an entry-name prefix"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }
    let snap = snapshot::collect_filtered(quick, seed, only.as_deref());
    print!("{}", snap.render_human());
    match snap.write_validated(&out_dir) {
        Ok(path) => {
            println!("snapshot written to {}", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n{USAGE}");
    ExitCode::from(2)
}
