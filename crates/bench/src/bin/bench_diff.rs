//! Diffs two `BENCH_<epoch-secs>.json` perf snapshots (see
//! `cahd_bench::snapshot`), entry by entry.
//!
//! ```text
//! bench_diff <before.json> <after.json> [--threshold PCT] [--fail-on-regression]
//! ```
//!
//! For every workload present in both files the tool prints the per-phase
//! wall-clock deltas (total / rcm / group), the deterministic work
//! counters (pivots, candidate scans, allocation counts), and the
//! allocator high-water mark, so a slowdown can be split into "doing more
//! work" vs "doing the same work slower". Phases slower by more than the
//! threshold (default 10%) are flagged `REGRESSION`, and so is a
//! `peak_alloc_bytes` grown past the same threshold — a memory regression
//! gates exactly like a timing one; `--fail-on-regression` turns any flag
//! into a non-zero exit status.
//! Entries present in only one file are listed but never flagged.
//! `--only PREFIX` restricts the diff (and the regression gate) to the
//! entries whose name starts with the prefix — CI uses it to gate the
//! ordering-targeted `bms1` entries without tripping on the noisier
//! large workloads.

use std::process::ExitCode;

use cahd_bench::snapshot::{PerfSnapshot, SnapshotEntry};

const USAGE: &str = "usage: bench_diff <before.json> <after.json> [--threshold PCT] \
[--only PREFIX] [--fail-on-regression]";

/// Phase timings compared between snapshots, as `(label, before, after)`.
fn phases(before: &SnapshotEntry, after: &SnapshotEntry) -> [(&'static str, f64, f64); 3] {
    [
        ("total", before.total_ms, after.total_ms),
        ("rcm", before.rcm_ms, after.rcm_ms),
        ("group", before.group_ms, after.group_ms),
    ]
}

/// Signed percentage change from `before` to `after`; `None` when the
/// baseline is too small for a meaningful ratio (< 10 microseconds).
fn pct_change(before: f64, after: f64) -> Option<f64> {
    (before > 0.01).then(|| (after - before) / before * 100.0)
}

fn load(path: &str) -> Result<PerfSnapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path} is not a perf snapshot: {e}"))
}

/// Diffs one workload present in both snapshots. Returns the number of
/// flagged phase regressions.
fn diff_entry(before: &SnapshotEntry, after: &SnapshotEntry, threshold: f64) -> usize {
    let mut regressions = 0;
    println!("{}", before.name);
    for (label, b, a) in phases(before, after) {
        let (delta, flag) = match pct_change(b, a) {
            Some(pct) => {
                let flag = if pct > threshold {
                    regressions += 1;
                    "  REGRESSION"
                } else {
                    ""
                };
                (format!("{pct:+7.1}%"), flag)
            }
            None => ("     n/a".to_string(), ""),
        };
        println!("  {label:<6} {b:>9.3} ms -> {a:>9.3} ms  {delta}{flag}");
    }
    // The allocator high-water mark gates like a timing phase. Baselines
    // below 1 KiB (an emitter without the tracking allocator records 0)
    // yield no meaningful ratio and are never flagged.
    {
        let (b, a) = (before.peak_alloc_bytes, after.peak_alloc_bytes);
        let (delta, flag) = match (b >= 1024).then(|| (a as f64 - b as f64) / b as f64 * 100.0) {
            Some(pct) => {
                let flag = if pct > threshold {
                    regressions += 1;
                    "  REGRESSION"
                } else {
                    ""
                };
                (format!("{pct:+7.1}%"), flag)
            }
            None => ("     n/a".to_string(), ""),
        };
        println!(
            "  {:<6} {:>9.3} MiB -> {:>9.3} MiB  {delta}{flag}",
            "peak",
            b as f64 / (1024.0 * 1024.0),
            a as f64 / (1024.0 * 1024.0),
        );
    }
    for (label, b, a) in [
        ("pivots", before.pivots_scanned, after.pivots_scanned),
        (
            "cand-scans",
            before.candidates_scanned,
            after.candidates_scanned,
        ),
        ("allocs", before.allocs, after.allocs),
        ("groups", before.groups, after.groups),
    ] {
        if b == a {
            println!("  {label:<10} {b:>10}  (unchanged)");
        } else {
            println!("  {label:<10} {b:>10} -> {a}");
        }
    }
    regressions
}

fn run(before: &PerfSnapshot, after: &PerfSnapshot, threshold: f64, only: Option<&str>) -> usize {
    println!(
        "comparing @{} ({}) -> @{} ({}), threshold {threshold}%",
        before.created_unix_s,
        if before.quick { "quick" } else { "full" },
        after.created_unix_s,
        if after.quick { "quick" } else { "full" },
    );
    if before.quick != after.quick {
        println!("note: snapshots use different workload sizes; timings are not comparable");
    }
    let keep = |name: &str| only.is_none_or(|p| name.starts_with(p));
    let mut regressions = 0;
    for b in before.entries.iter().filter(|b| keep(&b.name)) {
        match after.entries.iter().find(|a| a.name == b.name) {
            Some(a) => regressions += diff_entry(b, a, threshold),
            None => println!("{}\n  only in before-snapshot", b.name),
        }
    }
    for a in after.entries.iter().filter(|a| keep(&a.name)) {
        if !before.entries.iter().any(|b| b.name == a.name) {
            println!(
                "{}\n  only in after-snapshot: total {:>9.3} ms  rcm {:>9.3} ms  group {:>9.3} ms",
                a.name, a.total_ms, a.rcm_ms, a.group_ms
            );
        }
    }
    if regressions > 0 {
        println!("{regressions} phase regression(s) above {threshold}%");
    } else {
        println!("no phase regressions above {threshold}%");
    }
    regressions
}

fn main() -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut threshold = 10.0f64;
    let mut only: Option<String> = None;
    let mut fail_on_regression = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 => threshold = v,
                _ => return usage_error("--threshold needs a non-negative number"),
            },
            "--only" => match args.next() {
                Some(v) => only = Some(v),
                None => return usage_error("--only needs an entry-name prefix"),
            },
            "--fail-on-regression" => fail_on_regression = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                return usage_error(&format!("unknown argument {other:?}"))
            }
            path => paths.push(path.to_string()),
        }
    }
    let [before_path, after_path] = paths.as_slice() else {
        return usage_error("expected exactly two snapshot files");
    };
    let (before, after) = match (load(before_path), load(after_path)) {
        (Ok(b), Ok(a)) => (b, a),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let regressions = run(&before, &after, threshold, only.as_deref());
    if fail_on_regression && regressions > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n{USAGE}");
    ExitCode::from(2)
}
