//! Command-line driver that regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--scale F] [--seed N] [--out DIR] [--quiet-panels] CMD...
//!   CMD: table1 table2 fig6 fig9 fig10 fig11 fig12 fig13 all
//! ```
//!
//! `--scale` multiplies the BMS transaction counts (default 0.25; 1.0 is
//! paper scale). `--out` writes CSV (and PGM, for fig6) artifacts.

use std::path::PathBuf;
use std::process::ExitCode;

use cahd_bench::context::ExperimentContext;
use cahd_bench::{experiments, extensions};

const USAGE: &str = "usage: experiments [--scale F] [--seed N] [--out DIR] [--quiet-panels] \
                     {table1|table2|fig6|fig9..fig13|ext-orderings|ext-generalization|ext-mining|ext-weighted|ext-attack|ext-refine|ext-skew|all}...";

fn main() -> ExitCode {
    let mut ctx = ExperimentContext::default();
    let mut cmds: Vec<String> = Vec::new();
    let mut quiet_panels = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => ctx.scale = v,
                _ => return usage_error("--scale needs a positive number"),
            },
            "--seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => ctx.seed = v,
                None => return usage_error("--seed needs an integer"),
            },
            "--out" => match args.next() {
                Some(v) => ctx.out_dir = Some(PathBuf::from(v)),
                None => return usage_error("--out needs a directory"),
            },
            "--quiet-panels" => quiet_panels = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown flag {other}"));
            }
            cmd => cmds.push(cmd.to_string()),
        }
    }
    if cmds.is_empty() {
        return usage_error("no command given");
    }
    if cmds.iter().any(|c| c == "all") {
        cmds = [
            "table1",
            "table2",
            "fig6",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "ext-orderings",
            "ext-generalization",
            "ext-mining",
            "ext-weighted",
            "ext-attack",
            "ext-refine",
            "ext-skew",
        ]
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    }

    eprintln!(
        "# scale {}, seed {}, out {:?}",
        ctx.scale, ctx.seed, ctx.out_dir
    );
    for cmd in &cmds {
        let t0 = std::time::Instant::now();
        match cmd.as_str() {
            "table1" => println!("{}", experiments::table1(&ctx).render()),
            "table2" => println!("{}", experiments::table2(&ctx).render()),
            "fig6" => {
                let (table, panels) = experiments::fig6(&ctx);
                println!("{}", table.render());
                if !quiet_panels {
                    for p in panels {
                        println!("{p}");
                    }
                }
            }
            "fig9" => println!("{}", experiments::fig9(&ctx).render()),
            "fig10" => println!("{}", experiments::fig10(&ctx).render()),
            "fig11" => println!("{}", experiments::fig11(&ctx).render()),
            "fig12" => println!("{}", experiments::fig12(&ctx).render()),
            "fig13" => println!("{}", experiments::fig13(&ctx).render()),
            "ext-orderings" => println!("{}", extensions::ext_orderings(&ctx).render()),
            "ext-generalization" => {
                println!("{}", extensions::ext_generalization(&ctx).render());
            }
            "ext-mining" => println!("{}", extensions::ext_mining(&ctx).render()),
            "ext-weighted" => println!("{}", extensions::ext_weighted(&ctx).render()),
            "ext-attack" => println!("{}", extensions::ext_attack(&ctx).render()),
            "ext-refine" => println!("{}", extensions::ext_refine(&ctx).render()),
            "ext-skew" => println!("{}", extensions::ext_skew(&ctx).render()),
            other => return usage_error(&format!("unknown command {other}")),
        }
        eprintln!("# {cmd} done in {:.1}s", t0.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n{USAGE}");
    ExitCode::from(2)
}
