//! Method-vs-method timing: the CAHD / PM comparison of Fig. 12 at a fixed
//! setting, plus the PM split-heuristic ablation.

use criterion::{criterion_group, criterion_main, Criterion};

use cahd_baselines::{perm_mondrian, random_grouping, PmConfig};
use cahd_bench::runs::{prepare, select_sensitive};
use cahd_core::{cahd, CahdConfig};
use cahd_data::profiles;
use cahd_rcm::UnsymOptions;

fn bench_methods(c: &mut Criterion) {
    let prep = prepare(profiles::bms1_like(0.1, 7), UnsymOptions::default());
    let sens = select_sensitive(&prep.data, 20, 20, 11);
    let mut g = c.benchmark_group("methods/p10");
    g.sample_size(20);
    g.bench_function("cahd_grouping", |b| {
        b.iter(|| cahd(&prep.permuted, &sens, &CahdConfig::new(10)).unwrap());
    });
    g.bench_function("perm_mondrian", |b| {
        b.iter(|| perm_mondrian(&prep.data, &sens, &PmConfig::new(10)).unwrap());
    });
    g.bench_function("random_grouping", |b| {
        b.iter(|| random_grouping(&prep.data, &sens, 10, 3).unwrap());
    });
    g.finish();
}

fn bench_pm_split_heuristics(c: &mut Criterion) {
    let data = profiles::bms1_like(0.1, 7);
    let sens = select_sensitive(&data, 20, 20, 11);
    let mut g = c.benchmark_group("pm/split_heuristic");
    g.sample_size(20);
    g.bench_function("enhanced", |b| {
        b.iter(|| perm_mondrian(&data, &sens, &PmConfig::new(10)).unwrap());
    });
    g.bench_function("plain_cardinality", |b| {
        let cfg = PmConfig {
            enhanced_split: false,
            ..PmConfig::new(10)
        };
        b.iter(|| perm_mondrian(&data, &sens, &cfg).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_methods, bench_pm_split_heuristics);
criterion_main!(benches);
