//! Evaluation-side benchmarks: the 100-query reconstruction workload that
//! backs every KL figure, and the re-identification experiment of Table II.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use cahd_bench::runs::{prepare, run_cahd, select_sensitive};
use cahd_data::profiles;
use cahd_eval::{evaluate_workload, generate_workload_seeded, reidentification_probability};
use cahd_rcm::UnsymOptions;

fn bench_workload_evaluation(c: &mut Criterion) {
    let prep = prepare(profiles::bms1_like(0.1, 7), UnsymOptions::default());
    let sens = select_sensitive(&prep.data, 10, 20, 11);
    let release = run_cahd(&prep, &sens, 10, 3).unwrap().published;
    let mut g = c.benchmark_group("eval/workload_r");
    g.sample_size(20);
    for r in [2usize, 4, 8] {
        let queries = generate_workload_seeded(&prep.data, &sens, r, 100, 5);
        g.bench_with_input(BenchmarkId::from_parameter(r), &queries, |b, q| {
            b.iter(|| evaluate_workload(&prep.data, &release, q));
        });
    }
    g.finish();
}

fn bench_reidentification(c: &mut Criterion) {
    let data = profiles::bms2_like(0.05, 7);
    let mut g = c.benchmark_group("eval/reident_k");
    g.sample_size(20);
    for k in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(3);
                reidentification_probability(&data, None, k, 2_000, &mut rng)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_workload_evaluation, bench_reidentification);
criterion_main!(benches);
