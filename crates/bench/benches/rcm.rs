//! RCM bandwidth-reduction benchmarks (the one-off cost of Fig. 12 and the
//! explicit-vs-implicit `A x A^T` ablation from DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cahd_data::profiles;
use cahd_rcm::{
    band_order_seq, reduce_unsymmetric, reverse_cuthill_mckee, reverse_cuthill_mckee_linear,
    AatMethod, OrderingStrategy, UnsymOptions,
};
use cahd_sparse::RowGraph;

fn bench_rcm_correlation(c: &mut Criterion) {
    let mut g = c.benchmark_group("rcm/fig6_correlation");
    for corr in [0.1, 0.5, 0.9] {
        let data = profiles::fig6_like(corr, 7);
        g.bench_with_input(BenchmarkId::from_parameter(corr), &data, |b, data| {
            b.iter(|| reduce_unsymmetric(data.matrix(), UnsymOptions::default()));
        });
    }
    g.finish();
}

fn bench_rcm_dataset_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("rcm/bms1_scale");
    g.sample_size(10);
    for scale in [0.05, 0.1, 0.2] {
        let data = profiles::bms1_like(scale, 7);
        g.bench_with_input(BenchmarkId::from_parameter(scale), &data, |b, data| {
            b.iter(|| reduce_unsymmetric(data.matrix(), UnsymOptions::default()));
        });
    }
    g.finish();
}

fn bench_explicit_vs_implicit(c: &mut Criterion) {
    let data = profiles::bms1_like(0.1, 7);
    let mut g = c.benchmark_group("rcm/aat_representation");
    g.sample_size(10);
    g.bench_function("explicit", |b| {
        b.iter(|| {
            let graph = RowGraph::build(data.matrix(), usize::MAX);
            band_order_seq(&graph, OrderingStrategy::Rcm)
        });
    });
    g.bench_function("implicit", |b| {
        b.iter(|| {
            let graph = RowGraph::build(data.matrix(), 0);
            band_order_seq(&graph, OrderingStrategy::Rcm)
        });
    });
    g.finish();
}

fn bench_linear_vs_comparison(c: &mut Criterion) {
    let data = profiles::bms1_like(0.1, 7);
    let graph = RowGraph::build_explicit(data.matrix());
    let mut g = c.benchmark_group("rcm/cm_variant");
    g.sample_size(10);
    g.bench_function("comparison_sort", |b| {
        b.iter(|| reverse_cuthill_mckee(&graph));
    });
    g.bench_function("counting_sort", |b| {
        b.iter(|| reverse_cuthill_mckee_linear(&graph));
    });
    g.finish();
}

fn bench_aat_methods(c: &mut Criterion) {
    let data = profiles::bms1_like(0.1, 7);
    let mut g = c.benchmark_group("rcm/aat_method");
    g.sample_size(10);
    g.bench_function("product", |b| {
        b.iter(|| reduce_unsymmetric(data.matrix(), UnsymOptions::default()));
    });
    g.bench_function("sum", |b| {
        b.iter(|| {
            reduce_unsymmetric(
                data.matrix(),
                UnsymOptions {
                    aat_method: AatMethod::Sum,
                    ..Default::default()
                },
            )
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_rcm_correlation,
    bench_rcm_dataset_scale,
    bench_explicit_vs_implicit,
    bench_linear_vs_comparison,
    bench_aat_methods
);
criterion_main!(benches);
