//! Synthetic-data generator throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cahd_data::profiles;
use cahd_data::QuestGenerator;

fn bench_profiles(c: &mut Criterion) {
    let mut g = c.benchmark_group("quest/profiles");
    g.sample_size(10);
    g.bench_function("bms1_scale0.1", |b| {
        b.iter(|| QuestGenerator::new(profiles::bms1_config(0.1), 7).generate());
    });
    g.bench_function("bms2_scale0.1", |b| {
        b.iter(|| QuestGenerator::new(profiles::bms2_config(0.1), 7).generate());
    });
    g.finish();
}

fn bench_fig6_correlations(c: &mut Criterion) {
    let mut g = c.benchmark_group("quest/fig6");
    for corr in [0.1, 0.5, 0.9] {
        g.bench_with_input(BenchmarkId::from_parameter(corr), &corr, |b, &corr| {
            b.iter(|| QuestGenerator::new(profiles::fig6_config(corr), 7).generate());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_profiles, bench_fig6_correlations);
criterion_main!(benches);
