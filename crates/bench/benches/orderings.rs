//! Row-ordering strategy benchmarks: RCM vs GPS vs MinHash vs
//! lexicographic on BMS-like data (cost side of the `ext-orderings`
//! experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cahd_data::profiles;
use cahd_rcm::RowOrder;

fn bench_orderings(c: &mut Criterion) {
    let data = profiles::bms1_like(0.1, 7);
    let mut g = c.benchmark_group("orderings/bms1");
    g.sample_size(10);
    for strat in RowOrder::ALL {
        if strat == RowOrder::Identity {
            continue;
        }
        g.bench_with_input(
            BenchmarkId::from_parameter(strat.name()),
            &strat,
            |b, &strat| b.iter(|| strat.order(data.matrix(), 11)),
        );
    }
    g.finish();
}

fn bench_orderings_correlated(c: &mut Criterion) {
    let data = profiles::fig6_like(0.9, 7);
    let mut g = c.benchmark_group("orderings/quest_corr0.9");
    g.sample_size(10);
    for strat in [RowOrder::Rcm, RowOrder::Gps, RowOrder::MinHash] {
        g.bench_with_input(
            BenchmarkId::from_parameter(strat.name()),
            &strat,
            |b, &strat| b.iter(|| strat.order(data.matrix(), 11)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_orderings, bench_orderings_correlated);
criterion_main!(benches);
