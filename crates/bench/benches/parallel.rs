//! Sharded-pipeline benchmarks: sequential CAHD vs the sharded parallel
//! entry point, the threaded `A x A^T` row-pattern build, and the threaded
//! KL evaluation loop. These entries give the BENCH json a perf trajectory
//! for the parallel path; speedups obviously depend on the host core count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cahd_bench::runs::{prepare, run_cahd_sharded, select_sensitive};
use cahd_core::{cahd, CahdConfig, ParallelConfig};
use cahd_data::profiles;
use cahd_eval::{evaluate_workload_threaded, generate_workload_seeded};
use cahd_rcm::UnsymOptions;
use cahd_sparse::RowGraph;

/// The largest fixture the bench suite exercises (same scale as the RCM
/// scale sweep's top point).
fn largest() -> cahd_data::TransactionSet {
    profiles::bms1_like(0.2, 7)
}

fn bench_sharded_cahd(c: &mut Criterion) {
    let prep = prepare(largest(), UnsymOptions::default());
    let sens = select_sensitive(&prep.data, 20, 20, 11);
    let p = 10;
    let mut g = c.benchmark_group("parallel/cahd_shards");
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| cahd(&prep.permuted, &sens, &CahdConfig::new(p)).unwrap());
    });
    for (shards, threads) in [(1usize, 1usize), (4, 1), (4, 4), (8, 4)] {
        let par = ParallelConfig::new(shards, threads);
        let label = format!("shards{shards}_threads{threads}");
        g.bench_with_input(BenchmarkId::from_parameter(label), &par, |b, &par| {
            b.iter(|| run_cahd_sharded(&prep, &sens, p, 3, par).unwrap());
        });
    }
    g.finish();
}

fn bench_threaded_aat(c: &mut Criterion) {
    let data = largest();
    let mut g = c.benchmark_group("parallel/aat_build");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| RowGraph::build_explicit_threaded(data.matrix(), threads));
            },
        );
    }
    g.finish();
}

fn bench_threaded_eval(c: &mut Criterion) {
    let data = largest();
    let sens = select_sensitive(&data, 10, 20, 11);
    let prep = prepare(data, UnsymOptions::default());
    let res = run_cahd_sharded(&prep, &sens, 10, 3, ParallelConfig::new(4, 2)).unwrap();
    let queries = generate_workload_seeded(&prep.data, &sens, 3, 100, 7);
    let mut g = c.benchmark_group("parallel/kl_eval");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    evaluate_workload_threaded(&prep.data, &res.published, &queries, threads)
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_sharded_cahd,
    bench_threaded_aat,
    bench_threaded_eval
);
criterion_main!(benches);
