//! CAHD group-formation benchmarks: the `p` sweep of Fig. 12 (grouping
//! phase only, RCM precomputed) and the `alpha` sweep of Fig. 13.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cahd_bench::runs::{prepare, select_sensitive};
use cahd_core::{cahd, CahdConfig};
use cahd_data::profiles;
use cahd_rcm::UnsymOptions;

fn bench_privacy_degree(c: &mut Criterion) {
    let prep = prepare(profiles::bms1_like(0.1, 7), UnsymOptions::default());
    let sens = select_sensitive(&prep.data, 20, 20, 11);
    let mut g = c.benchmark_group("cahd/privacy_degree");
    for p in [4usize, 10, 20] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| cahd(&prep.permuted, &sens, &CahdConfig::new(p)).unwrap());
        });
    }
    g.finish();
}

fn bench_alpha(c: &mut Criterion) {
    let prep = prepare(profiles::bms2_like(0.05, 7), UnsymOptions::default());
    let sens = select_sensitive(&prep.data, 10, 20, 11);
    let mut g = c.benchmark_group("cahd/alpha");
    for alpha in [1usize, 2, 3, 4, 5] {
        g.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &alpha| {
            b.iter(|| {
                cahd(
                    &prep.permuted,
                    &sens,
                    &CahdConfig::new(10).with_alpha(alpha),
                )
                .unwrap()
            });
        });
    }
    g.finish();
}

fn bench_sensitive_count(c: &mut Criterion) {
    let prep = prepare(profiles::bms1_like(0.1, 7), UnsymOptions::default());
    let mut g = c.benchmark_group("cahd/sensitive_items");
    for m in [5usize, 10, 20] {
        let sens = select_sensitive(&prep.data, m, 20, 11);
        g.bench_with_input(BenchmarkId::from_parameter(m), &sens, |b, sens| {
            b.iter(|| cahd(&prep.permuted, sens, &CahdConfig::new(10)).unwrap());
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_privacy_degree,
    bench_alpha,
    bench_sensitive_count
);
criterion_main!(benches);
