//! Golden band-quality and release-quality regression tests for the
//! ordering strategies (`--ordering {rcm,bfs,cluster}`).
//!
//! The frontier-parallel `rcm` strategy is byte-identical to the
//! sequential reference, so its quality is pinned exactly by the
//! equivalence suite; this file pins what the *alternative* strategies
//! are allowed to give up:
//!
//! * per-strategy rectangular-bandwidth bounds on a fixed BMS1-like
//!   workload (the band CAHD reads its candidate windows from), and
//! * a bounded end-to-end KL regression versus the RCM baseline on the
//!   paper's 100-query workload.
//!
//! The fixtures are deterministic (fixed profile scale and seed), so a
//! quality regression in any strategy fails `cargo test` outright.
//!
//! When the `CAHD_ORDERING` environment variable is set (the CI ordering
//! matrix does this) it overrides every [`UnsymOptions::ordering`]
//! request inside the engine, which would silently turn the three
//! prepared datasets into one; the cross-strategy comparisons are
//! skipped in that case — the matrix still runs the single-strategy
//! pipeline smoke below.

use cahd_bench::runs::{kl_of, prepare, run_cahd, select_sensitive, PreparedDataset};
use cahd_data::profiles;
use cahd_rcm::{OrderingStrategy, RowGraphMode, UnsymOptions};

const SEED: u64 = 42;
const SCALE: f64 = 0.02;
const P: usize = 4;
const M: usize = 4;
const R: usize = 4;

fn prepared(strategy: OrderingStrategy) -> PreparedDataset {
    let data = profiles::bms1_like(SCALE, SEED);
    let opts = UnsymOptions {
        ordering: strategy,
        ..UnsymOptions::default()
    };
    prepare(data, opts)
}

/// End-to-end mean KL of one strategy on the fixed workload.
fn mean_kl(prep: &PreparedDataset) -> f64 {
    let sensitive = select_sensitive(&prep.data, M, P, SEED);
    let res = run_cahd(prep, &sensitive, P, 3).expect("bms1-like workload is feasible");
    kl_of(&prep.data, &sensitive, &res.published, R, SEED).mean_kl
}

#[test]
fn bandwidth_bounds_per_strategy_on_bms1() {
    if OrderingStrategy::from_env().is_some() {
        eprintln!("CAHD_ORDERING set: skipping cross-strategy bandwidth comparison");
        return;
    }
    let rcm = prepared(OrderingStrategy::Rcm);
    let bfs = prepared(OrderingStrategy::Bfs);
    let cluster = prepared(OrderingStrategy::Cluster);
    let width = |p: &PreparedDataset| p.band.after.max_diag_distance;
    // Every strategy must actually reduce the band versus the raw input
    // order (the whole point of the phase) ...
    for (name, p) in [("rcm", &rcm), ("bfs", &bfs), ("cluster", &cluster)] {
        assert!(
            width(p) < p.band.before.max_diag_distance,
            "{name}: bandwidth {} not below input {}",
            width(p),
            p.band.before.max_diag_distance
        );
    }
    // ... and the cheaper strategies may not lose more than 25% of the
    // band quality RCM achieves on this fixture.
    let budget = (width(&rcm) as f64 * 1.25) as usize;
    assert!(
        width(&bfs) <= budget,
        "bfs bandwidth {} exceeds 1.25x rcm ({})",
        width(&bfs),
        width(&rcm)
    );
    assert!(
        width(&cluster) <= budget,
        "cluster bandwidth {} exceeds 1.25x rcm ({})",
        width(&cluster),
        width(&rcm)
    );
}

#[test]
fn end_to_end_kl_regression_is_bounded() {
    if OrderingStrategy::from_env().is_some() {
        eprintln!("CAHD_ORDERING set: skipping cross-strategy KL comparison");
        return;
    }
    let kl_rcm = mean_kl(&prepared(OrderingStrategy::Rcm));
    let kl_bfs = mean_kl(&prepared(OrderingStrategy::Bfs));
    let kl_cluster = mean_kl(&prepared(OrderingStrategy::Cluster));
    eprintln!("mean KL: rcm={kl_rcm:.4} bfs={kl_bfs:.4} cluster={kl_cluster:.4}");
    // The absolute floor keeps the bound meaningful when the baseline KL
    // is near zero (tiny quick-scale fixtures).
    let budget = (kl_rcm * 1.5).max(kl_rcm + 0.05);
    assert!(
        kl_bfs <= budget,
        "bfs KL {kl_bfs:.4} exceeds budget {budget:.4} (rcm {kl_rcm:.4})"
    );
    assert!(
        kl_cluster <= budget,
        "cluster KL {kl_cluster:.4} exceeds budget {budget:.4} (rcm {kl_rcm:.4})"
    );
}

/// The hub-capped implicit variant is quality-budgeted exactly like
/// bfs/cluster: skipping the most frequent items during neighbor
/// enumeration kills the k² clique blow-up, and on this fixture it may
/// cost at most 25% of RCM's band quality and the shared KL budget.
#[test]
fn hub_capped_implicit_stays_within_quality_budget() {
    if OrderingStrategy::from_env().is_some()
        || std::env::var_os("CAHD_ROWGRAPH").is_some()
        || std::env::var_os("CAHD_HUB_CAP").is_some()
    {
        eprintln!("ordering/rowgraph env override set: skipping hub-cap comparison");
        return;
    }
    let rcm = prepared(OrderingStrategy::Rcm);
    // Cap at the 95th-percentile item support so the tail of genuinely
    // frequent items is skipped — the regime the flag exists for.
    let mut supports: Vec<usize> = rcm
        .data
        .matrix()
        .col_counts()
        .into_iter()
        .filter(|&c| c > 0)
        .collect();
    supports.sort_unstable();
    let cap = supports[supports.len() * 95 / 100] as u32;
    let n_hubs = supports.iter().filter(|&&c| c > cap as usize).count();
    assert!(n_hubs > 0, "fixture has no items above the cap {cap}");
    let capped = {
        let data = profiles::bms1_like(SCALE, SEED);
        prepare(
            data,
            UnsymOptions {
                ordering: OrderingStrategy::Rcm,
                rowgraph: RowGraphMode::Implicit,
                hub_cap: Some(cap),
                ..UnsymOptions::default()
            },
        )
    };
    assert!(!capped.band.used_explicit_aat);
    // Band budget: same 1.25x allowance the alternative strategies get.
    let budget = (rcm.band.after.max_diag_distance as f64 * 1.25) as usize;
    assert!(
        capped.band.after.max_diag_distance <= budget,
        "hub-capped bandwidth {} exceeds 1.25x rcm ({}) at cap {cap} ({n_hubs} hubs)",
        capped.band.after.max_diag_distance,
        rcm.band.after.max_diag_distance
    );
    // End-to-end KL budget: shared with bfs/cluster.
    let kl_rcm = mean_kl(&rcm);
    let kl_capped = mean_kl(&capped);
    let kl_budget = (kl_rcm * 1.5).max(kl_rcm + 0.05);
    eprintln!("mean KL: rcm={kl_rcm:.4} hub-capped={kl_capped:.4} (cap {cap}, {n_hubs} hubs)");
    assert!(
        kl_capped <= kl_budget,
        "hub-capped KL {kl_capped:.4} exceeds budget {kl_budget:.4} (rcm {kl_rcm:.4})"
    );
}

/// Pipeline smoke for the strategy the environment selects (or the
/// default): prepare + anonymize + evaluate must succeed and produce a
/// finite KL. This is the leg the `CAHD_ORDERING` CI matrix exercises.
#[test]
fn env_selected_strategy_runs_end_to_end() {
    let strategy = OrderingStrategy::from_env().unwrap_or_default();
    let kl = mean_kl(&prepared(strategy));
    assert!(
        kl.is_finite() && kl >= 0.0,
        "{}: mean KL {kl} not a finite non-negative value",
        strategy.name()
    );
}
