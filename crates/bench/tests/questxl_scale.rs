//! Scale smoke for the million-row `quest_xl` profile (ignored by
//! default: the full-scale run costs seconds of generation plus seconds
//! of ordering on a small container). Run it explicitly to measure the
//! implicit backend on the workload the snapshot's `questxl` entry
//! tracks:
//!
//! ```text
//! CAHD_QUESTXL_SCALE=0.25 cargo test --release \
//!     -p cahd-bench --test questxl_scale -- --ignored --nocapture
//! ```
//!
//! `CAHD_QUESTXL_SCALE` (default 0.25 = one million rows) shrinks the
//! workload for quick extrapolation, and `CAHD_HUB_CAP` resolves inside
//! the engine, so the uncapped configuration the snapshot's `questxl`
//! entry ships and hub-capped variants can all be measured. The printed
//! posting statistics make the scaling visible alongside the phase
//! wall-clocks: `sum support^2` is the cost of the one-shot exact
//! degree pass (the traversals themselves are segment-deduplicated down
//! to O(nnz) per sweep).

use std::time::Instant;

use cahd_data::profiles;
use cahd_obs::Recorder;
use cahd_rcm::{reduce_unsymmetric_traced, OrderingStrategy, UnsymOptions};
use cahd_sparse::RowGraph;

#[test]
#[ignore = "full-scale workload; run explicitly with --ignored"]
fn questxl_orders_under_the_implicit_backend() {
    let scale: f64 = std::env::var("CAHD_QUESTXL_SCALE")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0.25);
    let t0 = Instant::now();
    let data = profiles::quest_xl_like(scale, 7);
    let gen_s = t0.elapsed().as_secs_f64();
    let a = data.matrix();
    let supports = data.item_supports();
    let nnz: usize = supports.iter().sum();
    let top = supports.iter().copied().max().unwrap_or(0);
    let sum_sq: u64 = supports.iter().map(|&s| (s as u64) * (s as u64)).sum();
    eprintln!(
        "questxl scale={scale}: rows={} items={} nnz={nnz} top_support={top} sum_sq={sum_sq} gen={gen_s:.1}s",
        data.n_transactions(),
        data.n_items(),
    );
    let rec = Recorder::new();
    let t1 = Instant::now();
    let red = reduce_unsymmetric_traced(
        a,
        UnsymOptions {
            ordering: OrderingStrategy::Rcm,
            threads: 8,
            ..UnsymOptions::default()
        },
        &rec,
    );
    let order_s = t1.elapsed().as_secs_f64();
    let report = rec.snapshot();
    let span_s = |p: &str| report.span(p).map_or(0.0, |s| s.total_ns as f64 / 1e9);
    eprintln!(
        "order={order_s:.1}s (aat_build={:.1}s order={:.1}s) explicit={} bandwidth {} -> {}",
        span_s("pipeline/rcm/aat_build"),
        span_s("pipeline/rcm/order"),
        red.used_explicit_aat,
        red.before.max_diag_distance,
        red.after.max_diag_distance,
    );
    // The auto policy must route this shape to the inverted index unless
    // an env override redirects it.
    if std::env::var_os("CAHD_ROWGRAPH").is_none() && std::env::var_os("CAHD_HUB_CAP").is_none() {
        assert!(
            !red.used_explicit_aat,
            "questxl must ride the implicit representation"
        );
    }
    assert_eq!(red.row_perm.len(), data.n_transactions());
}

/// The auto representation policy routes the XL shape implicit well
/// before full scale: a quarter-million-row slice already exceeds the
/// explicit edge budget. Not ignored — this is the cheap always-on guard
/// that the snapshot entry measures what it claims to measure
/// ([`RowGraph::build`] applies the pure auto policy, no env override).
#[test]
fn questxl_slice_routes_implicit_under_auto() {
    let data = profiles::quest_xl_like(0.25 / 4.0, 7);
    let budget = UnsymOptions::default().edge_budget;
    let g = RowGraph::build(data.matrix(), budget);
    assert!(
        !g.is_explicit(),
        "a 250k-row quest_xl slice must exceed the {budget}-edge explicit budget"
    );
}
