//! Snapshot memory columns with the tracking allocator registered, the
//! way the `perf_snapshot` binary registers it. One `#[test]`: the
//! allocator counters are process-global.

use cahd_bench::snapshot::collect_filtered;
use cahd_obs::TrackingAllocator;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

#[test]
fn snapshot_entries_carry_real_allocator_readings() {
    let snap = collect_filtered(true, 7, Some("bms1/p4/shards1"));
    assert_eq!(snap.entries.len(), 1);
    let e = &snap.entries[0];
    // A real pipeline run allocates, and the per-repeat peak sits at or
    // above the net growth of the busiest moment — both columns must be
    // live, not the inert zeros of an allocator-less binary.
    assert!(e.allocs > 0, "allocs column is dead");
    assert!(
        e.peak_alloc_bytes >= 1024,
        "peak {} implausibly small for a pipeline run",
        e.peak_alloc_bytes
    );
}
