//! Snapshot memory columns with the tracking allocator registered, the
//! way the `perf_snapshot` binary registers it. The allocator counters
//! are process-global, so every test here serializes its peak window
//! behind a lock.

use std::sync::Mutex;

use cahd_bench::snapshot::collect_filtered;
use cahd_obs::{memtrack, TrackingAllocator};
use cahd_sparse::{CsrMatrix, RowGraph};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

/// Peak readings are process-global; tests that reset and read the peak
/// must not interleave.
static PEAK_WINDOW: Mutex<()> = Mutex::new(());

#[test]
fn snapshot_entries_carry_real_allocator_readings() {
    let _w = PEAK_WINDOW.lock().unwrap();
    let snap = collect_filtered(true, 7, Some("bms1/p4/shards1"));
    assert_eq!(snap.entries.len(), 1);
    let e = &snap.entries[0];
    // A real pipeline run allocates, and the per-repeat peak sits at or
    // above the net growth of the busiest moment — both columns must be
    // live, not the inert zeros of an allocator-less binary.
    assert!(e.allocs > 0, "allocs column is dead");
    assert!(
        e.peak_alloc_bytes >= 1024,
        "peak {} implausibly small for a pipeline run",
        e.peak_alloc_bytes
    );
}

/// Regression for the explicit-build reservation over-allocation: rows
/// arrive in blocks that share many items, so the raw traversal count
/// (`sum` of posting lengths) exceeds the deduplicated adjacency by the
/// shared-item factor. The old `fill_chunk` reserved the raw count —
/// ~78 MB up front for this fixture — and drove the 85–131 MB snapshot
/// peaks; the clamped reservation must keep the whole build within a
/// small multiple of the real adjacency (~3.1 MB).
#[test]
fn explicit_build_reservation_is_clamped_to_real_adjacency() {
    // 20k rows in blocks of 40; each block shares one 25-item pattern.
    // Raw traversal count per row: 25 items x 39 other holders = 975;
    // true neighbor count: 39. Duplicate factor 25.
    let n = 20_000usize;
    let block = 40usize;
    let k = 25u32;
    let rows: Vec<Vec<u32>> = (0..n)
        .map(|r| {
            let base = (r / block) as u32 * k;
            (base..base + k).collect()
        })
        .collect();
    let n_cols = (n / block) * k as usize;
    let a = CsrMatrix::from_rows(&rows, n_cols);
    let _w = PEAK_WINDOW.lock().unwrap();
    for threads in [1usize, 4] {
        let before = memtrack::stats().live_bytes;
        memtrack::reset_peak();
        let g = RowGraph::build_with_threads(&a, usize::MAX, threads);
        let peak = memtrack::stats().peak_bytes.saturating_sub(before);
        assert!(g.is_explicit());
        // True adjacency: 20k rows x 39 neighbors x 4 bytes ≈ 3.1 MB.
        // Budget: reservation clamp (4 MiB/chunk) + assembly copies +
        // indptr slack, far below the raw-count reservation (~78 MB).
        let budget = 24 << 20;
        assert!(
            peak <= budget,
            "explicit build peaked at {peak} bytes (> {budget}) with {threads} threads: \
             the fill_chunk reservation clamp regressed"
        );
        drop(g);
    }
}
