//! End-to-end exercise of [`cahd_obs::TrackingAllocator`] with the
//! wrapper actually registered as this binary's global allocator.
//!
//! Everything lives in ONE `#[test]`: the allocator counters are
//! process-global, so concurrent tests in the same binary would pollute
//! each other's deltas (the zero-cost assertion in particular must see no
//! foreign allocations between its two readings).

use cahd_obs::{memtrack, Recorder, TraceReport, TrackingAllocator};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

#[test]
fn tracking_allocator_end_to_end() {
    // --- the wrapper is live and its totals are coherent -----------------
    let warm = vec![1u8; 4096];
    drop(warm);
    assert!(memtrack::is_active());
    let s0 = memtrack::stats();
    assert!(s0.alloc_bytes >= 4096);
    assert!(s0.dealloc_bytes <= s0.alloc_bytes);
    assert!(s0.deallocs <= s0.allocs);
    assert_eq!(s0.live_bytes, s0.alloc_bytes - s0.dealloc_bytes);
    assert!(s0.peak_bytes >= s0.live_bytes);

    // --- zero-cost contract: a disabled recorder allocates nothing ------
    let rec = Recorder::disabled();
    let before = memtrack::stats();
    for i in 0..1000u64 {
        let _span = rec.span("pipeline/group");
        rec.add("core.groups_formed", i);
        rec.incr("core.pivots_scanned");
        rec.gauge("core.shards", 4.0);
        rec.observe("core.candidate_list_len", i);
        let _ = rec.snapshot();
    }
    let after = memtrack::stats();
    assert_eq!(
        before.allocs, after.allocs,
        "disabled-recorder instrumentation allocated"
    );
    assert_eq!(before.alloc_bytes, after.alloc_bytes);

    // --- enabled + opted-in recorder attributes windows to spans --------
    let rec = Recorder::new().with_memory();
    assert!(rec.memory_tracking());
    {
        let _root = rec.span("pipeline");
        let outer = vec![0u8; 1 << 16];
        {
            let _child = rec.span("pipeline/rcm");
            let inner = vec![0u8; 1 << 12];
            drop(inner);
        }
        drop(outer);
        rec.record_memory_gauges();
    }
    let report = rec.snapshot();
    assert!(report.consistency_findings().is_empty());
    let mem = report.memory.as_ref().expect("memory section present");
    assert!(mem.consistency_findings().is_empty(), "{mem:?}");
    let root = mem.span("pipeline").expect("root window recorded");
    let child = mem.span("pipeline/rcm").expect("child window recorded");
    assert!(root.alloc_bytes >= (1 << 16) + (1 << 12));
    assert!(child.alloc_bytes >= 1 << 12);
    assert!(child.alloc_bytes <= root.alloc_bytes);
    assert!(child.peak_bytes <= root.peak_bytes);
    assert!(root.peak_bytes <= mem.totals.peak_bytes);
    for g in [
        "mem.alloc_bytes",
        "mem.dealloc_bytes",
        "mem.allocs",
        "mem.deallocs",
        "mem.live_bytes",
        "mem.peak_bytes",
    ] {
        assert!(report.gauge(g).is_some(), "gauge {g} missing");
    }

    // --- a real memory section survives the serde shim ------------------
    let json = serde_json::to_string(&report).expect("report serializes");
    let back: TraceReport = serde_json::from_str(&json).expect("report re-parses");
    assert_eq!(report, back);

    // --- merge_from folds scratch windows into the target ---------------
    let target = Recorder::new().with_memory();
    {
        let _s = target.span("pipeline/group");
        let _v = vec![0u8; 512];
    }
    let scratch = Recorder::new().with_memory();
    {
        let _s = scratch.span("pipeline/group");
        let _v = vec![0u8; 512];
    }
    target.merge_from(&scratch);
    let merged = target.snapshot();
    let w = merged
        .memory
        .as_ref()
        .and_then(|m| m.span("pipeline/group"))
        .expect("merged window");
    assert_eq!(w.count, 2);
    assert!(w.alloc_bytes >= 1024);

    // --- reset_peak() rebaselines the high-water mark -------------------
    memtrack::reset_peak();
    let s1 = memtrack::stats();
    assert_eq!(s1.peak_bytes, s1.live_bytes);
    let big = vec![0u8; 1 << 20];
    let s2 = memtrack::stats();
    assert!(s2.peak_bytes >= s1.live_bytes + (1 << 20));
    drop(big);
}
