//! Property tests for the `memory` section of `TraceReport`.
//!
//! Sections are built *constructively* (child windows summed into a
//! parent, slack added at every level) rather than through a live
//! `TrackingAllocator` — this binary deliberately runs on the default
//! allocator so the generators themselves cannot disturb the data. The
//! properties pin three things: coherent sections produce no findings,
//! every class of corruption produces one, and real sections survive the
//! vendored serde shim byte-for-byte.

use cahd_obs::{MemTotals, MemoryReport, SpanMemRecord, TraceReport};
use proptest::prelude::*;

/// A coherent memory section built bottom-up: `k` child windows under
/// `pipeline`, with unattributed slack (`pads`) at the parent and totals
/// levels so the inequalities are not accidentally tight.
fn arb_memory() -> impl Strategy<Value = MemoryReport> {
    (
        proptest::collection::vec((0u64..1 << 20, 0u64..1 << 20, 0u64..1 << 24, 1u64..4), 1..5),
        (0u64..1 << 16, 0u64..1 << 16, 0u64..1 << 16, 0u64..1 << 16),
    )
        .prop_map(
            |(children, (pad_alloc, pad_dealloc, pad_total, pad_peak))| {
                let child_alloc: u64 = children.iter().map(|c| c.0).sum();
                let child_dealloc: u64 = children.iter().map(|c| c.1).sum();
                let child_peak: u64 = children.iter().map(|c| c.2).max().unwrap_or(0);
                let parent_alloc = child_alloc + pad_alloc;
                let parent_dealloc = child_dealloc + pad_dealloc;
                let total_dealloc = parent_dealloc;
                let total_alloc = parent_alloc.max(total_dealloc) + pad_total;
                let live = total_alloc - total_dealloc;
                let total_peak = child_peak.max(live) + pad_peak;
                let mut spans = vec![SpanMemRecord {
                    path: "pipeline".to_string(),
                    count: 1,
                    alloc_bytes: parent_alloc,
                    dealloc_bytes: parent_dealloc,
                    peak_bytes: total_peak.min(child_peak.max(live)),
                }];
                for (i, (a, d, p, count)) in children.iter().enumerate() {
                    spans.push(SpanMemRecord {
                        path: format!("pipeline/s{i}"),
                        count: *count,
                        alloc_bytes: *a,
                        dealloc_bytes: *d,
                        peak_bytes: (*p).min(spans[0].peak_bytes),
                    });
                }
                MemoryReport {
                    totals: MemTotals {
                        alloc_bytes: total_alloc,
                        dealloc_bytes: total_dealloc,
                        allocs: total_alloc / 8 + 1,
                        deallocs: total_dealloc / 16,
                        live_bytes: live,
                        peak_bytes: total_peak,
                    },
                    spans,
                }
            },
        )
}

proptest! {
    #[test]
    fn coherent_sections_produce_no_findings(mem in arb_memory()) {
        let findings = mem.consistency_findings();
        prop_assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn memory_sections_roundtrip_through_serde(mem in arb_memory()) {
        let report = TraceReport { memory: Some(mem), ..TraceReport::default() };
        let json = serde_json::to_string(&report).expect("serializes");
        let back: TraceReport = serde_json::from_str(&json).expect("re-parses");
        prop_assert_eq!(report, back);
    }

    #[test]
    fn every_corruption_class_is_flagged(mem in arb_memory(), class in 0usize..5) {
        let mut m = mem;
        let ok = match class {
            // Freed more bytes than were ever allocated.
            0 => { m.totals.dealloc_bytes = m.totals.alloc_bytes + 1; true }
            // Live bytes disagree with the monotone totals.
            1 => { m.totals.live_bytes = m.totals.live_bytes.wrapping_add(1); true }
            // Peak below the live bytes at snapshot.
            2 => {
                if m.totals.live_bytes == 0 { false } else { m.totals.peak_bytes = m.totals.live_bytes - 1; true }
            }
            // A child window out-allocating its parent.
            3 => { m.spans[0].alloc_bytes = m.spans[1..].iter().map(|s| s.alloc_bytes).sum::<u64>().wrapping_sub(1); true }
            // A span out-peaking the process.
            _ => { m.spans[0].peak_bytes = m.totals.peak_bytes + 1; true }
        };
        prop_assume!(ok);
        let findings = m.consistency_findings();
        prop_assert!(!findings.is_empty(), "corruption class {class} undetected: {m:?}");
    }
}
