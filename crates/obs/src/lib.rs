//! `cahd-obs` — first-party observability for the CAHD stack.
//!
//! The paper's evaluation (Figures 6–12) is entirely about *measured*
//! behavior: CAHD runtime versus the privacy degree `p`, the candidate-list
//! factor `alpha`, and the reconstruction-error trade-off. This crate gives
//! the pipeline the instruments to produce those measurements from a normal
//! run instead of ad-hoc stopwatch code:
//!
//! * [`Recorder`] — a thread-safe sink for spans, counters, gauges and
//!   histograms. A *disabled* recorder ([`Recorder::disabled`]) carries no
//!   allocation and every operation is a branch on `None`, so instrumented
//!   hot paths cost nothing when tracing is off.
//! * [`Span`] — an RAII wall-clock timer; dropping it records
//!   `(path, elapsed)` under the span's path. Paths are `/`-separated
//!   (`"pipeline/rcm/aat_build"`) and aggregate by path: the same span
//!   executed `k` times contributes one [`SpanRecord`] with `count == k`.
//! * [`Histogram`] — a fixed-bucket (powers of two) value histogram for
//!   sizes and latencies, usable standalone for lock-free local
//!   accumulation and merged into a recorder afterwards.
//! * [`TraceReport`] — an immutable, serializable snapshot of everything a
//!   recorder saw, with internal-consistency checks
//!   ([`TraceReport::consistency_findings`]) that back the `CAHD-O001`
//!   analysis pass of `cahd-check`.
//!
//! # Determinism contract
//!
//! **Counters must be scheduling-invariant**: instrumented code only
//! records algorithmic event counts (groups formed, candidates scanned,
//! rollbacks, ...) as counters, never anything derived from timing or the
//! thread layout. Scheduling-dependent measurements belong in gauges
//! (e.g. partition imbalance) or in histogram *values* (per-shard scan
//! nanoseconds); histogram *counts* of deterministic event streams stay
//! invariant. The property tests in `cahd-core` pin this contract across
//! thread counts.
//!
//! ```
//! use cahd_obs::Recorder;
//!
//! let rec = Recorder::new();
//! {
//!     let _span = rec.span("pipeline");
//!     rec.add("core.groups_formed", 3);
//!     rec.observe("core.candidate_list_len", 12);
//! }
//! let report = rec.snapshot();
//! assert_eq!(report.counter("core.groups_formed"), Some(3));
//! assert_eq!(report.spans.len(), 1);
//! assert!(report.consistency_findings().is_empty());
//! ```

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Number of histogram buckets: bucket `i < 41` counts values
/// `<= 2^i`; the final bucket counts everything larger (overflow).
pub const N_BUCKETS: usize = 42;

/// Upper bound (inclusive) of bucket `i`, or `u64::MAX` for the overflow
/// bucket.
#[must_use]
pub fn bucket_bound(i: usize) -> u64 {
    if i + 1 < N_BUCKETS {
        1u64 << i
    } else {
        u64::MAX
    }
}

/// Index of the bucket a value falls into.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    for i in 0..N_BUCKETS - 1 {
        if value <= (1u64 << i) {
            return i;
        }
    }
    N_BUCKETS - 1
}

/// A fixed-bucket value histogram (powers-of-two bounds, see
/// [`bucket_bound`]). Standalone accumulation is lock-free; merge the
/// result into a [`Recorder`] with [`Recorder::record_histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observed values.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-bucket observation counts (see [`bucket_bound`]).
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            buckets: vec![0; N_BUCKETS],
        }
    }

    /// Records one value.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Mean observed value (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Default)]
struct Inner {
    spans: BTreeMap<String, (u64, u64)>, // path -> (count, total_ns)
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A thread-safe sink for trace events.
///
/// Cloning is cheap and shares the underlying store, so one recorder can be
/// handed to worker threads (`Recorder` is `Send + Sync`). A recorder built
/// with [`Recorder::disabled`] records nothing and costs one branch per
/// operation — the zero-cost-when-off contract of the instrumentation.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Recorder {
    /// An enabled recorder with an empty store.
    #[must_use]
    pub fn new() -> Self {
        Recorder {
            inner: Some(Arc::new(Mutex::new(Inner::default()))),
        }
    }

    /// A recorder that drops every event (the default).
    #[must_use]
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Whether events are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a wall-clock span; the elapsed time is recorded under `path`
    /// when the returned guard drops. Span paths are `/`-separated and
    /// every ancestor path should itself be recorded as a span (the
    /// `CAHD-O001` nesting check enforces it on emitted reports).
    #[must_use]
    pub fn span(&self, path: &'static str) -> Span<'_> {
        Span {
            rec: self,
            path,
            start: self.inner.as_ref().map(|_| Instant::now()),
        }
    }

    /// Records a completed span measured externally (in nanoseconds).
    pub fn record_span_ns(&self, path: &str, ns: u64) {
        if let Some(inner) = &self.inner {
            // cahd-lint: allow(L003, reason = "recorder methods never panic while holding the lock; poisoning implies a foreign panic worth re-surfacing")
            let mut g = inner.lock().expect("obs recorder poisoned");
            let e = g.spans.entry(path.to_string()).or_insert((0, 0));
            e.0 += 1;
            e.1 = e.1.saturating_add(ns);
        }
    }

    /// Adds `n` to the monotonic counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(inner) = &self.inner {
            // cahd-lint: allow(L003, reason = "recorder methods never panic while holding the lock; poisoning implies a foreign panic worth re-surfacing")
            let mut g = inner.lock().expect("obs recorder poisoned");
            *g.counters.entry(name.to_string()).or_insert(0) += n;
        }
    }

    /// Increments the monotonic counter `name` by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Sets the gauge `name` (last write wins). Gauges are the home of
    /// scheduling-dependent values — see the crate-level determinism
    /// contract.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            // cahd-lint: allow(L003, reason = "recorder methods never panic while holding the lock; poisoning implies a foreign panic worth re-surfacing")
            let mut g = inner.lock().expect("obs recorder poisoned");
            g.gauges.insert(name.to_string(), value);
        }
    }

    /// Records one value into the histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            // cahd-lint: allow(L003, reason = "recorder methods never panic while holding the lock; poisoning implies a foreign panic worth re-surfacing")
            let mut g = inner.lock().expect("obs recorder poisoned");
            g.histograms
                .entry(name.to_string())
                .or_insert_with(Histogram::new)
                .observe(value);
        }
    }

    /// Merges a locally accumulated [`Histogram`] into `name` under one
    /// lock acquisition (the pattern for hot loops and worker threads).
    pub fn record_histogram(&self, name: &str, h: &Histogram) {
        if h.count == 0 {
            return;
        }
        if let Some(inner) = &self.inner {
            // cahd-lint: allow(L003, reason = "recorder methods never panic while holding the lock; poisoning implies a foreign panic worth re-surfacing")
            let mut g = inner.lock().expect("obs recorder poisoned");
            g.histograms
                .entry(name.to_string())
                .or_insert_with(Histogram::new)
                .merge(h);
        }
    }

    /// Absorbs everything `other` recorded into this recorder: span
    /// counts/times and counters add, histograms merge, gauges overwrite
    /// (last write wins, as always).
    ///
    /// This is the *speculative attempt* pattern: run an attempt against a
    /// scratch recorder and merge it only if the attempt is accepted, so a
    /// retried computation (e.g. a recovered shard) never double-counts
    /// its deterministic counters. A disabled recorder on either side
    /// makes this a no-op.
    pub fn merge_from(&self, other: &Recorder) {
        let (Some(inner), Some(other_inner)) = (&self.inner, &other.inner) else {
            return;
        };
        // cahd-lint: allow(L003, reason = "recorder methods never panic while holding the lock; poisoning implies a foreign panic worth re-surfacing")
        let o = other_inner.lock().expect("obs recorder poisoned");
        // cahd-lint: allow(L003, reason = "recorder methods never panic while holding the lock; poisoning implies a foreign panic worth re-surfacing")
        let mut g = inner.lock().expect("obs recorder poisoned");
        for (path, &(count, ns)) in &o.spans {
            let e = g.spans.entry(path.clone()).or_insert((0, 0));
            e.0 += count;
            e.1 = e.1.saturating_add(ns);
        }
        for (name, &v) in &o.counters {
            *g.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, &v) in &o.gauges {
            g.gauges.insert(name.clone(), v);
        }
        for (name, h) in &o.histograms {
            g.histograms
                .entry(name.clone())
                .or_insert_with(Histogram::new)
                .merge(h);
        }
    }

    /// An immutable snapshot of everything recorded so far, with every
    /// section sorted by name (snapshots of the same events are therefore
    /// byte-identical regardless of recording order).
    #[must_use]
    pub fn snapshot(&self) -> TraceReport {
        let Some(inner) = &self.inner else {
            return TraceReport::default();
        };
        // cahd-lint: allow(L003, reason = "recorder methods never panic while holding the lock; poisoning implies a foreign panic worth re-surfacing")
        let g = inner.lock().expect("obs recorder poisoned");
        TraceReport {
            spans: g
                .spans
                .iter()
                .map(|(path, &(count, total_ns))| SpanRecord {
                    path: path.clone(),
                    count,
                    total_ns,
                })
                .collect(),
            counters: g
                .counters
                .iter()
                .map(|(name, &value)| CounterRecord {
                    name: name.clone(),
                    value,
                })
                .collect(),
            gauges: g
                .gauges
                .iter()
                .map(|(name, &value)| GaugeRecord {
                    name: name.clone(),
                    value,
                })
                .collect(),
            histograms: g
                .histograms
                .iter()
                .map(|(name, h)| HistogramRecord {
                    name: name.clone(),
                    count: h.count,
                    sum: h.sum,
                    buckets: h.buckets.clone(),
                })
                .collect(),
        }
    }
}

/// RAII wall-clock timer returned by [`Recorder::span`].
///
/// The guard records on drop; `start` is only taken when the recorder is
/// enabled, so a disabled span never reads the clock.
pub struct Span<'a> {
    rec: &'a Recorder,
    path: &'static str,
    start: Option<Instant>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.rec.record_span_ns(self.path, ns);
        }
    }
}

/// One aggregated span: all executions of a path, summed.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// `/`-separated span path, e.g. `pipeline/rcm/aat_build`.
    pub path: String,
    /// Number of times the span executed.
    pub count: u64,
    /// Total wall-clock nanoseconds across executions.
    pub total_ns: u64,
}

/// One monotonic counter.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterRecord {
    /// Counter name, e.g. `core.groups_formed`.
    pub name: String,
    /// Final value.
    pub value: u64,
}

/// One gauge (last-write-wins value; may be scheduling-dependent).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaugeRecord {
    /// Gauge name, e.g. `sparse.aat_partition_imbalance`.
    pub name: String,
    /// Final value.
    pub value: f64,
}

/// One fixed-bucket histogram (see [`bucket_bound`] for the bucket layout).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramRecord {
    /// Histogram name, e.g. `eval.query_ns`.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-bucket counts, `buckets[i]` counting values `<= bucket_bound(i)`.
    pub buckets: Vec<u64>,
}

/// A serializable snapshot of one traced run. Every section is sorted by
/// name/path; see `docs/OBSERVABILITY.md` for the span taxonomy and the
/// counter glossary.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    /// Aggregated spans, sorted by path.
    pub spans: Vec<SpanRecord>,
    /// Monotonic counters, sorted by name. Scheduling-invariant by
    /// contract.
    pub counters: Vec<CounterRecord>,
    /// Gauges, sorted by name. May be scheduling-dependent.
    pub gauges: Vec<GaugeRecord>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramRecord>,
}

impl TraceReport {
    /// The value of counter `name`, if recorded.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The gauge `name`, if recorded.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The aggregated span at `path`, if recorded.
    #[must_use]
    pub fn span(&self, path: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// The histogram `name`, if recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramRecord> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Paths of non-root spans whose parent path was never recorded.
    ///
    /// [`consistency_findings`](TraceReport::consistency_findings) accepts
    /// such spans as roots of a partial trace; callers expecting a *full*
    /// report rooted at known paths (the `CAHD-O001` pass) treat a
    /// non-empty result as a defect.
    #[must_use]
    pub fn orphan_spans(&self) -> Vec<&str> {
        self.spans
            .iter()
            .filter(|s| {
                s.path
                    .rfind('/')
                    .is_some_and(|cut| self.span(&s.path[..cut]).is_none())
            })
            .map(|s| s.path.as_str())
            .collect()
    }

    /// Direct children of span `path` (one `/` segment deeper).
    #[must_use]
    pub fn span_children(&self, path: &str) -> Vec<&SpanRecord> {
        self.spans
            .iter()
            .filter(|s| {
                s.path.len() > path.len()
                    && s.path.starts_with(path)
                    && s.path.as_bytes()[path.len()] == b'/'
                    && !s.path[path.len() + 1..].contains('/')
            })
            .collect()
    }

    /// Generic internal-consistency findings, empty when the report is
    /// coherent. Backs the `CAHD-O001` pass of `cahd-check`:
    ///
    /// * section ordering: every section sorted by name with no duplicates
    ///   (the shape [`Recorder::snapshot`] guarantees);
    /// * span nesting: the direct children of a span account for at most
    ///   its own total time (children time inside their parent; spans are
    ///   recorded on the driving thread only, concurrent work is histogram
    ///   territory). A span whose parent path was never recorded counts as
    ///   a root — partial traces (e.g. a standalone RCM run rooted at
    ///   `pipeline/rcm`) are coherent; use [`TraceReport::orphan_spans`]
    ///   when a report must be rooted at specific paths;
    /// * histograms: bucket counts sum to the recorded `count`, the bucket
    ///   vector has the fixed [`N_BUCKETS`] length, and `sum` is
    ///   consistent with the populated buckets' bounds.
    #[must_use]
    pub fn consistency_findings(&self) -> Vec<String> {
        let mut out = Vec::new();
        check_sorted_unique(
            self.spans.iter().map(|s| s.path.as_str()),
            "spans",
            &mut out,
        );
        check_sorted_unique(
            self.counters.iter().map(|c| c.name.as_str()),
            "counters",
            &mut out,
        );
        check_sorted_unique(
            self.gauges.iter().map(|g| g.name.as_str()),
            "gauges",
            &mut out,
        );
        check_sorted_unique(
            self.histograms.iter().map(|h| h.name.as_str()),
            "histograms",
            &mut out,
        );

        for s in &self.spans {
            let children_ns: u64 = self.span_children(&s.path).iter().map(|c| c.total_ns).sum();
            if children_ns > s.total_ns {
                out.push(format!(
                    "children of span `{}` total {children_ns} ns, exceeding the parent's {} ns",
                    s.path, s.total_ns
                ));
            }
        }

        for h in &self.histograms {
            if h.buckets.len() != N_BUCKETS {
                out.push(format!(
                    "histogram `{}` has {} buckets, expected {N_BUCKETS}",
                    h.name,
                    h.buckets.len()
                ));
                continue;
            }
            let total: u64 = h.buckets.iter().sum();
            if total != h.count {
                out.push(format!(
                    "histogram `{}` buckets sum to {total}, count says {}",
                    h.name, h.count
                ));
            }
            // Upper bound on the sum implied by the populated buckets.
            let max_sum = h.buckets.iter().enumerate().fold(0u64, |acc, (i, &c)| {
                acc.saturating_add(bucket_bound(i).saturating_mul(c))
            });
            if h.sum > max_sum {
                out.push(format!(
                    "histogram `{}` sum {} exceeds the maximum {max_sum} its buckets allow",
                    h.name, h.sum
                ));
            }
        }
        out
    }

    /// Renders a human-readable metrics summary (the CLI `--metrics` view):
    /// a span tree with milliseconds, then counters, gauges and histogram
    /// digests.
    #[must_use]
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for s in &self.spans {
                let depth = s.path.matches('/').count();
                let name = s.path.rsplit('/').next().unwrap_or(&s.path);
                out.push_str(&format!(
                    "  {:indent$}{name:<24} {:>10.3} ms  x{}\n",
                    "",
                    s.total_ns as f64 / 1e6,
                    s.count,
                    indent = depth * 2,
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for c in &self.counters {
                out.push_str(&format!("  {:<40} {}\n", c.name, c.value));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for g in &self.gauges {
                out.push_str(&format!("  {:<40} {:.3}\n", g.name, g.value));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.histograms {
                let mean = if h.count == 0 {
                    0.0
                } else {
                    h.sum as f64 / h.count as f64
                };
                out.push_str(&format!(
                    "  {:<40} count {} mean {mean:.1} p99<={}\n",
                    h.name,
                    h.count,
                    approx_quantile_bound(&h.buckets, h.count, 0.99),
                ));
            }
        }
        out
    }
}

/// Smallest bucket upper bound covering at least `q` of the observations.
fn approx_quantile_bound(buckets: &[u64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let target = (count as f64 * q).ceil() as u64;
    let mut acc = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        acc += c;
        if acc >= target {
            return bucket_bound(i);
        }
    }
    u64::MAX
}

fn check_sorted_unique<'a>(
    names: impl Iterator<Item = &'a str>,
    section: &str,
    out: &mut Vec<String>,
) {
    let mut prev: Option<&str> = None;
    for n in names {
        if let Some(p) = prev {
            if p >= n {
                out.push(format!(
                    "section `{section}` is not strictly sorted at `{n}` (after `{p}`)"
                ));
            }
        }
        prev = Some(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        {
            let _s = rec.span("pipeline");
            rec.add("c", 5);
            rec.gauge("g", 1.0);
            rec.observe("h", 3);
        }
        let report = rec.snapshot();
        assert_eq!(report, TraceReport::default());
    }

    #[test]
    fn spans_aggregate_by_path() {
        let rec = Recorder::new();
        for _ in 0..3 {
            let _s = rec.span("pipeline");
        }
        let report = rec.snapshot();
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.span("pipeline").unwrap().count, 3);
    }

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let rec = Recorder::new();
        rec.add("b", 2);
        rec.incr("a");
        rec.add("b", 3);
        let report = rec.snapshot();
        assert_eq!(report.counter("a"), Some(1));
        assert_eq!(report.counter("b"), Some(5));
        assert_eq!(report.counters[0].name, "a");
        assert!(report.consistency_findings().is_empty());
    }

    #[test]
    fn histogram_buckets_and_merge() {
        let mut h = Histogram::new();
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(1_000_000);
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets[0], 2); // 0 and 1 both <= 2^0
        assert_eq!(h.buckets[1], 1);
        let mut h2 = Histogram::new();
        h2.observe(u64::MAX);
        h.merge(&h2);
        assert_eq!(h.count, 5);
        assert_eq!(h.buckets[N_BUCKETS - 1], 1);
        // Sum saturates instead of wrapping when observations overflow u64.
        assert_eq!(h.sum, u64::MAX);
    }

    #[test]
    fn bucket_bounds_cover_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
        assert_eq!(bucket_bound(N_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn local_histogram_merges_into_recorder() {
        let rec = Recorder::new();
        let mut local = Histogram::new();
        local.observe(4);
        local.observe(5);
        rec.record_histogram("sizes", &local);
        rec.observe("sizes", 6);
        let report = rec.snapshot();
        let h = report.histogram("sizes").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 15);
        assert!(report.consistency_findings().is_empty());
    }

    #[test]
    fn nesting_findings_flag_orphans_and_overflow() {
        let rec = Recorder::new();
        rec.record_span_ns("pipeline", 100);
        rec.record_span_ns("pipeline/rcm", 60);
        rec.record_span_ns("pipeline/group", 30);
        assert!(rec.snapshot().consistency_findings().is_empty());

        // An orphan child is coherent (a partial-trace root) but listed.
        rec.record_span_ns("other/child", 10);
        let report = rec.snapshot();
        assert!(report.consistency_findings().is_empty());
        assert_eq!(report.orphan_spans(), vec!["other/child"]);

        // Children exceeding the parent.
        let rec2 = Recorder::new();
        rec2.record_span_ns("p", 10);
        rec2.record_span_ns("p/a", 8);
        rec2.record_span_ns("p/b", 8);
        let findings = rec2.snapshot().consistency_findings();
        assert!(
            findings.iter().any(|f| f.contains("exceeding the parent")),
            "{findings:?}"
        );
    }

    #[test]
    fn tampered_histogram_is_flagged() {
        let rec = Recorder::new();
        rec.observe("h", 5);
        let mut report = rec.snapshot();
        report.histograms[0].count = 7;
        let findings = report.consistency_findings();
        assert!(
            findings.iter().any(|f| f.contains("buckets sum")),
            "{findings:?}"
        );
        let mut report2 = rec.snapshot();
        report2.histograms[0].sum = u64::MAX;
        let findings2 = report2.consistency_findings();
        assert!(
            findings2.iter().any(|f| f.contains("exceeds the maximum")),
            "{findings2:?}"
        );
    }

    #[test]
    fn report_roundtrips_through_serde_shim() {
        let rec = Recorder::new();
        rec.record_span_ns("pipeline", 42);
        rec.add("core.groups_formed", 7);
        rec.gauge("core.shards", 4.0);
        rec.observe("eval.query_ns", 1234);
        let report = rec.snapshot();
        let json = serde_json::to_string(&report).unwrap();
        let back: TraceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn render_human_shows_all_sections() {
        let rec = Recorder::new();
        rec.record_span_ns("pipeline", 2_000_000);
        rec.record_span_ns("pipeline/rcm", 1_000_000);
        rec.add("core.groups_formed", 7);
        rec.gauge("core.shards", 4.0);
        rec.observe("eval.query_ns", 100);
        let text = rec.snapshot().render_human();
        assert!(text.contains("spans:"), "{text}");
        assert!(text.contains("core.groups_formed"), "{text}");
        assert!(text.contains("core.shards"), "{text}");
        assert!(text.contains("eval.query_ns"), "{text}");
    }

    #[test]
    fn merge_from_absorbs_a_scratch_recorder() {
        let rec = Recorder::new();
        rec.add("c", 2);
        rec.record_span_ns("pipeline", 10);
        let scratch = Recorder::new();
        scratch.add("c", 3);
        scratch.record_span_ns("pipeline", 5);
        scratch.gauge("g", 7.0);
        scratch.observe("h", 4);
        rec.merge_from(&scratch);
        let report = rec.snapshot();
        assert_eq!(report.counter("c"), Some(5));
        let span = report.span("pipeline").unwrap();
        assert_eq!((span.count, span.total_ns), (2, 15));
        assert_eq!(report.gauge("g"), Some(7.0));
        assert_eq!(report.histogram("h").unwrap().count, 1);
        // A dropped scratch recorder leaves the target untouched, and a
        // disabled target ignores merges.
        let disabled = Recorder::disabled();
        disabled.merge_from(&scratch);
        assert_eq!(disabled.snapshot(), TraceReport::default());
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = Recorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rec = &rec;
                scope.spawn(move || {
                    for _ in 0..100 {
                        rec.incr("events");
                    }
                });
            }
        });
        assert_eq!(rec.snapshot().counter("events"), Some(400));
    }
}
