//! `cahd-obs` — first-party observability for the CAHD stack.
//!
//! The paper's evaluation (Figures 6–12) is entirely about *measured*
//! behavior: CAHD runtime versus the privacy degree `p`, the candidate-list
//! factor `alpha`, and the reconstruction-error trade-off. This crate gives
//! the pipeline the instruments to produce those measurements from a normal
//! run instead of ad-hoc stopwatch code:
//!
//! * [`Recorder`] — a thread-safe sink for spans, counters, gauges and
//!   histograms. A *disabled* recorder ([`Recorder::disabled`]) carries no
//!   allocation and every operation is a branch on `None`, so instrumented
//!   hot paths cost nothing when tracing is off.
//! * [`Span`] — an RAII wall-clock timer; dropping it records
//!   `(path, elapsed)` under the span's path. Paths are `/`-separated
//!   (`"pipeline/rcm/aat_build"`) and aggregate by path: the same span
//!   executed `k` times contributes one [`SpanRecord`] with `count == k`.
//! * [`Histogram`] — a fixed-bucket (powers of two) value histogram for
//!   sizes and latencies, usable standalone for lock-free local
//!   accumulation and merged into a recorder afterwards.
//! * [`TraceReport`] — an immutable, serializable snapshot of everything a
//!   recorder saw, with internal-consistency checks
//!   ([`TraceReport::consistency_findings`]) that back the `CAHD-O001`
//!   analysis pass of `cahd-check`.
//! * [`memtrack`] / [`TrackingAllocator`] — an opt-in global-allocator
//!   wrapper maintaining process-wide allocation totals. A recorder built
//!   with [`Recorder::with_memory`] attributes allocation windows to its
//!   spans and emits a [`MemoryReport`] section whose invariants back the
//!   `CAHD-O002` memory audit. Without the wrapper installed (every
//!   library embedder) the capture is inert and reports carry no memory
//!   section.
//!
//! # Determinism contract
//!
//! **Counters must be scheduling-invariant**: instrumented code only
//! records algorithmic event counts (groups formed, candidates scanned,
//! rollbacks, ...) as counters, never anything derived from timing or the
//! thread layout. Scheduling-dependent measurements belong in gauges
//! (e.g. partition imbalance) or in histogram *values* (per-shard scan
//! nanoseconds); histogram *counts* of deterministic event streams stay
//! invariant. The property tests in `cahd-core` pin this contract across
//! thread counts.
//!
//! ```
//! use cahd_obs::Recorder;
//!
//! let rec = Recorder::new();
//! {
//!     let _span = rec.span("pipeline");
//!     rec.add("core.groups_formed", 3);
//!     rec.observe("core.candidate_list_len", 12);
//! }
//! let report = rec.snapshot();
//! assert_eq!(report.counter("core.groups_formed"), Some(3));
//! assert_eq!(report.spans.len(), 1);
//! assert!(report.consistency_findings().is_empty());
//! ```

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

pub mod memtrack;

pub use memtrack::{MemStats, TrackingAllocator};

/// Number of histogram buckets: bucket `i < 41` counts values
/// `<= 2^i`; the final bucket counts everything larger (overflow).
pub const N_BUCKETS: usize = 42;

/// Upper bound (inclusive) of bucket `i`, or `u64::MAX` for the overflow
/// bucket.
#[must_use]
pub fn bucket_bound(i: usize) -> u64 {
    if i + 1 < N_BUCKETS {
        1u64 << i
    } else {
        u64::MAX
    }
}

/// Index of the bucket a value falls into.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    for i in 0..N_BUCKETS - 1 {
        if value <= (1u64 << i) {
            return i;
        }
    }
    N_BUCKETS - 1
}

/// A fixed-bucket value histogram (powers-of-two bounds, see
/// [`bucket_bound`]). Standalone accumulation is lock-free; merge the
/// result into a [`Recorder`] with [`Recorder::record_histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observed values.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-bucket observation counts (see [`bucket_bound`]).
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            buckets: vec![0; N_BUCKETS],
        }
    }

    /// Records one value.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Mean observed value (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Per-path aggregation of span memory windows (see [`SpanMemRecord`]).
#[derive(Clone, Copy, Default)]
struct SpanMemAgg {
    count: u64,
    alloc_bytes: u64,
    dealloc_bytes: u64,
    peak_bytes: u64,
}

#[derive(Default)]
struct Inner {
    spans: BTreeMap<String, (u64, u64)>, // path -> (count, total_ns)
    span_mem: BTreeMap<String, SpanMemAgg>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A thread-safe sink for trace events.
///
/// Cloning is cheap and shares the underlying store, so one recorder can be
/// handed to worker threads (`Recorder` is `Send + Sync`). A recorder built
/// with [`Recorder::disabled`] records nothing and costs one branch per
/// operation — the zero-cost-when-off contract of the instrumentation.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Mutex<Inner>>>,
    mem: bool,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Recorder {
    /// An enabled recorder with an empty store. Memory capture is off;
    /// opt in with [`Recorder::with_memory`].
    #[must_use]
    pub fn new() -> Self {
        Recorder {
            inner: Some(Arc::new(Mutex::new(Inner::default()))),
            mem: false,
        }
    }

    /// A recorder that drops every event (the default).
    #[must_use]
    pub fn disabled() -> Self {
        Recorder {
            inner: None,
            mem: false,
        }
    }

    /// Opts this recorder into memory capture: spans additionally record
    /// their allocation window and [`Recorder::snapshot`] emits a
    /// [`MemoryReport`] section.
    ///
    /// Capture only takes effect when [`TrackingAllocator`] is the
    /// process's global allocator (see [`memtrack::is_active`]); on a
    /// disabled recorder, or in a process using the default allocator,
    /// this is inert and reports stay byte-identical to a plain recorder's.
    #[must_use]
    pub fn with_memory(mut self) -> Self {
        self.mem = true;
        self
    }

    /// Whether events are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether span memory windows are actually being captured: the
    /// recorder is enabled, opted in via [`Recorder::with_memory`], and
    /// the tracking allocator is live in this process.
    #[must_use]
    pub fn memory_tracking(&self) -> bool {
        self.mem && self.inner.is_some() && memtrack::is_active()
    }

    /// Starts a wall-clock span; the elapsed time is recorded under `path`
    /// when the returned guard drops. Span paths are `/`-separated and
    /// every ancestor path should itself be recorded as a span (the
    /// `CAHD-O001` nesting check enforces it on emitted reports).
    #[must_use]
    pub fn span(&self, path: &'static str) -> Span<'_> {
        Span {
            rec: self,
            path,
            start: self.inner.as_ref().map(|_| Instant::now()),
            mem_start: if self.memory_tracking() {
                let s = memtrack::stats();
                Some((s.alloc_bytes, s.dealloc_bytes))
            } else {
                None
            },
        }
    }

    /// Records a completed span measured externally (in nanoseconds).
    /// Carries no memory window — only RAII spans from [`Recorder::span`]
    /// capture allocation data.
    pub fn record_span_ns(&self, path: &str, ns: u64) {
        self.record_span(path, ns, None);
    }

    /// Shared sink for span drops: one lock acquisition records the
    /// wall-clock observation and, when present, the memory window.
    fn record_span(&self, path: &str, ns: u64, mem: Option<(u64, u64, u64)>) {
        if let Some(inner) = &self.inner {
            // cahd-lint: allow(L003, reason = "recorder methods never panic while holding the lock; poisoning implies a foreign panic worth re-surfacing")
            let mut g = inner.lock().expect("obs recorder poisoned");
            let e = g.spans.entry(path.to_string()).or_insert((0, 0));
            e.0 += 1;
            e.1 = e.1.saturating_add(ns);
            if let Some((alloc_bytes, dealloc_bytes, peak_bytes)) = mem {
                let m = g.span_mem.entry(path.to_string()).or_default();
                m.count += 1;
                m.alloc_bytes = m.alloc_bytes.saturating_add(alloc_bytes);
                m.dealloc_bytes = m.dealloc_bytes.saturating_add(dealloc_bytes);
                m.peak_bytes = m.peak_bytes.max(peak_bytes);
            }
        }
    }

    /// Records the six `mem.*` gauges from the current allocator totals
    /// (see [`memtrack::stats`]). A no-op unless
    /// [`Recorder::memory_tracking`] — pipelines call this unconditionally
    /// at phase end and embedders without the tracking allocator see
    /// nothing. Gauges are the right home: allocator totals are
    /// scheduling-dependent by nature.
    pub fn record_memory_gauges(&self) {
        if !self.memory_tracking() {
            return;
        }
        let s = memtrack::stats();
        self.gauge("mem.alloc_bytes", s.alloc_bytes as f64);
        self.gauge("mem.dealloc_bytes", s.dealloc_bytes as f64);
        self.gauge("mem.allocs", s.allocs as f64);
        self.gauge("mem.deallocs", s.deallocs as f64);
        self.gauge("mem.live_bytes", s.live_bytes as f64);
        self.gauge("mem.peak_bytes", s.peak_bytes as f64);
    }

    /// Adds `n` to the monotonic counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(inner) = &self.inner {
            // cahd-lint: allow(L003, reason = "recorder methods never panic while holding the lock; poisoning implies a foreign panic worth re-surfacing")
            let mut g = inner.lock().expect("obs recorder poisoned");
            *g.counters.entry(name.to_string()).or_insert(0) += n;
        }
    }

    /// Increments the monotonic counter `name` by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Sets the gauge `name` (last write wins). Gauges are the home of
    /// scheduling-dependent values — see the crate-level determinism
    /// contract.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            // cahd-lint: allow(L003, reason = "recorder methods never panic while holding the lock; poisoning implies a foreign panic worth re-surfacing")
            let mut g = inner.lock().expect("obs recorder poisoned");
            g.gauges.insert(name.to_string(), value);
        }
    }

    /// Records one value into the histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            // cahd-lint: allow(L003, reason = "recorder methods never panic while holding the lock; poisoning implies a foreign panic worth re-surfacing")
            let mut g = inner.lock().expect("obs recorder poisoned");
            g.histograms
                .entry(name.to_string())
                .or_insert_with(Histogram::new)
                .observe(value);
        }
    }

    /// Merges a locally accumulated [`Histogram`] into `name` under one
    /// lock acquisition (the pattern for hot loops and worker threads).
    pub fn record_histogram(&self, name: &str, h: &Histogram) {
        if h.count == 0 {
            return;
        }
        if let Some(inner) = &self.inner {
            // cahd-lint: allow(L003, reason = "recorder methods never panic while holding the lock; poisoning implies a foreign panic worth re-surfacing")
            let mut g = inner.lock().expect("obs recorder poisoned");
            g.histograms
                .entry(name.to_string())
                .or_insert_with(Histogram::new)
                .merge(h);
        }
    }

    /// Absorbs everything `other` recorded into this recorder: span
    /// counts/times and counters add, histograms merge, gauges overwrite
    /// (last write wins, as always).
    ///
    /// This is the *speculative attempt* pattern: run an attempt against a
    /// scratch recorder and merge it only if the attempt is accepted, so a
    /// retried computation (e.g. a recovered shard) never double-counts
    /// its deterministic counters. A disabled recorder on either side
    /// makes this a no-op.
    pub fn merge_from(&self, other: &Recorder) {
        let (Some(inner), Some(other_inner)) = (&self.inner, &other.inner) else {
            return;
        };
        // cahd-lint: allow(L003, reason = "recorder methods never panic while holding the lock; poisoning implies a foreign panic worth re-surfacing")
        let o = other_inner.lock().expect("obs recorder poisoned");
        // cahd-lint: allow(L003, reason = "recorder methods never panic while holding the lock; poisoning implies a foreign panic worth re-surfacing")
        let mut g = inner.lock().expect("obs recorder poisoned");
        for (path, &(count, ns)) in &o.spans {
            let e = g.spans.entry(path.clone()).or_insert((0, 0));
            e.0 += count;
            e.1 = e.1.saturating_add(ns);
        }
        for (path, m) in &o.span_mem {
            let e = g.span_mem.entry(path.clone()).or_default();
            e.count += m.count;
            e.alloc_bytes = e.alloc_bytes.saturating_add(m.alloc_bytes);
            e.dealloc_bytes = e.dealloc_bytes.saturating_add(m.dealloc_bytes);
            e.peak_bytes = e.peak_bytes.max(m.peak_bytes);
        }
        for (name, &v) in &o.counters {
            *g.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, &v) in &o.gauges {
            g.gauges.insert(name.clone(), v);
        }
        for (name, h) in &o.histograms {
            g.histograms
                .entry(name.clone())
                .or_insert_with(Histogram::new)
                .merge(h);
        }
    }

    /// An immutable snapshot of everything recorded so far, with every
    /// section sorted by name (snapshots of the same events are therefore
    /// byte-identical regardless of recording order).
    #[must_use]
    pub fn snapshot(&self) -> TraceReport {
        let Some(inner) = &self.inner else {
            return TraceReport::default();
        };
        // cahd-lint: allow(L003, reason = "recorder methods never panic while holding the lock; poisoning implies a foreign panic worth re-surfacing")
        let g = inner.lock().expect("obs recorder poisoned");
        let memory = if self.mem && memtrack::is_active() {
            let s = memtrack::stats();
            Some(MemoryReport {
                totals: MemTotals {
                    alloc_bytes: s.alloc_bytes,
                    dealloc_bytes: s.dealloc_bytes,
                    allocs: s.allocs,
                    deallocs: s.deallocs,
                    live_bytes: s.live_bytes,
                    peak_bytes: s.peak_bytes,
                },
                spans: g
                    .span_mem
                    .iter()
                    .map(|(path, m)| SpanMemRecord {
                        path: path.clone(),
                        count: m.count,
                        alloc_bytes: m.alloc_bytes,
                        dealloc_bytes: m.dealloc_bytes,
                        peak_bytes: m.peak_bytes,
                    })
                    .collect(),
            })
        } else {
            None
        };
        TraceReport {
            memory,
            spans: g
                .spans
                .iter()
                .map(|(path, &(count, total_ns))| SpanRecord {
                    path: path.clone(),
                    count,
                    total_ns,
                })
                .collect(),
            counters: g
                .counters
                .iter()
                .map(|(name, &value)| CounterRecord {
                    name: name.clone(),
                    value,
                })
                .collect(),
            gauges: g
                .gauges
                .iter()
                .map(|(name, &value)| GaugeRecord {
                    name: name.clone(),
                    value,
                })
                .collect(),
            histograms: g
                .histograms
                .iter()
                .map(|(name, h)| HistogramRecord {
                    name: name.clone(),
                    count: h.count,
                    sum: h.sum,
                    buckets: h.buckets.clone(),
                })
                .collect(),
        }
    }
}

/// RAII wall-clock timer returned by [`Recorder::span`].
///
/// The guard records on drop; `start` is only taken when the recorder is
/// enabled, so a disabled span never reads the clock. When the recorder
/// is [memory-tracking](Recorder::memory_tracking), the guard also
/// captures the allocator totals at open and records the window's
/// alloc/dealloc deltas plus the process peak at close (see
/// [`SpanMemRecord`] for the exact semantics).
pub struct Span<'a> {
    rec: &'a Recorder,
    path: &'static str,
    start: Option<Instant>,
    mem_start: Option<(u64, u64)>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let mem = self.mem_start.map(|(alloc0, dealloc0)| {
                let s = memtrack::stats();
                (
                    s.alloc_bytes.saturating_sub(alloc0),
                    s.dealloc_bytes.saturating_sub(dealloc0),
                    s.peak_bytes,
                )
            });
            self.rec.record_span(self.path, ns, mem);
        }
    }
}

/// One aggregated span: all executions of a path, summed.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// `/`-separated span path, e.g. `pipeline/rcm/aat_build`.
    pub path: String,
    /// Number of times the span executed.
    pub count: u64,
    /// Total wall-clock nanoseconds across executions.
    pub total_ns: u64,
}

/// One monotonic counter.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterRecord {
    /// Counter name, e.g. `core.groups_formed`.
    pub name: String,
    /// Final value.
    pub value: u64,
}

/// One gauge (last-write-wins value; may be scheduling-dependent).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaugeRecord {
    /// Gauge name, e.g. `sparse.aat_partition_imbalance`.
    pub name: String,
    /// Final value.
    pub value: f64,
}

/// One fixed-bucket histogram (see [`bucket_bound`] for the bucket layout).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramRecord {
    /// Histogram name, e.g. `eval.query_ns`.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-bucket counts, `buckets[i]` counting values `<= bucket_bound(i)`.
    pub buckets: Vec<u64>,
}

/// Process-lifetime allocator totals at snapshot time (mirrors
/// [`memtrack::MemStats`] in serializable form).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemTotals {
    /// Cumulative bytes allocated since process start.
    pub alloc_bytes: u64,
    /// Cumulative bytes freed since process start.
    pub dealloc_bytes: u64,
    /// Cumulative allocation count.
    pub allocs: u64,
    /// Cumulative deallocation count.
    pub deallocs: u64,
    /// Bytes live at snapshot (`alloc_bytes - dealloc_bytes`).
    pub live_bytes: u64,
    /// High-water mark of live bytes.
    pub peak_bytes: u64,
}

/// Aggregated allocation windows of one span path.
///
/// `alloc_bytes`/`dealloc_bytes` sum the *window deltas* of the monotonic
/// process totals over every execution of the path — so a span's dealloc
/// may legitimately exceed its alloc (it freed buffers built outside its
/// window); the `dealloc <= alloc` invariant belongs to [`MemTotals`]
/// only. `peak_bytes` is the process high-water mark observed at window
/// *close* (max across executions), which is monotone in time: it names
/// the phase during-or-before which the peak occurred, and a child's
/// value can never exceed its parent's.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanMemRecord {
    /// `/`-separated span path, e.g. `pipeline/rcm`.
    pub path: String,
    /// Number of windows aggregated (executions with memory capture on).
    pub count: u64,
    /// Summed per-window allocated-byte deltas.
    pub alloc_bytes: u64,
    /// Summed per-window freed-byte deltas.
    pub dealloc_bytes: u64,
    /// Max process peak observed at window close.
    pub peak_bytes: u64,
}

/// The memory section of a [`TraceReport`]: allocator totals plus
/// per-span attribution. Present only when the emitting process ran the
/// [`TrackingAllocator`] and the recorder opted in via
/// [`Recorder::with_memory`]. All values are scheduling-dependent (a
/// concurrent thread's allocations land in whatever windows are open) —
/// the same caveat as gauges, see `docs/OBSERVABILITY.md`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryReport {
    /// Process-lifetime allocator totals at snapshot time.
    pub totals: MemTotals,
    /// Per-span windows, sorted by path.
    pub spans: Vec<SpanMemRecord>,
}

/// A serializable snapshot of one traced run. Every section is sorted by
/// name/path; see `docs/OBSERVABILITY.md` for the span taxonomy and the
/// counter glossary.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    /// Aggregated spans, sorted by path.
    pub spans: Vec<SpanRecord>,
    /// Monotonic counters, sorted by name. Scheduling-invariant by
    /// contract.
    pub counters: Vec<CounterRecord>,
    /// Gauges, sorted by name. May be scheduling-dependent.
    pub gauges: Vec<GaugeRecord>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramRecord>,
    /// Allocator totals and per-span memory attribution; `None` unless
    /// the run opted in (see [`MemoryReport`]).
    pub memory: Option<MemoryReport>,
}

impl MemoryReport {
    /// The aggregated memory window at span `path`, if recorded.
    #[must_use]
    pub fn span(&self, path: &str) -> Option<&SpanMemRecord> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Direct children of span `path` (one `/` segment deeper).
    #[must_use]
    pub fn span_children(&self, path: &str) -> Vec<&SpanMemRecord> {
        self.spans
            .iter()
            .filter(|s| {
                s.path.len() > path.len()
                    && s.path.starts_with(path)
                    && s.path.as_bytes()[path.len()] == b'/'
                    && !s.path[path.len() + 1..].contains('/')
            })
            .collect()
    }

    /// Internal-consistency findings of the memory section, empty when it
    /// is coherent. Backs the `CAHD-O002` pass of `cahd-check`:
    ///
    /// * totals are monotone-consistent: `dealloc_bytes <= alloc_bytes`,
    ///   `deallocs <= allocs`, `live_bytes == alloc_bytes - dealloc_bytes`
    ///   and `peak_bytes >= live_bytes` at snapshot;
    /// * span paths are strictly sorted, every window executed at least
    ///   once, and no span's alloc/dealloc/peak exceeds the corresponding
    ///   process total;
    /// * child windows are bounded by their parent: direct children are
    ///   disjoint sub-windows, so their summed alloc (and dealloc) deltas
    ///   fit inside the parent's, and each child's close-time peak is at
    ///   most the parent's (the peak reading is monotone in time). As with
    ///   wall-clock nesting, a span whose parent path is absent counts as
    ///   the root of a partial trace.
    #[must_use]
    pub fn consistency_findings(&self) -> Vec<String> {
        let mut out = Vec::new();
        check_sorted_unique(
            self.spans.iter().map(|s| s.path.as_str()),
            "memory spans",
            &mut out,
        );
        let t = &self.totals;
        if t.dealloc_bytes > t.alloc_bytes {
            out.push(format!(
                "memory totals freed {} bytes but only {} were allocated",
                t.dealloc_bytes, t.alloc_bytes
            ));
        } else if t.live_bytes != t.alloc_bytes - t.dealloc_bytes {
            out.push(format!(
                "memory totals live {} bytes, expected alloc - dealloc = {}",
                t.live_bytes,
                t.alloc_bytes - t.dealloc_bytes
            ));
        }
        if t.deallocs > t.allocs {
            out.push(format!(
                "memory totals count {} deallocations but only {} allocations",
                t.deallocs, t.allocs
            ));
        }
        if t.peak_bytes < t.live_bytes {
            out.push(format!(
                "memory totals peak {} bytes is below the live {} bytes",
                t.peak_bytes, t.live_bytes
            ));
        }
        for s in &self.spans {
            if s.count == 0 {
                out.push(format!("memory span `{}` recorded zero windows", s.path));
            }
            if s.alloc_bytes > t.alloc_bytes {
                out.push(format!(
                    "memory span `{}` allocated {} bytes, exceeding the process total {}",
                    s.path, s.alloc_bytes, t.alloc_bytes
                ));
            }
            if s.dealloc_bytes > t.dealloc_bytes {
                out.push(format!(
                    "memory span `{}` freed {} bytes, exceeding the process total {}",
                    s.path, s.dealloc_bytes, t.dealloc_bytes
                ));
            }
            if s.peak_bytes > t.peak_bytes {
                out.push(format!(
                    "memory span `{}` saw peak {} bytes, exceeding the process peak {}",
                    s.path, s.peak_bytes, t.peak_bytes
                ));
            }
            let children = self.span_children(&s.path);
            let child_alloc: u64 = children.iter().map(|c| c.alloc_bytes).sum();
            let child_dealloc: u64 = children.iter().map(|c| c.dealloc_bytes).sum();
            if child_alloc > s.alloc_bytes {
                out.push(format!(
                    "children of memory span `{}` allocated {child_alloc} bytes, exceeding the parent's {}",
                    s.path, s.alloc_bytes
                ));
            }
            if child_dealloc > s.dealloc_bytes {
                out.push(format!(
                    "children of memory span `{}` freed {child_dealloc} bytes, exceeding the parent's {}",
                    s.path, s.dealloc_bytes
                ));
            }
            for c in children {
                if c.peak_bytes > s.peak_bytes {
                    out.push(format!(
                        "memory span `{}` saw peak {} bytes, exceeding its parent `{}`'s {}",
                        c.path, c.peak_bytes, s.path, s.peak_bytes
                    ));
                }
            }
        }
        out
    }
}

impl TraceReport {
    /// The value of counter `name`, if recorded.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The value of counter `name`, or 0 when it was never recorded — the
    /// natural reading for monotonic counters, where "absent" and "never
    /// incremented" coincide.
    #[must_use]
    pub fn counter_or_zero(&self, name: &str) -> u64 {
        self.counter(name).unwrap_or(0)
    }

    /// The gauge `name`, if recorded.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The aggregated span at `path`, if recorded.
    #[must_use]
    pub fn span(&self, path: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// The histogram `name`, if recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramRecord> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Paths of non-root spans whose parent path was never recorded.
    ///
    /// [`consistency_findings`](TraceReport::consistency_findings) accepts
    /// such spans as roots of a partial trace; callers expecting a *full*
    /// report rooted at known paths (the `CAHD-O001` pass) treat a
    /// non-empty result as a defect.
    #[must_use]
    pub fn orphan_spans(&self) -> Vec<&str> {
        self.spans
            .iter()
            .filter(|s| {
                s.path
                    .rfind('/')
                    .is_some_and(|cut| self.span(&s.path[..cut]).is_none())
            })
            .map(|s| s.path.as_str())
            .collect()
    }

    /// Direct children of span `path` (one `/` segment deeper).
    #[must_use]
    pub fn span_children(&self, path: &str) -> Vec<&SpanRecord> {
        self.spans
            .iter()
            .filter(|s| {
                s.path.len() > path.len()
                    && s.path.starts_with(path)
                    && s.path.as_bytes()[path.len()] == b'/'
                    && !s.path[path.len() + 1..].contains('/')
            })
            .collect()
    }

    /// Generic internal-consistency findings, empty when the report is
    /// coherent. Backs the `CAHD-O001` pass of `cahd-check`:
    ///
    /// * section ordering: every section sorted by name with no duplicates
    ///   (the shape [`Recorder::snapshot`] guarantees);
    /// * span nesting: the direct children of a span account for at most
    ///   its own total time (children time inside their parent; spans are
    ///   recorded on the driving thread only, concurrent work is histogram
    ///   territory). A span whose parent path was never recorded counts as
    ///   a root — partial traces (e.g. a standalone RCM run rooted at
    ///   `pipeline/rcm`) are coherent; use [`TraceReport::orphan_spans`]
    ///   when a report must be rooted at specific paths;
    /// * histograms: bucket counts sum to the recorded `count`, the bucket
    ///   vector has the fixed [`N_BUCKETS`] length, and `sum` is
    ///   consistent with the populated buckets' bounds.
    #[must_use]
    pub fn consistency_findings(&self) -> Vec<String> {
        let mut out = Vec::new();
        check_sorted_unique(
            self.spans.iter().map(|s| s.path.as_str()),
            "spans",
            &mut out,
        );
        check_sorted_unique(
            self.counters.iter().map(|c| c.name.as_str()),
            "counters",
            &mut out,
        );
        check_sorted_unique(
            self.gauges.iter().map(|g| g.name.as_str()),
            "gauges",
            &mut out,
        );
        check_sorted_unique(
            self.histograms.iter().map(|h| h.name.as_str()),
            "histograms",
            &mut out,
        );

        for s in &self.spans {
            let children_ns: u64 = self.span_children(&s.path).iter().map(|c| c.total_ns).sum();
            if children_ns > s.total_ns {
                out.push(format!(
                    "children of span `{}` total {children_ns} ns, exceeding the parent's {} ns",
                    s.path, s.total_ns
                ));
            }
        }

        for h in &self.histograms {
            if h.buckets.len() != N_BUCKETS {
                out.push(format!(
                    "histogram `{}` has {} buckets, expected {N_BUCKETS}",
                    h.name,
                    h.buckets.len()
                ));
                continue;
            }
            let total: u64 = h.buckets.iter().sum();
            if total != h.count {
                out.push(format!(
                    "histogram `{}` buckets sum to {total}, count says {}",
                    h.name, h.count
                ));
            }
            // Upper bound on the sum implied by the populated buckets.
            let max_sum = h.buckets.iter().enumerate().fold(0u64, |acc, (i, &c)| {
                acc.saturating_add(bucket_bound(i).saturating_mul(c))
            });
            if h.sum > max_sum {
                out.push(format!(
                    "histogram `{}` sum {} exceeds the maximum {max_sum} its buckets allow",
                    h.name, h.sum
                ));
            }
        }
        out
    }

    /// Renders a human-readable metrics summary (the CLI `--metrics` view):
    /// a span tree with milliseconds, then counters, gauges and histogram
    /// digests.
    #[must_use]
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for s in &self.spans {
                let depth = s.path.matches('/').count();
                let name = s.path.rsplit('/').next().unwrap_or(&s.path);
                out.push_str(&format!(
                    "  {:indent$}{name:<24} {:>10.3} ms  x{}\n",
                    "",
                    s.total_ns as f64 / 1e6,
                    s.count,
                    indent = depth * 2,
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for c in &self.counters {
                out.push_str(&format!("  {:<40} {}\n", c.name, c.value));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for g in &self.gauges {
                out.push_str(&format!("  {:<40} {:.3}\n", g.name, g.value));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.histograms {
                let mean = if h.count == 0 {
                    0.0
                } else {
                    h.sum as f64 / h.count as f64
                };
                out.push_str(&format!(
                    "  {:<40} count {} mean {mean:.1} p99<={}\n",
                    h.name,
                    h.count,
                    approx_quantile_bound(&h.buckets, h.count, 0.99),
                ));
            }
        }
        if let Some(m) = &self.memory {
            let t = &m.totals;
            out.push_str("memory (tracking allocator; scheduling-dependent):\n");
            out.push_str(&format!(
                "  totals: alloc {} in {} allocs, freed {}, live {}, peak {}\n",
                fmt_bytes(t.alloc_bytes),
                t.allocs,
                fmt_bytes(t.dealloc_bytes),
                fmt_bytes(t.live_bytes),
                fmt_bytes(t.peak_bytes),
            ));
            for s in &m.spans {
                let depth = s.path.matches('/').count();
                let name = s.path.rsplit('/').next().unwrap_or(&s.path);
                let net = i128::from(s.alloc_bytes) - i128::from(s.dealloc_bytes);
                let sign = if net < 0 { "-" } else { "+" };
                out.push_str(&format!(
                    "  {:indent$}{name:<24} alloc {:>10}  net {sign}{:>9}  peak@close {:>10}  x{}\n",
                    "",
                    fmt_bytes(s.alloc_bytes),
                    fmt_bytes(net.unsigned_abs().try_into().unwrap_or(u64::MAX)),
                    fmt_bytes(s.peak_bytes),
                    s.count,
                    indent = depth * 2,
                ));
            }
        }
        out
    }
}

/// Human-readable byte count (`1.5 MiB`-style, exact below 1 KiB).
fn fmt_bytes(b: u64) -> String {
    const KIB: f64 = 1024.0;
    let bf = b as f64;
    if bf >= KIB * KIB * KIB {
        format!("{:.2} GiB", bf / (KIB * KIB * KIB))
    } else if bf >= KIB * KIB {
        format!("{:.2} MiB", bf / (KIB * KIB))
    } else if bf >= KIB {
        format!("{:.1} KiB", bf / KIB)
    } else {
        format!("{b} B")
    }
}

/// Smallest bucket upper bound covering at least `q` of the observations.
fn approx_quantile_bound(buckets: &[u64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let target = (count as f64 * q).ceil() as u64;
    let mut acc = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        acc += c;
        if acc >= target {
            return bucket_bound(i);
        }
    }
    u64::MAX
}

fn check_sorted_unique<'a>(
    names: impl Iterator<Item = &'a str>,
    section: &str,
    out: &mut Vec<String>,
) {
    let mut prev: Option<&str> = None;
    for n in names {
        if let Some(p) = prev {
            if p >= n {
                out.push(format!(
                    "section `{section}` is not strictly sorted at `{n}` (after `{p}`)"
                ));
            }
        }
        prev = Some(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        {
            let _s = rec.span("pipeline");
            rec.add("c", 5);
            rec.gauge("g", 1.0);
            rec.observe("h", 3);
        }
        let report = rec.snapshot();
        assert_eq!(report, TraceReport::default());
    }

    #[test]
    fn spans_aggregate_by_path() {
        let rec = Recorder::new();
        for _ in 0..3 {
            let _s = rec.span("pipeline");
        }
        let report = rec.snapshot();
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.span("pipeline").unwrap().count, 3);
    }

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let rec = Recorder::new();
        rec.add("b", 2);
        rec.incr("a");
        rec.add("b", 3);
        let report = rec.snapshot();
        assert_eq!(report.counter("a"), Some(1));
        assert_eq!(report.counter("b"), Some(5));
        assert_eq!(report.counters[0].name, "a");
        assert!(report.consistency_findings().is_empty());
    }

    #[test]
    fn histogram_buckets_and_merge() {
        let mut h = Histogram::new();
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(1_000_000);
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets[0], 2); // 0 and 1 both <= 2^0
        assert_eq!(h.buckets[1], 1);
        let mut h2 = Histogram::new();
        h2.observe(u64::MAX);
        h.merge(&h2);
        assert_eq!(h.count, 5);
        assert_eq!(h.buckets[N_BUCKETS - 1], 1);
        // Sum saturates instead of wrapping when observations overflow u64.
        assert_eq!(h.sum, u64::MAX);
    }

    #[test]
    fn bucket_bounds_cover_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
        assert_eq!(bucket_bound(N_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn local_histogram_merges_into_recorder() {
        let rec = Recorder::new();
        let mut local = Histogram::new();
        local.observe(4);
        local.observe(5);
        rec.record_histogram("sizes", &local);
        rec.observe("sizes", 6);
        let report = rec.snapshot();
        let h = report.histogram("sizes").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 15);
        assert!(report.consistency_findings().is_empty());
    }

    #[test]
    fn nesting_findings_flag_orphans_and_overflow() {
        let rec = Recorder::new();
        rec.record_span_ns("pipeline", 100);
        rec.record_span_ns("pipeline/rcm", 60);
        rec.record_span_ns("pipeline/group", 30);
        assert!(rec.snapshot().consistency_findings().is_empty());

        // An orphan child is coherent (a partial-trace root) but listed.
        rec.record_span_ns("other/child", 10);
        let report = rec.snapshot();
        assert!(report.consistency_findings().is_empty());
        assert_eq!(report.orphan_spans(), vec!["other/child"]);

        // Children exceeding the parent.
        let rec2 = Recorder::new();
        rec2.record_span_ns("p", 10);
        rec2.record_span_ns("p/a", 8);
        rec2.record_span_ns("p/b", 8);
        let findings = rec2.snapshot().consistency_findings();
        assert!(
            findings.iter().any(|f| f.contains("exceeding the parent")),
            "{findings:?}"
        );
    }

    #[test]
    fn tampered_histogram_is_flagged() {
        let rec = Recorder::new();
        rec.observe("h", 5);
        let mut report = rec.snapshot();
        report.histograms[0].count = 7;
        let findings = report.consistency_findings();
        assert!(
            findings.iter().any(|f| f.contains("buckets sum")),
            "{findings:?}"
        );
        let mut report2 = rec.snapshot();
        report2.histograms[0].sum = u64::MAX;
        let findings2 = report2.consistency_findings();
        assert!(
            findings2.iter().any(|f| f.contains("exceeds the maximum")),
            "{findings2:?}"
        );
    }

    #[test]
    fn counter_or_zero_defaults_missing_counters() {
        let rec = Recorder::new();
        rec.add("present", 3);
        let report = rec.snapshot();
        assert_eq!(report.counter_or_zero("present"), 3);
        assert_eq!(report.counter_or_zero("absent"), 0);
        assert_eq!(Recorder::disabled().snapshot().counter_or_zero("x"), 0);
    }

    #[test]
    fn memory_capture_is_inert_without_the_allocator() {
        // The lib test binary does not register `TrackingAllocator`, so
        // even an opted-in recorder must emit no memory section and its
        // report must be byte-identical to a plain recorder's.
        assert!(!memtrack::is_active());
        let rec = Recorder::new().with_memory();
        assert!(!rec.memory_tracking());
        {
            let _s = rec.span("pipeline");
            rec.add("c", 1);
        }
        rec.record_memory_gauges();
        let report = rec.snapshot();
        assert!(report.memory.is_none());
        let plain = Recorder::new();
        {
            let _s = plain.span("pipeline");
            plain.add("c", 1);
        }
        let plain_report = plain.snapshot();
        assert!(plain_report.memory.is_none());
        // Identical shape (wall-clock aside): same spans, no gauges.
        assert_eq!(report.spans.len(), plain_report.spans.len());
        assert_eq!(report.spans[0].path, plain_report.spans[0].path);
        assert_eq!(report.gauges, plain_report.gauges);
        assert!(report.gauges.is_empty());
    }

    /// A small coherent memory section: a parent window with two children
    /// plus unattributed slack at every level.
    fn sample_memory() -> MemoryReport {
        MemoryReport {
            totals: MemTotals {
                alloc_bytes: 10_000,
                dealloc_bytes: 9_000,
                allocs: 120,
                deallocs: 110,
                live_bytes: 1_000,
                peak_bytes: 6_000,
            },
            spans: vec![
                SpanMemRecord {
                    path: "pipeline".into(),
                    count: 1,
                    alloc_bytes: 8_000,
                    dealloc_bytes: 7_500,
                    peak_bytes: 5_500,
                },
                SpanMemRecord {
                    path: "pipeline/group".into(),
                    count: 2,
                    alloc_bytes: 3_000,
                    dealloc_bytes: 2_800,
                    peak_bytes: 5_500,
                },
                SpanMemRecord {
                    path: "pipeline/rcm".into(),
                    count: 1,
                    alloc_bytes: 4_000,
                    dealloc_bytes: 4_200,
                    peak_bytes: 4_800,
                },
            ],
        }
    }

    #[test]
    fn memory_findings_accept_coherent_sections() {
        let mem = sample_memory();
        assert!(mem.consistency_findings().is_empty());
        // Per-span dealloc may exceed its alloc (pipeline/rcm frees
        // buffers built outside its window) — that is *not* a finding.
        assert!(mem.span("pipeline/rcm").unwrap().dealloc_bytes > 4_000);
        assert_eq!(mem.span_children("pipeline").len(), 2);
    }

    type Tamper = Box<dyn Fn(&mut MemoryReport)>;

    #[test]
    fn memory_findings_flag_tampering() {
        let tamper: [(&str, Tamper); 6] = [
            ("freed", Box::new(|m| m.totals.dealloc_bytes = 20_000)),
            ("live", Box::new(|m| m.totals.live_bytes = 42)),
            ("peak", Box::new(|m| m.totals.peak_bytes = 500)),
            (
                "exceeding the process total",
                Box::new(|m| m.spans[1].alloc_bytes = 50_000),
            ),
            (
                "children of memory span",
                Box::new(|m| m.spans[0].alloc_bytes = 6_000),
            ),
            (
                "exceeding its parent",
                Box::new(|m| m.spans[2].peak_bytes = 5_600),
            ),
        ];
        for (needle, mutate) in tamper {
            let mut mem = sample_memory();
            mutate(&mut mem);
            let findings = mem.consistency_findings();
            assert!(
                findings.iter().any(|f| f.contains(needle)),
                "tamper `{needle}` not flagged: {findings:?}"
            );
        }
    }

    #[test]
    fn memory_section_roundtrips_through_serde_shim() {
        let report = TraceReport {
            spans: vec![SpanRecord {
                path: "pipeline".into(),
                count: 1,
                total_ns: 10,
            }],
            memory: Some(sample_memory()),
            ..TraceReport::default()
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: TraceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn render_human_shows_memory_section() {
        let report = TraceReport {
            memory: Some(sample_memory()),
            ..TraceReport::default()
        };
        let text = report.render_human();
        assert!(text.contains("memory (tracking allocator"), "{text}");
        assert!(text.contains("peak@close"), "{text}");
        assert!(text.contains("rcm"), "{text}");
        // Reports without the section render no memory block.
        assert!(!TraceReport::default().render_human().contains("memory"));
    }

    #[test]
    fn report_roundtrips_through_serde_shim() {
        let rec = Recorder::new();
        rec.record_span_ns("pipeline", 42);
        rec.add("core.groups_formed", 7);
        rec.gauge("core.shards", 4.0);
        rec.observe("eval.query_ns", 1234);
        let report = rec.snapshot();
        let json = serde_json::to_string(&report).unwrap();
        let back: TraceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn render_human_shows_all_sections() {
        let rec = Recorder::new();
        rec.record_span_ns("pipeline", 2_000_000);
        rec.record_span_ns("pipeline/rcm", 1_000_000);
        rec.add("core.groups_formed", 7);
        rec.gauge("core.shards", 4.0);
        rec.observe("eval.query_ns", 100);
        let text = rec.snapshot().render_human();
        assert!(text.contains("spans:"), "{text}");
        assert!(text.contains("core.groups_formed"), "{text}");
        assert!(text.contains("core.shards"), "{text}");
        assert!(text.contains("eval.query_ns"), "{text}");
    }

    #[test]
    fn merge_from_absorbs_a_scratch_recorder() {
        let rec = Recorder::new();
        rec.add("c", 2);
        rec.record_span_ns("pipeline", 10);
        let scratch = Recorder::new();
        scratch.add("c", 3);
        scratch.record_span_ns("pipeline", 5);
        scratch.gauge("g", 7.0);
        scratch.observe("h", 4);
        rec.merge_from(&scratch);
        let report = rec.snapshot();
        assert_eq!(report.counter("c"), Some(5));
        let span = report.span("pipeline").unwrap();
        assert_eq!((span.count, span.total_ns), (2, 15));
        assert_eq!(report.gauge("g"), Some(7.0));
        assert_eq!(report.histogram("h").unwrap().count, 1);
        // A dropped scratch recorder leaves the target untouched, and a
        // disabled target ignores merges.
        let disabled = Recorder::disabled();
        disabled.merge_from(&scratch);
        assert_eq!(disabled.snapshot(), TraceReport::default());
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = Recorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rec = &rec;
                scope.spawn(move || {
                    for _ in 0..100 {
                        rec.incr("events");
                    }
                });
            }
        });
        assert_eq!(rec.snapshot().counter("events"), Some(400));
    }
}
