//! Process-wide allocation tracking behind the memory sections of
//! [`crate::TraceReport`].
//!
//! [`TrackingAllocator`] wraps [`std::alloc::System`] and maintains five
//! relaxed atomics: cumulative allocated/freed bytes, allocation and
//! deallocation counts, and the high-water mark of live bytes. Binaries
//! opt in by registering it as the global allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: cahd_obs::TrackingAllocator = cahd_obs::TrackingAllocator::new();
//! ```
//!
//! Library code never registers it, so `cahd-obs` stays dependency-free
//! and zero-cost for embedders: every reader below checks
//! [`is_active`] (any allocation observed at all) and degrades to "no
//! data" when the wrapper is not installed.
//!
//! # Accounting model
//!
//! * `alloc_bytes` / `dealloc_bytes` and `allocs` / `deallocs` are
//!   **monotonic, process-lifetime totals** — `dealloc_* <= alloc_*`
//!   always holds, which is what makes window deltas over them
//!   well-defined under concurrency.
//! * `live_bytes` is derived as `alloc_bytes - dealloc_bytes` at read
//!   time; `peak_bytes` is its high-water mark, updated on every
//!   allocation with a relaxed `fetch_max`.
//! * All counters use `Ordering::Relaxed`: the numbers are observability
//!   data, not synchronization, and the allocator hot path must stay a
//!   handful of uncontended atomic ops.
//!
//! Everything here is scheduling-dependent by nature (another thread's
//! allocations land in whatever window is open), so trace consumers get
//! these numbers under the same caveat as gauges — see the determinism
//! contract in the crate docs and `docs/OBSERVABILITY.md`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static DEALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed global allocator that counts every allocation.
///
/// See the module docs for the accounting model and the registration
/// snippet. The wrapper adds two relaxed atomic RMWs per `alloc`/`dealloc`
/// (plus a `fetch_max` for the peak on allocation) and delegates the
/// actual memory management to [`System`] untouched.
pub struct TrackingAllocator;

impl TrackingAllocator {
    /// Creates the allocator (`const`, so it can initialize the
    /// `#[global_allocator]` static).
    #[must_use]
    pub const fn new() -> Self {
        TrackingAllocator
    }
}

impl Default for TrackingAllocator {
    fn default() -> Self {
        TrackingAllocator::new()
    }
}

fn on_alloc(bytes: u64) {
    ALLOCS.fetch_add(1, Relaxed);
    let allocated = ALLOC_BYTES.fetch_add(bytes, Relaxed).saturating_add(bytes);
    let freed = DEALLOC_BYTES.load(Relaxed);
    PEAK_BYTES.fetch_max(allocated.saturating_sub(freed), Relaxed);
}

fn on_dealloc(bytes: u64) {
    DEALLOCS.fetch_add(1, Relaxed);
    DEALLOC_BYTES.fetch_add(bytes, Relaxed);
}

// The one place in the workspace where `unsafe` is structurally
// unavoidable: `GlobalAlloc` is an unsafe trait. The impl adds no unsafe
// operations of its own beyond delegating to `System` with the caller's
// (already trusted) layout contract.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            on_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            // Accounted as free-then-alloc so the monotonic totals keep
            // their `dealloc <= alloc` invariant and the live-byte delta
            // is exactly `new_size - old_size`.
            on_alloc(new_size as u64);
            on_dealloc(layout.size() as u64);
        }
        new_ptr
    }
}

/// One coherent reading of the allocator counters.
///
/// `live_bytes` and `peak_bytes` are derived at read time so that
/// `live_bytes == alloc_bytes - dealloc_bytes` and
/// `peak_bytes >= live_bytes` hold *within* a single `MemStats` value
/// even while other threads allocate concurrently.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Cumulative bytes allocated since process start.
    pub alloc_bytes: u64,
    /// Cumulative bytes freed since process start.
    pub dealloc_bytes: u64,
    /// Cumulative allocation count.
    pub allocs: u64,
    /// Cumulative deallocation count.
    pub deallocs: u64,
    /// Bytes currently live (`alloc_bytes - dealloc_bytes`).
    pub live_bytes: u64,
    /// High-water mark of live bytes.
    pub peak_bytes: u64,
}

/// Reads the current allocator counters. All zeros when
/// [`TrackingAllocator`] is not the process's global allocator.
#[must_use]
pub fn stats() -> MemStats {
    // Relaxed loads in dealloc-before-alloc order: any deallocated byte
    // was counted as allocated first, so reading the dealloc side first
    // keeps `dealloc_bytes <= alloc_bytes` in the returned value.
    let dealloc_bytes = DEALLOC_BYTES.load(Relaxed);
    let deallocs = DEALLOCS.load(Relaxed);
    let alloc_bytes = ALLOC_BYTES.load(Relaxed).max(dealloc_bytes);
    let allocs = ALLOCS.load(Relaxed).max(deallocs);
    let live_bytes = alloc_bytes - dealloc_bytes;
    MemStats {
        alloc_bytes,
        dealloc_bytes,
        allocs,
        deallocs,
        live_bytes,
        peak_bytes: PEAK_BYTES.load(Relaxed).max(live_bytes),
    }
}

/// Whether the tracking allocator is installed and has observed at least
/// one allocation. Any running binary allocates almost immediately, so
/// this doubles as the "is the wrapper registered at all" probe that
/// keeps the recorder's memory capture inert in processes that use the
/// default allocator.
#[must_use]
pub fn is_active() -> bool {
    ALLOCS.load(Relaxed) > 0
}

/// Resets the peak high-water mark to the current live-byte count.
///
/// For harnesses that measure several workloads in one process (the
/// perf-snapshot emitter): without a reset the peak is monotone over the
/// process lifetime and every entry after the largest one reads the same
/// number. Call only between measurement windows — resetting while a
/// memory-tracking span is open can make that span's recorded peak
/// non-monotone against its parent, which the `CAHD-O002` audit flags.
pub fn reset_peak() {
    let live = ALLOC_BYTES
        .load(Relaxed)
        .saturating_sub(DEALLOC_BYTES.load(Relaxed));
    PEAK_BYTES.store(live, Relaxed);
}
