//! George–Liu pseudo-peripheral root finding.
//!
//! The bandwidth quality of a Cuthill-McKee ordering depends strongly on
//! the root: a vertex at one end of a *pseudo-diameter* (a pair of vertices
//! whose distance is close to the graph diameter) yields deep, narrow level
//! structures. The paper's Fig. 4 step 1 ("pick peripheral vertex, compute
//! pseudo-diameter") is realized here with the classic George–Liu iteration:
//!
//! 1. start from any vertex `v` of the component,
//! 2. build the level structure `L(v)`,
//! 3. let `u` be a minimum-degree vertex of the deepest level,
//! 4. if `ecc(u) > ecc(v)`, set `v = u` and repeat; otherwise stop.
//!
//! The iteration is linear in the component size per round and terminates
//! because eccentricity strictly increases.

use cahd_sparse::NeighborOracle;

use crate::level::LevelStructure;

/// Finds a pseudo-peripheral vertex of the component containing `start`,
/// returning it together with its level structure.
///
/// `mark`/`stamp_counter` are the reusable visited flags shared with the
/// other traversals; the function bumps `*stamp_counter` for every BFS it
/// performs.
pub fn pseudo_peripheral_with_scratch(
    g: &impl NeighborOracle,
    start: u32,
    mark: &mut [u32],
    stamp_counter: &mut u32,
) -> (u32, LevelStructure) {
    let mut v = start;
    *stamp_counter += 1;
    let mut lv = LevelStructure::build(g, v, mark, *stamp_counter);
    loop {
        // Minimum-degree vertex in the deepest level.
        let u = *lv
            .last_level()
            .iter()
            .min_by_key(|&&w| (g.degree(w as usize), w))
            // cahd-lint: allow(L003, reason = "a BFS level structure rooted at v always has a non-empty last level (it contains v at minimum)")
            .expect("levels are non-empty");
        if u == v {
            return (v, lv);
        }
        *stamp_counter += 1;
        let lu = LevelStructure::build(g, u, mark, *stamp_counter);
        if lu.eccentricity() > lv.eccentricity() {
            v = u;
            lv = lu;
        } else {
            return (v, lv);
        }
    }
}

/// Convenience wrapper that allocates its own scratch space.
pub fn pseudo_peripheral(g: &impl NeighborOracle, start: u32) -> (u32, LevelStructure) {
    let mut mark = vec![0u32; g.n_vertices()];
    let mut stamp = 0u32;
    pseudo_peripheral_with_scratch(g, start, &mut mark, &mut stamp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cahd_sparse::Graph;

    #[test]
    fn path_finds_an_end() {
        // Path 0-1-2-3-4; starting from the middle should walk to an end.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let (root, l) = pseudo_peripheral(&g, 2);
        assert!(root == 0 || root == 4, "got {root}");
        assert_eq!(l.eccentricity(), 4);
    }

    #[test]
    fn star_moves_off_center() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let (root, l) = pseudo_peripheral(&g, 0);
        assert_ne!(root, 0);
        assert_eq!(l.eccentricity(), 2);
    }

    #[test]
    fn already_peripheral_is_stable() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let (root, l) = pseudo_peripheral(&g, 0);
        assert_eq!(l.eccentricity(), 2);
        assert!(root == 0 || root == 2);
    }

    #[test]
    fn isolated_vertex_returns_itself() {
        let g = Graph::from_edges(2, &[]);
        let (root, l) = pseudo_peripheral(&g, 1);
        assert_eq!(root, 1);
        assert_eq!(l.n_vertices(), 1);
    }

    #[test]
    fn lollipop_prefers_tail_end() {
        // Clique {0,1,2} with a tail 2-3-4-5: pseudo-peripheral from inside
        // the clique should reach the tail end (eccentricity 4 from 0/1).
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let (_, l) = pseudo_peripheral(&g, 2);
        assert!(l.eccentricity() >= 4);
    }
}
