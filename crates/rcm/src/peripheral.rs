//! George–Liu pseudo-peripheral root finding.
//!
//! The bandwidth quality of a Cuthill-McKee ordering depends strongly on
//! the root: a vertex at one end of a *pseudo-diameter* (a pair of vertices
//! whose distance is close to the graph diameter) yields deep, narrow level
//! structures. The paper's Fig. 4 step 1 ("pick peripheral vertex, compute
//! pseudo-diameter") is realized here with the classic George–Liu iteration:
//!
//! 1. start from any vertex `v` of the component,
//! 2. build the level structure `L(v)`,
//! 3. let `u` be a minimum-degree vertex of the deepest level,
//! 4. if `ecc(u) > ecc(v)`, set `v = u` and repeat; otherwise stop.
//!
//! The iteration is linear in the component size per round and terminates
//! because eccentricity strictly increases.
//!
//! # Determinism: the restart/tie rule
//!
//! The returned root — and through it every downstream ordering — is a
//! pure function of the *graph* (vertex count plus adjacency sets), never
//! of input edge order, thread count, or adjacency *enumeration* order:
//!
//! * **Candidate rule (step 3).** Among the deepest level's vertices, the
//!   next candidate `u` is the minimum under the `(degree, vertex-id)`
//!   key. Degree and level membership are set-determined; the id breaks
//!   ties totally, so `u` never depends on the order the level was
//!   discovered in.
//! * **Restart rule (step 4).** The iteration restarts from `u` only on a
//!   *strict* eccentricity increase (`ecc(u) > ecc(v)`); on a tie it keeps
//!   `v`. Combined with the candidate rule this makes the whole visit
//!   sequence `v, u, ...` — and hence the final root — reproducible.
//! * **Fixed point.** If the candidate `u` equals `v` itself, `v` is
//!   returned immediately (an isolated vertex is its own candidate).
//!
//! Both the sequential and the frontier-parallel drivers (see
//! [`crate::parallel`]) funnel through the single [`george_liu_iterate`]
//! loop below, so the rule cannot drift between them.

use cahd_sparse::NeighborOracle;

use crate::level::LevelStructure;

/// The shared George–Liu iteration, generic over how level structures are
/// built: `degree(w)` must report the set-determined vertex degree and
/// `build(root)` must return the BFS level structure rooted at `root`.
///
/// This is the *single* home of the pseudo-peripheral restart/tie rule
/// (see the module docs); every driver — sequential, implicit-oracle, and
/// frontier-parallel — delegates here so the chosen root is identical
/// across representations and thread counts.
pub(crate) fn george_liu_iterate(
    degree: impl Fn(u32) -> usize,
    mut build: impl FnMut(u32) -> LevelStructure,
    start: u32,
) -> (u32, LevelStructure) {
    let mut v = start;
    let mut lv = build(v);
    loop {
        // Minimum-(degree, id) vertex in the deepest level.
        let u = *lv
            .last_level()
            .iter()
            .min_by_key(|&&w| (degree(w), w))
            // cahd-lint: allow(L003, reason = "a BFS level structure rooted at v always has a non-empty last level (it contains v at minimum)")
            .expect("levels are non-empty");
        if u == v {
            return (v, lv);
        }
        let lu = build(u);
        if lu.eccentricity() > lv.eccentricity() {
            v = u;
            lv = lu;
        } else {
            return (v, lv);
        }
    }
}

/// Finds a pseudo-peripheral vertex of the component containing `start`,
/// returning it together with its level structure.
///
/// `mark`/`stamp_counter` are the reusable visited flags shared with the
/// other traversals; the function bumps `*stamp_counter` for every BFS it
/// performs.
pub fn pseudo_peripheral_with_scratch(
    g: &impl NeighborOracle,
    start: u32,
    mark: &mut [u32],
    stamp_counter: &mut u32,
) -> (u32, LevelStructure) {
    george_liu_iterate(
        |w| g.degree(w as usize),
        |root| {
            *stamp_counter += 1;
            LevelStructure::build(g, root, mark, *stamp_counter)
        },
        start,
    )
}

/// Convenience wrapper that allocates its own scratch space.
pub fn pseudo_peripheral(g: &impl NeighborOracle, start: u32) -> (u32, LevelStructure) {
    let mut mark = vec![0u32; g.n_vertices()];
    let mut stamp = 0u32;
    pseudo_peripheral_with_scratch(g, start, &mut mark, &mut stamp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cahd_sparse::Graph;

    #[test]
    fn path_finds_an_end() {
        // Path 0-1-2-3-4; starting from the middle should walk to an end.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let (root, l) = pseudo_peripheral(&g, 2);
        assert!(root == 0 || root == 4, "got {root}");
        assert_eq!(l.eccentricity(), 4);
    }

    #[test]
    fn star_moves_off_center() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let (root, l) = pseudo_peripheral(&g, 0);
        assert_ne!(root, 0);
        assert_eq!(l.eccentricity(), 2);
    }

    #[test]
    fn already_peripheral_is_stable() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let (root, l) = pseudo_peripheral(&g, 0);
        assert_eq!(l.eccentricity(), 2);
        assert!(root == 0 || root == 2);
    }

    #[test]
    fn isolated_vertex_returns_itself() {
        let g = Graph::from_edges(2, &[]);
        let (root, l) = pseudo_peripheral(&g, 1);
        assert_eq!(root, 1);
        assert_eq!(l.n_vertices(), 1);
    }

    #[test]
    fn lollipop_prefers_tail_end() {
        // Clique {0,1,2} with a tail 2-3-4-5: pseudo-peripheral from inside
        // the clique should reach the tail end (eccentricity 4 from 0/1).
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let (_, l) = pseudo_peripheral(&g, 2);
        assert!(l.eccentricity() >= 4);
    }

    #[test]
    fn edge_order_does_not_change_root() {
        // The same wheel-with-tail graph presented in four different edge
        // orders: the chosen pseudo-peripheral root must be identical
        // (the module-level restart/tie rule is set-determined).
        let edges = [
            (0u32, 1u32),
            (0, 2),
            (0, 3),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
        ];
        let mut variants: Vec<Vec<(u32, u32)>> = Vec::new();
        variants.push(edges.to_vec());
        let mut rev = edges.to_vec();
        rev.reverse();
        variants.push(rev);
        let mut swapped: Vec<(u32, u32)> = edges.iter().map(|&(a, b)| (b, a)).collect();
        variants.push(swapped.clone());
        swapped.rotate_left(3);
        variants.push(swapped);
        let roots: Vec<u32> = variants
            .iter()
            .map(|es| {
                let g = Graph::from_edges(7, es);
                pseudo_peripheral(&g, 0).0
            })
            .collect();
        assert!(
            roots.windows(2).all(|w| w[0] == w[1]),
            "roots varied with edge order: {roots:?}"
        );
    }
}
