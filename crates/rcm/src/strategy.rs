//! Run-time selection of the band-reducing row-ordering strategy.
//!
//! Mirrors the `KernelMode` pattern of `cahd-core`: a small enum with a
//! canonical name per variant, parseable from `--ordering` and the
//! `CAHD_ORDERING` environment variable, resolved once per run at the
//! pipeline entry point so CI can force any strategy through any entry
//! point without touching configs.

/// Which band-reducing row ordering the unsymmetric reduction runs.
///
/// All strategies produce a valid row permutation; they trade ordering
/// cost against band quality (and hence downstream anonymization
/// utility). [`OrderingStrategy::Rcm`] is byte-identical to the
/// sequential reference RCM at every thread count; the cheaper
/// strategies are deterministic but intentionally different orders.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OrderingStrategy {
    /// Reverse Cuthill-McKee over the `A x A^T` row graph (the paper's
    /// method, Fig. 4/5). Best band quality; the default.
    #[default]
    Rcm,
    /// Reversed BFS from the pseudo-peripheral root, skipping the
    /// Cuthill-McKee degree sort: the George–Liu level structure that the
    /// root search already built *is* the ordering. Slightly wider bands
    /// than RCM, but the entire CM pass disappears.
    Bfs,
    /// Cluster-then-order: rows sorted by fixed-seed MinHash signatures
    /// (see [`crate::ordering::cluster_order`]), skipping the `A x A^T`
    /// graph entirely. Linear time; the cheapest strategy, in the spirit
    /// of clustering-based query-log anonymization.
    Cluster,
}

impl OrderingStrategy {
    /// Every strategy, for sweeps and test matrices.
    pub const ALL: [OrderingStrategy; 3] = [
        OrderingStrategy::Rcm,
        OrderingStrategy::Bfs,
        OrderingStrategy::Cluster,
    ];

    /// Parses a strategy name as used by `--ordering` and
    /// `CAHD_ORDERING`: `rcm`, `bfs` or `cluster`.
    pub fn parse(s: &str) -> Option<OrderingStrategy> {
        match s {
            "rcm" => Some(OrderingStrategy::Rcm),
            "bfs" => Some(OrderingStrategy::Bfs),
            "cluster" => Some(OrderingStrategy::Cluster),
            _ => None,
        }
    }

    /// The strategy named by the `CAHD_ORDERING` environment variable, if
    /// set to a recognized value.
    pub fn from_env() -> Option<OrderingStrategy> {
        std::env::var("CAHD_ORDERING")
            .ok()
            .and_then(|v| OrderingStrategy::parse(v.trim()))
    }

    /// Resolves the effective strategy: a recognized `CAHD_ORDERING`
    /// value overrides the configured one. Entry points resolve once per
    /// run; unrecognized values are ignored.
    pub fn resolved(self) -> OrderingStrategy {
        OrderingStrategy::from_env().unwrap_or(self)
    }

    /// The canonical name ([`OrderingStrategy::parse`] accepts it back).
    pub fn name(self) -> &'static str {
        match self {
            OrderingStrategy::Rcm => "rcm",
            OrderingStrategy::Bfs => "bfs",
            OrderingStrategy::Cluster => "cluster",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_names() {
        for s in OrderingStrategy::ALL {
            assert_eq!(OrderingStrategy::parse(s.name()), Some(s));
        }
        assert_eq!(OrderingStrategy::parse("minhash"), None);
        assert_eq!(OrderingStrategy::parse(""), None);
    }

    #[test]
    fn default_is_rcm() {
        assert_eq!(OrderingStrategy::default(), OrderingStrategy::Rcm);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = OrderingStrategy::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), OrderingStrategy::ALL.len());
    }
}
