//! Rooted BFS level structures.
//!
//! A level structure `L(v) = {L0, L1, ..., Lh}` partitions the component of
//! `v` by BFS distance from `v`. Its *eccentricity* `h` and *width*
//! `max |Li|` drive the pseudo-peripheral root search: RCM wants a root of
//! (nearly) maximal eccentricity, because deep, narrow level structures
//! produce orderings with small bandwidth.

use cahd_sparse::NeighborOracle;

/// A BFS level structure rooted at some vertex, confined to that vertex's
/// connected component.
#[derive(Clone, Debug)]
pub struct LevelStructure {
    root: u32,
    /// Concatenated vertices, level by level (each level in discovery
    /// order).
    verts: Vec<u32>,
    /// `offsets[k]..offsets[k+1]` indexes level `k` in `verts`.
    offsets: Vec<usize>,
}

impl LevelStructure {
    /// Builds the level structure rooted at `root`.
    ///
    /// `mark`/`stamp` implement O(1) reusable visited flags: a vertex is
    /// visited iff `mark[v] == stamp`. The caller increments `stamp` between
    /// unrelated traversals and keeps `mark.len() == g.n_vertices()`.
    pub fn build(g: &impl NeighborOracle, root: u32, mark: &mut [u32], stamp: u32) -> Self {
        debug_assert_eq!(mark.len(), g.n_vertices());
        let mut verts: Vec<u32> = vec![root];
        let mut offsets: Vec<usize> = vec![0];
        mark[root as usize] = stamp;
        let mut level_start = 0usize;
        let mut nbrs: Vec<u32> = Vec::new();
        while level_start < verts.len() {
            let level_end = verts.len();
            offsets.push(level_end);
            for i in level_start..level_end {
                let v = verts[i] as usize;
                nbrs.clear();
                g.neighbors_into(v, &mut nbrs);
                for &w in &nbrs {
                    if mark[w as usize] != stamp {
                        mark[w as usize] = stamp;
                        verts.push(w);
                    }
                }
            }
            if verts.len() == level_end {
                break; // no new level
            }
            level_start = level_end;
        }
        LevelStructure {
            root,
            verts,
            offsets,
        }
    }

    /// Convenience constructor that allocates its own visited flags.
    pub fn rooted_at(g: &impl NeighborOracle, root: u32) -> Self {
        let mut mark = vec![0u32; g.n_vertices()];
        Self::build(g, root, &mut mark, 1)
    }

    /// Assembles a level structure from pre-computed parts (the parallel
    /// frontier engine builds `verts`/`offsets` itself). `offsets` must
    /// follow the [`LevelStructure::build`] convention: `offsets[k]` is
    /// the start of level `k` in `verts`, with a final entry equal to
    /// `verts.len()`.
    pub(crate) fn from_raw(root: u32, verts: Vec<u32>, offsets: Vec<usize>) -> Self {
        debug_assert!(offsets.len() >= 2);
        debug_assert_eq!(*offsets.last().unwrap_or(&0), verts.len());
        LevelStructure {
            root,
            verts,
            offsets,
        }
    }

    /// The root vertex.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Number of levels (`h + 1` where `h` is the eccentricity).
    pub fn n_levels(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The eccentricity of the root within its component.
    pub fn eccentricity(&self) -> usize {
        self.n_levels() - 1
    }

    /// The largest level size.
    pub fn width(&self) -> usize {
        (0..self.n_levels())
            .map(|k| self.level(k).len())
            .max()
            .unwrap_or(0)
    }

    /// Total number of vertices reached (the size of the component).
    pub fn n_vertices(&self) -> usize {
        self.verts.len()
    }

    /// The vertices of level `k`, in discovery order.
    pub fn level(&self, k: usize) -> &[u32] {
        &self.verts[self.offsets[k]..self.offsets[k + 1]]
    }

    /// The deepest level.
    pub fn last_level(&self) -> &[u32] {
        self.level(self.n_levels() - 1)
    }

    /// All reached vertices in BFS order.
    pub fn vertices(&self) -> &[u32] {
        &self.verts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cahd_sparse::Graph;

    #[test]
    fn path_levels() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let l = LevelStructure::rooted_at(&g, 0);
        assert_eq!(l.n_levels(), 4);
        assert_eq!(l.eccentricity(), 3);
        assert_eq!(l.width(), 1);
        assert_eq!(l.level(2), &[2]);
        assert_eq!(l.last_level(), &[3]);
        assert_eq!(l.n_vertices(), 4);
    }

    #[test]
    fn star_from_center_and_leaf() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let center = LevelStructure::rooted_at(&g, 0);
        assert_eq!(center.eccentricity(), 1);
        assert_eq!(center.width(), 4);
        let leaf = LevelStructure::rooted_at(&g, 1);
        assert_eq!(leaf.eccentricity(), 2);
        assert_eq!(leaf.width(), 3);
    }

    #[test]
    fn stays_in_component() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]);
        let l = LevelStructure::rooted_at(&g, 0);
        assert_eq!(l.n_vertices(), 2);
        assert!(!l.vertices().contains(&2));
    }

    #[test]
    fn isolated_vertex() {
        let g = Graph::from_edges(3, &[(1, 2)]);
        let l = LevelStructure::rooted_at(&g, 0);
        assert_eq!(l.n_levels(), 1);
        assert_eq!(l.eccentricity(), 0);
        assert_eq!(l.n_vertices(), 1);
    }

    #[test]
    fn reusable_marks() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut mark = vec![0u32; 3];
        let a = LevelStructure::build(&g, 0, &mut mark, 1);
        let b = LevelStructure::build(&g, 2, &mut mark, 2);
        assert_eq!(a.eccentricity(), 2);
        assert_eq!(b.eccentricity(), 2);
    }
}
