//! Alternative row-ordering strategies.
//!
//! The paper's future work proposes "dimensionality-reduction techniques
//! for more effective anonymization". This module implements two such
//! orderings as drop-in alternatives to RCM, so their band quality and
//! downstream anonymization utility can be compared (see the
//! `ext-orderings` experiment):
//!
//! * [`minhash_order`] — per-row MinHash signatures sorted
//!   lexicographically: rows with high Jaccard similarity receive similar
//!   signatures and end up nearby. Linear time, no graph construction.
//! * [`lexicographic_order`] — rows sorted by their item lists. A cheap
//!   straw-man that clusters shared *prefixes* only.
//!
//! Both return a [`Permutation`] in the same convention as
//! [`crate::reverse_cuthill_mckee`].

use cahd_sparse::{CsrMatrix, Permutation};

/// Strategy selector used by comparison harnesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowOrder {
    /// Keep the input order.
    Identity,
    /// Reverse Cuthill-McKee on the `A x A^T` pattern (the paper's method).
    Rcm,
    /// MinHash-signature lexicographic order.
    MinHash,
    /// Sort rows by item list.
    Lexicographic,
    /// Gibbs–Poole–Stockmeyer on the `A x A^T` pattern (see [`crate::gps`]).
    Gps,
}

impl RowOrder {
    /// Every strategy, for sweeps.
    pub const ALL: [RowOrder; 5] = [
        RowOrder::Identity,
        RowOrder::Rcm,
        RowOrder::Gps,
        RowOrder::MinHash,
        RowOrder::Lexicographic,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            RowOrder::Identity => "identity",
            RowOrder::Rcm => "rcm",
            RowOrder::MinHash => "minhash",
            RowOrder::Lexicographic => "lex",
            RowOrder::Gps => "gps",
        }
    }

    /// Computes the row permutation of `a` under this strategy.
    /// `seed` only affects [`RowOrder::MinHash`].
    pub fn order(self, a: &CsrMatrix, seed: u64) -> Permutation {
        match self {
            RowOrder::Identity => Permutation::identity(a.n_rows()),
            RowOrder::Rcm => {
                let g = cahd_sparse::RowGraph::build(a, cahd_sparse::RowGraph::DEFAULT_EDGE_BUDGET);
                crate::parallel::band_order_seq(&g, crate::OrderingStrategy::Rcm)
            }
            RowOrder::MinHash => minhash_order(a, 8, seed),
            RowOrder::Lexicographic => lexicographic_order(a),
            RowOrder::Gps => {
                let g = cahd_sparse::RowGraph::build(a, cahd_sparse::RowGraph::DEFAULT_EDGE_BUDGET);
                crate::gps::gibbs_poole_stockmeyer(&cahd_sparse::SeqOracle::new(&g))
            }
        }
    }
}

/// SplitMix64: cheap, well-distributed 64-bit mixer for the hash families.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Orders rows by lexicographic comparison of their `n_hashes`-long MinHash
/// signatures. Empty rows sort last; ties keep input order (stable).
///
/// # Panics
/// Panics if `n_hashes == 0`.
pub fn minhash_order(a: &CsrMatrix, n_hashes: usize, seed: u64) -> Permutation {
    assert!(n_hashes > 0, "need at least one hash function");
    let n = a.n_rows();
    // Signature matrix, row-major.
    let mut sig = vec![u64::MAX; n * n_hashes];
    let hash_seeds: Vec<u64> = (0..n_hashes as u64)
        .map(|h| splitmix64(seed ^ h.wrapping_mul(0xA24BAED4963EE407)))
        .collect();
    for r in 0..n {
        let s = &mut sig[r * n_hashes..(r + 1) * n_hashes];
        for &item in a.row(r) {
            for (h, &hs) in hash_seeds.iter().enumerate() {
                let v = splitmix64(hs ^ item as u64);
                if v < s[h] {
                    s[h] = v;
                }
            }
        }
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&x, &y| {
        let sx = &sig[x as usize * n_hashes..(x as usize + 1) * n_hashes];
        let sy = &sig[y as usize * n_hashes..(y as usize + 1) * n_hashes];
        sx.cmp(sy).then(x.cmp(&y))
    });
    // cahd-lint: allow(L003, reason = "order is a sort of 0..n, which is a permutation by construction")
    Permutation::from_new_to_old(order).expect("sorted indices are a permutation")
}

/// Fixed seed of the [`cluster_order`] hash family. Pinned so the
/// cluster strategy is a pure function of the matrix — reproducible
/// across runs, machines and thread counts.
pub const CLUSTER_SEED: u64 = 0xCA4D_07D3;

/// Number of MinHash functions used by [`cluster_order`]. Sixteen
/// signatures give enough resolution to co-locate high-Jaccard rows
/// while keeping the signature pass a small multiple of `nnz`.
pub const CLUSTER_HASHES: usize = 16;

/// The cluster-then-order strategy ([`crate::OrderingStrategy::Cluster`]):
/// rows sorted by fixed-seed MinHash signatures, computed in parallel
/// over row chunks. Skips the `A x A^T` graph entirely, so its cost is
/// `O(nnz * CLUSTER_HASHES + n log n)` regardless of row-similarity
/// density.
///
/// Output is byte-identical at every `threads` value: each row's
/// signature is a pure function of its items, and the final sort breaks
/// signature ties by row id.
pub fn cluster_order(a: &CsrMatrix, threads: usize) -> Permutation {
    let n = a.n_rows();
    let h = CLUSTER_HASHES;
    let hash_seeds: Vec<u64> = (0..h as u64)
        .map(|k| splitmix64(CLUSTER_SEED ^ k.wrapping_mul(0xA24BAED4963EE407)))
        .collect();
    let mut sig = vec![u64::MAX; n * h];
    let fill = |rows: std::ops::Range<usize>, sig: &mut [u64]| {
        for (row_off, r) in rows.enumerate() {
            let s = &mut sig[row_off * h..(row_off + 1) * h];
            for &item in a.row(r) {
                for (k, &hs) in hash_seeds.iter().enumerate() {
                    let v = splitmix64(hs ^ item as u64);
                    if v < s[k] {
                        s[k] = v;
                    }
                }
            }
        }
    };
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        fill(0..n, &mut sig);
    } else {
        let chunk_rows = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (wi, sig_chunk) in sig.chunks_mut(chunk_rows * h).enumerate() {
                let lo = wi * chunk_rows;
                let hi = (lo + chunk_rows).min(n);
                let fill = &fill;
                scope.spawn(move || fill(lo..hi, sig_chunk));
            }
        });
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&x, &y| {
        let sx = &sig[x as usize * h..(x as usize + 1) * h];
        let sy = &sig[y as usize * h..(y as usize + 1) * h];
        sx.cmp(sy).then(x.cmp(&y))
    });
    // cahd-lint: allow(L003, reason = "order is a sort of 0..n, which is a permutation by construction")
    Permutation::from_new_to_old(order).expect("sorted indices are a permutation")
}

/// Orders rows by their sorted item lists (empty rows first).
pub fn lexicographic_order(a: &CsrMatrix) -> Permutation {
    let mut order: Vec<u32> = (0..a.n_rows() as u32).collect();
    order.sort_by(|&x, &y| a.row(x as usize).cmp(a.row(y as usize)).then(x.cmp(&y)));
    // cahd-lint: allow(L003, reason = "order is a sort of 0..n, which is a permutation by construction")
    Permutation::from_new_to_old(order).expect("sorted indices are a permutation")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks() -> CsrMatrix {
        // Interleaved two-block data, as in the unsym tests.
        CsrMatrix::from_rows(
            &[
                vec![0, 1],
                vec![3, 4],
                vec![1, 2],
                vec![4, 5],
                vec![0, 2],
                vec![3, 5],
            ],
            6,
        )
    }

    fn positions(p: &Permutation, rows: &[usize]) -> Vec<usize> {
        let mut v: Vec<usize> = rows.iter().map(|&r| p.old_to_new(r)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn minhash_groups_similar_rows() {
        let a = blocks();
        let p = minhash_order(&a, 16, 7);
        let pa = positions(&p, &[0, 2, 4]);
        assert!(
            pa == vec![0, 1, 2] || pa == vec![3, 4, 5],
            "block A positions {pa:?}"
        );
    }

    #[test]
    fn minhash_is_deterministic_per_seed() {
        let a = blocks();
        assert_eq!(
            minhash_order(&a, 8, 1).new_to_old_slice(),
            minhash_order(&a, 8, 1).new_to_old_slice()
        );
    }

    #[test]
    fn identical_rows_are_adjacent_under_minhash() {
        let a = CsrMatrix::from_rows(&[vec![5], vec![1, 2], vec![5], vec![1, 2]], 6);
        let p = minhash_order(&a, 8, 3);
        assert_eq!(
            p.old_to_new(0).abs_diff(p.old_to_new(2)),
            1,
            "identical rows must be neighbors"
        );
        assert_eq!(p.old_to_new(1).abs_diff(p.old_to_new(3)), 1);
    }

    #[test]
    fn lexicographic_sorts_by_items() {
        let a = CsrMatrix::from_rows(&[vec![2], vec![0, 1], vec![], vec![0]], 3);
        let p = lexicographic_order(&a);
        // Empty first, then [0], [0,1], [2].
        assert_eq!(p.new_to_old_slice(), &[2, 3, 1, 0]);
    }

    #[test]
    fn all_strategies_produce_valid_permutations() {
        let a = blocks();
        for strat in RowOrder::ALL {
            let p = strat.order(&a, 11);
            assert_eq!(p.len(), a.n_rows(), "{}", strat.name());
            assert!(p.then(&p.inverse()).is_identity());
        }
        assert!(RowOrder::Identity.order(&a, 0).is_identity());
    }

    #[test]
    fn names_unique() {
        let names: std::collections::HashSet<_> = RowOrder::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(names.len(), RowOrder::ALL.len());
    }

    #[test]
    fn cluster_order_is_thread_count_invariant() {
        let a = blocks();
        let reference = cluster_order(&a, 1);
        for threads in [2usize, 3, 8] {
            assert_eq!(
                reference.new_to_old_slice(),
                cluster_order(&a, threads).new_to_old_slice(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn cluster_order_groups_blocks() {
        // Two blocks of high-Jaccard rows (pairwise similarity >= 1/2),
        // interleaved in the input: signatures must co-locate each block.
        let a = CsrMatrix::from_rows(
            &[
                vec![0, 1, 2],
                vec![4, 5, 6],
                vec![0, 1, 2],
                vec![4, 5, 6],
                vec![0, 1, 3],
                vec![4, 5, 7],
            ],
            8,
        );
        let p = cluster_order(&a, 2);
        let pa = positions(&p, &[0, 2, 4]);
        assert!(
            pa == vec![0, 1, 2] || pa == vec![3, 4, 5],
            "block A positions {pa:?}"
        );
    }

    #[test]
    fn cluster_order_valid_on_edge_shapes() {
        for rows in [vec![], vec![vec![], vec![]], vec![vec![0u32, 1], vec![]]] {
            let a = CsrMatrix::from_rows(&rows, 4);
            let p = cluster_order(&a, 4);
            assert_eq!(p.len(), rows.len());
            assert!(p.then(&p.inverse()).is_identity());
        }
    }
}
