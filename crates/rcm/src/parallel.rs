//! Frontier-parallel band-reducing ordering.
//!
//! The classic Cuthill-McKee loop looks inherently serial — a BFS queue
//! where each dequeued vertex appends its unvisited neighbors sorted by
//! `(degree, id)`. It is not: the queue decomposes into BFS *levels*, and
//! within one level the ordering rule is exactly
//!
//! > level `k+1` = for each parent of level `k` **in order**: the fresh
//! > neighbors *claimed* by that parent (a vertex is claimed by its
//! > first-in-order parent), sorted within the parent — by `(degree, id)`
//! > in the CM pass, by `id` in plain level-structure builds.
//!
//! Every quantity in that rule — claim ownership, degrees, ids — is a pure
//! function of the graph and the previous level (a *set*-determined rule,
//! independent of the order any oracle happens to enumerate neighbors
//! in), so a level can be expanded by any number of workers over any
//! [`ParNeighborOracle`] and reassembled deterministically:
//!
//! 1. **Bid** (parallel): each worker owns a contiguous chunk of parents;
//!    for each parent position `p` and unvisited neighbor `w` it performs
//!    `owner[w].fetch_min(p)`. After a barrier, `owner[w]` is the claiming
//!    parent of `w` — the same parent the sequential loop would claim.
//! 2. **Claim** (parallel): each worker re-enumerates its parents'
//!    neighbors, keeps the ones it owns (`owner[w] == p`), marks them
//!    visited, resets `owner[w]` for the next level, and sorts them
//!    within each parent. Re-enumerating instead of replaying a recorded
//!    bid buffer keeps the expansion's footprint at O(frontier), not
//!    O(frontier *edges*) — on clique-heavy transaction graphs the edge
//!    count of one frontier reaches tens of millions.
//! 3. **Concatenate** (sequential): worker outputs are appended in worker
//!    index order, which is parent order.
//!
//! The result is **byte-identical to the sequential reference at every
//! thread count and for every representation** (explicit or implicit row
//! graph) — proven by the `ordering_equivalence` and
//! `representation_equivalence` proptest suites. The same engine builds
//! the George–Liu level structures of the pseudo-peripheral search, so
//! the whole ordering phase parallelizes, not just the final CM pass.
//!
//! Workers query the oracle through caller-owned [`OracleScratch`]es —
//! one per worker, allocated once per ordering by the driver — so the
//! implicit row graph's stamped dedup needs no interior mutability and no
//! locks. Every expansion (and each bid/claim phase) is declared as one
//! oracle *segment* via [`ParNeighborOracle::begin_segment`], letting the
//! implicit graph walk each item's posting clique at most once per
//! segment: the first parent holding an item reaches the clique's every
//! row, so later parents could only re-find visited vertices. That keeps
//! a whole frontier expansion at O(nnz) enumeration cost where naive
//! per-parent enumeration pays sum(support^2).
//!
//! # Counter determinism
//!
//! The engine emits `rcm.levels` (total frontier expansions over every
//! BFS it runs) split into `rcm.frontier_parallel` +
//! `rcm.frontier_sequential` by *eligibility* — whether the frontier
//! reached [`PARALLEL_FRONTIER_MIN`] — never by the actual thread count.
//! A run with `threads = 1` therefore reports the same counters as a run
//! with `threads = 8`, keeping the trace-invariance property suite and
//! the `CAHD-O001` identities (`frontier_parallel + frontier_sequential
//! == levels`, `levels >= bfs_levels`) valid for any machine. The
//! counters are also representation-invariant: explicit and implicit
//! oracles produce identical level sets, hence identical counts.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Barrier;

use cahd_obs::Recorder;
use cahd_sparse::{OracleScratch, ParNeighborOracle, Permutation};

use crate::level::LevelStructure;
use crate::peripheral::george_liu_iterate;
use crate::strategy::OrderingStrategy;

/// Frontier width at and above which an expansion is *eligible* for the
/// parallel path (and counted as `rcm.frontier_parallel`). Below it the
/// per-level spawn/barrier overhead outweighs the work; 256 parents keep
/// even degree-1 chains worth splitting eight ways.
pub const PARALLEL_FRONTIER_MIN: usize = 256;

/// Thread count below which [`band_order_traced`] keeps even eligible
/// frontiers on the sequential path: the bid/claim protocol's overhead
/// (two traversals, two barriers, per-level spawns) roughly costs one
/// extra frontier traversal, so splitting it fewer than four ways is a
/// net loss. Output is byte-identical on both paths, and counters
/// classify by frontier width, so the cutoff is invisible outside wall
/// time.
pub const PARALLEL_THREADS_MIN: usize = 4;

/// Ordering-phase counters accumulated by the frontier engine. All fields
/// are pure functions of the graph and the strategy — never of thread
/// scheduling — so they are reproducible across machines and layouts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct FrontierStats {
    /// Connected components ordered.
    components: u64,
    /// Total levels of the final pseudo-peripheral level structures,
    /// summed over components (the paper's rooted-level-structure depth).
    bfs_levels: u64,
    /// Total frontier expansions over every BFS performed (pseudo-
    /// peripheral probes and the CM pass).
    levels: u64,
    /// Expansions whose frontier reached [`PARALLEL_FRONTIER_MIN`].
    parallel: u64,
    /// Expansions below the eligibility threshold.
    sequential: u64,
}

impl FrontierStats {
    /// Records one frontier expansion of `frontier` parents under the
    /// eligibility threshold `frontier_min`.
    fn record(&mut self, frontier: usize, frontier_min: usize) {
        self.levels += 1;
        if frontier >= frontier_min {
            self.parallel += 1;
        } else {
            self.sequential += 1;
        }
    }

    /// Flushes the ordering counters into `rec` (zero counters are
    /// dropped by the recorder).
    fn flush_to(&self, rec: &Recorder) {
        rec.add("rcm.components", self.components);
        rec.add("rcm.bfs_levels", self.bfs_levels);
        rec.add("rcm.levels", self.levels);
        rec.add("rcm.frontier_parallel", self.parallel);
        rec.add("rcm.frontier_sequential", self.sequential);
    }
}

/// What the per-level claim step does with each parent's claimed batch.
/// Both variants sort by a set-determined key, so the output never
/// depends on the oracle's neighbor enumeration order.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Within {
    /// Sort by vertex `id` (level-structure builds). For the explicit
    /// graph — whose neighbor lists are ascending — this matches
    /// discovery order exactly, so the sequential reference is unchanged.
    Id,
    /// Sort by `(degree, id)` (the Cuthill-McKee rule).
    DegreeThenId,
}

/// Which traversal the driver runs after the pseudo-peripheral search.
#[derive(Clone, Copy, PartialEq, Eq)]
enum BandKind {
    /// Full Cuthill-McKee pass from the pseudo-peripheral root.
    Cm,
    /// Reuse the root's level structure directly as the ordering.
    Bfs,
}

impl BandKind {
    /// Maps the public strategy onto a graph-level traversal. `Cluster`
    /// is a matrix-level strategy dispatched before any graph exists (see
    /// [`crate::unsym`]); if a cluster request reaches the graph engine
    /// anyway it degrades to the nearest graph-level strategy.
    fn of(strategy: OrderingStrategy) -> BandKind {
        match strategy {
            OrderingStrategy::Rcm => BandKind::Cm,
            OrderingStrategy::Bfs | OrderingStrategy::Cluster => BandKind::Bfs,
        }
    }
}

/// Pushes one parent's fresh batch onto `out` under the within-parent
/// rule. `fresh` holds `(key, w)` pairs; for [`Within::Id`] the key *is*
/// the id (duplicated into the pair for a single sort codepath).
fn flush_fresh(fresh: &mut Vec<(u32, u32)>, out: &mut Vec<u32>) {
    fresh.sort_unstable();
    out.extend(fresh.iter().map(|&(_, w)| w));
    fresh.clear();
}

/// The within-parent sort key of a fresh vertex.
#[inline]
fn fresh_key<G: ParNeighborOracle>(g: &G, w: u32, within: Within) -> (u32, u32) {
    match within {
        Within::Id => (w, w),
        Within::DegreeThenId => (g.degree(w as usize) as u32, w),
    }
}

/// Expands one frontier with plain (single-threaded) visited marks:
/// claim-by-first-parent in parent order, which is exactly the claim-by-
/// minimum-parent rule the parallel path computes.
///
/// The expansion is one oracle *segment*: the implicit row graph walks
/// each item's posting clique at most once per level — sound because the
/// first parent holding an item reaches the whole clique, so later
/// parents could only re-find visited rows (the marks filter the
/// duplicates and `v` itself either way).
#[allow(clippy::too_many_arguments)]
fn expand_plain<G: ParNeighborOracle>(
    g: &G,
    parents: &[u32],
    mark: &mut [u32],
    stamp: u32,
    within: Within,
    scratch: &mut OracleScratch,
    fresh: &mut Vec<(u32, u32)>,
    out: &mut Vec<u32>,
) {
    g.begin_segment(scratch);
    for &v in parents {
        g.visit_neighbors(v as usize, scratch, &mut |w| {
            if mark[w as usize] != stamp {
                mark[w as usize] = stamp;
                fresh.push(fresh_key(g, w, within));
            }
        });
        flush_fresh(fresh, out);
    }
}

/// [`expand_plain`] over atomic marks, still single-threaded — the
/// below-threshold path of the parallel driver. Relaxed loads/stores on
/// one thread compile to plain memory operations.
#[allow(clippy::too_many_arguments)]
fn expand_atomic_seq<G: ParNeighborOracle>(
    g: &G,
    parents: &[u32],
    mark: &[AtomicU32],
    stamp: u32,
    within: Within,
    scratch: &mut OracleScratch,
    fresh: &mut Vec<(u32, u32)>,
    out: &mut Vec<u32>,
) {
    g.begin_segment(scratch);
    for &v in parents {
        g.visit_neighbors(v as usize, scratch, &mut |w| {
            if mark[w as usize].load(Ordering::Relaxed) != stamp {
                mark[w as usize].store(stamp, Ordering::Relaxed);
                fresh.push(fresh_key(g, w, within));
            }
        });
        flush_fresh(fresh, out);
    }
}

/// The parallel frontier expansion (module docs, steps 1–3).
///
/// `owner` must be `u32::MAX` everywhere on entry; the claim step restores
/// that invariant — every bid-on vertex has exactly one claiming parent,
/// and that parent's worker resets the slot. Other workers racing on the
/// slot read either the final minimum (not their parent) or the reset
/// `u32::MAX`; both mean "not mine", so the reset is safe under `Relaxed`
/// ordering — the barrier separates all bids from all claims. Within one
/// worker, a vertex bid on by several of its parents is claimed by the
/// first (the owner reset makes the later re-encounters read MAX).
///
/// `scratches` must hold at least `min(threads, parents.len())` entries;
/// worker `i` gets exclusive use of `scratches[i]`.
#[allow(clippy::too_many_arguments)]
fn expand_atomic_par<G: ParNeighborOracle>(
    g: &G,
    parents: &[u32],
    mark: &[AtomicU32],
    owner: &[AtomicU32],
    stamp: u32,
    within: Within,
    threads: usize,
    scratches: &mut [OracleScratch],
    out: &mut Vec<u32>,
) {
    // Derive the worker count back from the chunk size: with a plain
    // `threads.min(len)` the ceiling division can leave trailing workers
    // with an empty (out-of-range) slice, and a worker that panics before
    // the barrier strands every other worker at `barrier.wait()`.
    let chunk = parents
        .len()
        .div_ceil(threads.min(parents.len()).max(1))
        .max(1);
    let n_workers = parents.len().div_ceil(chunk).max(1);
    let barrier = Barrier::new(n_workers);
    let claimed: Vec<Vec<u32>> = std::thread::scope(|scope| {
        let handles: Vec<_> = scratches[..n_workers]
            .iter_mut()
            .enumerate()
            .map(|(wi, scratch)| {
                let barrier = &barrier;
                let lo = wi * chunk;
                let hi = (lo + chunk).min(parents.len());
                scope.spawn(move || {
                    // Bid: fetch_min resolves racing parents to the
                    // minimum position — the sequential claimant. Each
                    // phase is one oracle segment, so a segment-dedup
                    // oracle presents each unvisited vertex at the first
                    // chunk parent adjacent to it — the worker's minimum
                    // position, which is all fetch_min needs from this
                    // worker.
                    g.begin_segment(scratch);
                    for (off, &v) in parents[lo..hi].iter().enumerate() {
                        let pos = (lo + off) as u32;
                        g.visit_neighbors(v as usize, scratch, &mut |w| {
                            if mark[w as usize].load(Ordering::Relaxed) != stamp {
                                owner[w as usize].fetch_min(pos, Ordering::Relaxed);
                            }
                        });
                    }
                    barrier.wait();
                    // Claim: re-traverse (a fresh segment) and keep owned
                    // vertices, grouped per parent. A vertex this worker
                    // owns is re-encountered at exactly the owning
                    // position: the global minimum lies in this chunk, so
                    // it *is* the worker's first adjacent parent. Vertices
                    // owned elsewhere (or already visited) fail the owner
                    // check and fall out.
                    let mut mine: Vec<u32> = Vec::new();
                    let mut fresh: Vec<(u32, u32)> = Vec::new();
                    g.begin_segment(scratch);
                    for (off, &v) in parents[lo..hi].iter().enumerate() {
                        let pos = (lo + off) as u32;
                        g.visit_neighbors(v as usize, scratch, &mut |w| {
                            if owner[w as usize].load(Ordering::Relaxed) == pos {
                                owner[w as usize].store(u32::MAX, Ordering::Relaxed);
                                mark[w as usize].store(stamp, Ordering::Relaxed);
                                fresh.push(fresh_key(g, w, within));
                            }
                        });
                        flush_fresh(&mut fresh, &mut mine);
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    // cahd-lint: allow(L003, reason = "worker panics only propagate caller bugs; the closure itself performs no fallible operations")
                    .expect("frontier worker panicked")
            })
            .collect()
    });
    for c in claimed {
        out.extend_from_slice(&c);
    }
}

/// Builds the level structure rooted at `root` with the atomic frontier
/// engine, switching per level between the parallel and sequential paths
/// by eligibility. Identical output to [`LevelStructure::build`].
#[allow(clippy::too_many_arguments)]
fn build_levels_atomic<G: ParNeighborOracle>(
    g: &G,
    root: u32,
    mark: &[AtomicU32],
    owner: &[AtomicU32],
    stamp: u32,
    threads: usize,
    frontier_min: usize,
    scratches: &mut [OracleScratch],
    stats: &mut FrontierStats,
) -> LevelStructure {
    mark[root as usize].store(stamp, Ordering::Relaxed);
    let mut verts: Vec<u32> = vec![root];
    let mut offsets: Vec<usize> = vec![0];
    let mut current: Vec<u32> = vec![root];
    let mut next: Vec<u32> = Vec::new();
    let mut fresh: Vec<(u32, u32)> = Vec::new();
    loop {
        offsets.push(verts.len());
        stats.record(current.len(), frontier_min);
        next.clear();
        if current.len() >= frontier_min && threads > 1 {
            expand_atomic_par(
                g,
                &current,
                mark,
                owner,
                stamp,
                Within::Id,
                threads,
                scratches,
                &mut next,
            );
        } else {
            expand_atomic_seq(
                g,
                &current,
                mark,
                stamp,
                Within::Id,
                &mut scratches[0],
                &mut fresh,
                &mut next,
            );
        }
        if next.is_empty() {
            break;
        }
        verts.extend_from_slice(&next);
        std::mem::swap(&mut current, &mut next);
    }
    LevelStructure::from_raw(root, verts, offsets)
}

/// Sequential twin of [`build_levels_atomic`] — plain marks, one scratch.
/// Counts expansions identically.
#[allow(clippy::too_many_arguments)]
fn build_levels_plain<G: ParNeighborOracle>(
    g: &G,
    root: u32,
    mark: &mut [u32],
    stamp: u32,
    frontier_min: usize,
    scratch: &mut OracleScratch,
    stats: &mut FrontierStats,
) -> LevelStructure {
    mark[root as usize] = stamp;
    let mut verts: Vec<u32> = vec![root];
    let mut offsets: Vec<usize> = vec![0];
    let mut current: Vec<u32> = vec![root];
    let mut next: Vec<u32> = Vec::new();
    let mut fresh: Vec<(u32, u32)> = Vec::new();
    loop {
        offsets.push(verts.len());
        stats.record(current.len(), frontier_min);
        next.clear();
        expand_plain(
            g,
            &current,
            mark,
            stamp,
            Within::Id,
            scratch,
            &mut fresh,
            &mut next,
        );
        if next.is_empty() {
            break;
        }
        verts.extend_from_slice(&next);
        std::mem::swap(&mut current, &mut next);
    }
    LevelStructure::from_raw(root, verts, offsets)
}

/// Appends the Cuthill-McKee ordering of `root`'s component to `order`
/// using the atomic frontier engine. Identical output to
/// [`crate::cm::cuthill_mckee_component`].
#[allow(clippy::too_many_arguments)]
fn cm_component_atomic<G: ParNeighborOracle>(
    g: &G,
    root: u32,
    mark: &[AtomicU32],
    owner: &[AtomicU32],
    stamp: u32,
    threads: usize,
    frontier_min: usize,
    scratches: &mut [OracleScratch],
    stats: &mut FrontierStats,
    order: &mut Vec<u32>,
) {
    mark[root as usize].store(stamp, Ordering::Relaxed);
    let mut current: Vec<u32> = vec![root];
    let mut next: Vec<u32> = Vec::new();
    let mut fresh: Vec<(u32, u32)> = Vec::new();
    loop {
        stats.record(current.len(), frontier_min);
        next.clear();
        if current.len() >= frontier_min && threads > 1 {
            expand_atomic_par(
                g,
                &current,
                mark,
                owner,
                stamp,
                Within::DegreeThenId,
                threads,
                scratches,
                &mut next,
            );
        } else {
            expand_atomic_seq(
                g,
                &current,
                mark,
                stamp,
                Within::DegreeThenId,
                &mut scratches[0],
                &mut fresh,
                &mut next,
            );
        }
        order.extend_from_slice(&current);
        if next.is_empty() {
            break;
        }
        std::mem::swap(&mut current, &mut next);
    }
}

/// Sequential twin of [`cm_component_atomic`].
#[allow(clippy::too_many_arguments)]
fn cm_component_plain<G: ParNeighborOracle>(
    g: &G,
    root: u32,
    mark: &mut [u32],
    stamp: u32,
    frontier_min: usize,
    scratch: &mut OracleScratch,
    stats: &mut FrontierStats,
    order: &mut Vec<u32>,
) {
    mark[root as usize] = stamp;
    let mut current: Vec<u32> = vec![root];
    let mut next: Vec<u32> = Vec::new();
    let mut fresh: Vec<(u32, u32)> = Vec::new();
    loop {
        stats.record(current.len(), frontier_min);
        next.clear();
        expand_plain(
            g,
            &current,
            mark,
            stamp,
            Within::DegreeThenId,
            scratch,
            &mut fresh,
            &mut next,
        );
        order.extend_from_slice(&current);
        if next.is_empty() {
            break;
        }
        std::mem::swap(&mut current, &mut next);
    }
}

/// The atomic (thread-capable) full-graph driver: per component, a
/// George–Liu pseudo-peripheral search followed by the strategy's
/// traversal. Components are processed in order of their smallest vertex
/// id, exactly like [`crate::rcm::cuthill_mckee_traced`].
///
/// Oracle scratches are allocated here, once per ordering — one per
/// worker — and reused across every frontier of every component.
fn order_vertices_atomic<G: ParNeighborOracle>(
    g: &G,
    kind: BandKind,
    threads: usize,
    frontier_min: usize,
    stats: &mut FrontierStats,
) -> Vec<u32> {
    let n = g.n_vertices();
    let mark: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let owner: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    let mut scratches: Vec<OracleScratch> = (0..threads.max(1)).map(|_| g.new_scratch()).collect();
    let mut stamp = 0u32;
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut in_order = vec![false; n];
    for start in 0..n {
        if in_order[start] {
            continue;
        }
        let (root, levels) = {
            let stamp = &mut stamp;
            let stats = &mut *stats;
            let scratches = &mut scratches;
            let (mark, owner) = (&mark, &owner);
            george_liu_iterate(
                |w| g.degree(w as usize),
                move |r| {
                    *stamp += 1;
                    build_levels_atomic(
                        g,
                        r,
                        mark,
                        owner,
                        *stamp,
                        threads,
                        frontier_min,
                        scratches,
                        stats,
                    )
                },
                start as u32,
            )
        };
        stats.components += 1;
        stats.bfs_levels += levels.n_levels() as u64;
        match kind {
            BandKind::Cm => {
                stamp += 1;
                let before = order.len();
                cm_component_atomic(
                    g,
                    root,
                    &mark,
                    &owner,
                    stamp,
                    threads,
                    frontier_min,
                    &mut scratches,
                    stats,
                    &mut order,
                );
                for &v in &order[before..] {
                    in_order[v as usize] = true;
                }
            }
            BandKind::Bfs => {
                for &v in levels.vertices() {
                    in_order[v as usize] = true;
                }
                order.extend_from_slice(levels.vertices());
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    order
}

/// Sequential twin of [`order_vertices_atomic`]: plain marks, one
/// scratch, no atomics. Emits the same counters — and the same order —
/// for the same graph and strategy.
fn order_vertices_plain<G: ParNeighborOracle>(
    g: &G,
    kind: BandKind,
    frontier_min: usize,
    stats: &mut FrontierStats,
) -> Vec<u32> {
    let n = g.n_vertices();
    let mut mark = vec![0u32; n];
    let mut scratch = g.new_scratch();
    let mut stamp = 0u32;
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut in_order = vec![false; n];
    for start in 0..n {
        if in_order[start] {
            continue;
        }
        let (root, levels) = {
            let stamp = &mut stamp;
            let mark = &mut mark;
            let stats = &mut *stats;
            let scratch = &mut scratch;
            george_liu_iterate(
                |w| g.degree(w as usize),
                move |r| {
                    *stamp += 1;
                    build_levels_plain(g, r, mark, *stamp, frontier_min, scratch, stats)
                },
                start as u32,
            )
        };
        stats.components += 1;
        stats.bfs_levels += levels.n_levels() as u64;
        match kind {
            BandKind::Cm => {
                stamp += 1;
                let before = order.len();
                cm_component_plain(
                    g,
                    root,
                    &mut mark,
                    stamp,
                    frontier_min,
                    &mut scratch,
                    stats,
                    &mut order,
                );
                for &v in &order[before..] {
                    in_order[v as usize] = true;
                }
            }
            BandKind::Bfs => {
                for &v in levels.vertices() {
                    in_order[v as usize] = true;
                }
                order.extend_from_slice(levels.vertices());
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    order
}

/// Finalizes an ordering into the reversed band permutation (the paper's
/// Fig. 4 step 14: "output R in reverse order").
fn reversed_permutation(order: Vec<u32>) -> Permutation {
    // cahd-lint: allow(L003, reason = "the component sweep pushes each vertex exactly once (debug_assert_eq in the drivers)")
    let p = Permutation::from_new_to_old(order).expect("band order visits every vertex");
    p.reversed()
}

/// Computes the reversed band ordering of `g` under `strategy` with up to
/// `threads` frontier workers.
///
/// Under [`OrderingStrategy::Rcm`] the result is byte-identical to
/// [`crate::reverse_cuthill_mckee`] at every thread count and for every
/// oracle representation (the `ordering_equivalence` and
/// `representation_equivalence` suites prove this); the other strategies
/// are deterministic but cheaper orders with looser band quality.
pub fn band_order<G: ParNeighborOracle>(
    g: &G,
    strategy: OrderingStrategy,
    threads: usize,
) -> Permutation {
    band_order_traced(g, strategy, threads, &Recorder::disabled())
}

/// [`band_order`] recording the ordering counters (`rcm.components`,
/// `rcm.bfs_levels`, `rcm.levels`, `rcm.frontier_parallel`,
/// `rcm.frontier_sequential`) into `rec`. The counters are functions of
/// the graph and strategy only — identical at every thread count.
///
/// The requested thread count is clamped to the machine's available
/// parallelism — extra workers on an oversubscribed host only add spawn
/// and barrier latency — and below [`PARALLEL_THREADS_MIN`] effective
/// workers the expansion runs sequentially even on eligible frontiers:
/// with so few workers the bid/claim protocol costs more than it splits
/// (the second traversal plus two barriers roughly match one extra
/// traversal). The output is byte-identical at every worker count, and
/// the counters classify by frontier *width*, so neither cutoff is
/// visible outside wall time.
pub fn band_order_traced<G: ParNeighborOracle>(
    g: &G,
    strategy: OrderingStrategy,
    threads: usize,
    rec: &Recorder,
) -> Permutation {
    let capped = threads.min(
        std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(usize::MAX),
    );
    let workers = if capped >= PARALLEL_THREADS_MIN {
        capped
    } else {
        1
    };
    band_order_with(g, strategy, workers, PARALLEL_FRONTIER_MIN, rec)
}

/// [`band_order_traced`] with an explicit parallel-eligibility threshold.
///
/// Production code always passes [`PARALLEL_FRONTIER_MIN`]; the override
/// exists so the equivalence suites can force the parallel claim path on
/// graphs far smaller than the production threshold. Counters are
/// computed under the *given* threshold, preserving the `CAHD-O001`
/// identities.
pub fn band_order_with<G: ParNeighborOracle>(
    g: &G,
    strategy: OrderingStrategy,
    threads: usize,
    frontier_min: usize,
    rec: &Recorder,
) -> Permutation {
    let mut stats = FrontierStats::default();
    let order = order_vertices_atomic(
        g,
        BandKind::of(strategy),
        threads.max(1),
        frontier_min.max(1),
        &mut stats,
    );
    stats.flush_to(rec);
    reversed_permutation(order)
}

/// Single-threaded [`band_order`]: plain marks, no atomics, one scratch.
/// Byte-identical to the threaded driver; kept as the reference twin the
/// equivalence suites compare against.
pub fn band_order_seq<G: ParNeighborOracle>(g: &G, strategy: OrderingStrategy) -> Permutation {
    band_order_seq_traced(g, strategy, &Recorder::disabled())
}

/// [`band_order_seq`] with counter recording; see [`band_order_traced`].
pub fn band_order_seq_traced<G: ParNeighborOracle>(
    g: &G,
    strategy: OrderingStrategy,
    rec: &Recorder,
) -> Permutation {
    band_order_seq_with(g, strategy, PARALLEL_FRONTIER_MIN, rec)
}

/// [`band_order_seq_traced`] with an explicit eligibility threshold; the
/// test hook mirroring [`band_order_with`].
pub fn band_order_seq_with<G: ParNeighborOracle>(
    g: &G,
    strategy: OrderingStrategy,
    frontier_min: usize,
    rec: &Recorder,
) -> Permutation {
    let mut stats = FrontierStats::default();
    let order = order_vertices_plain(g, BandKind::of(strategy), frontier_min.max(1), &mut stats);
    stats.flush_to(rec);
    reversed_permutation(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rcm::reverse_cuthill_mckee;
    use cahd_sparse::bandwidth::graph_band_stats;
    use cahd_sparse::Graph;

    fn graphs() -> Vec<(&'static str, Graph)> {
        let mut grid_edges = Vec::new();
        let idx = |r: usize, c: usize| (r * 6 + c) as u32;
        for r in 0..6 {
            for c in 0..6 {
                if c + 1 < 6 {
                    grid_edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < 6 {
                    grid_edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        vec![
            (
                "path",
                Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]),
            ),
            (
                "star",
                Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]),
            ),
            // A frontier of 9 at 8 threads exercises ceiling-division
            // chunking where a naive worker count leaves a trailing
            // worker with an out-of-range slice (regression: deadlock).
            (
                "star9",
                Graph::from_edges(10, &(1..10u32).map(|v| (0, v)).collect::<Vec<_>>()),
            ),
            (
                "disconnected",
                Graph::from_edges(8, &[(0, 1), (2, 3), (3, 4), (6, 7)]),
            ),
            ("isolated", Graph::from_edges(3, &[])),
            ("empty", Graph::from_edges(0, &[])),
            ("grid6", Graph::from_edges(36, &grid_edges)),
        ]
    }

    #[test]
    fn rcm_strategy_matches_reference_at_any_thread_count() {
        for (name, g) in graphs() {
            let reference = reverse_cuthill_mckee(&g);
            for threads in [1usize, 2, 8] {
                // frontier_min = 1 forces the parallel claim path onto
                // every level of these small graphs.
                let p =
                    band_order_with(&g, OrderingStrategy::Rcm, threads, 1, &Recorder::disabled());
                assert_eq!(
                    reference.new_to_old_slice(),
                    p.new_to_old_slice(),
                    "{name} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn sequential_driver_matches_atomic_driver() {
        for (name, g) in graphs() {
            for strategy in OrderingStrategy::ALL {
                let seq = band_order_seq(&g, strategy);
                let par = band_order(&g, strategy, 4);
                assert_eq!(
                    seq.new_to_old_slice(),
                    par.new_to_old_slice(),
                    "{name} under {}",
                    strategy.name()
                );
            }
        }
    }

    #[test]
    fn all_strategies_emit_valid_permutations() {
        for (name, g) in graphs() {
            for strategy in OrderingStrategy::ALL {
                let p = band_order(&g, strategy, 2);
                assert_eq!(p.len(), g.n_vertices(), "{name}/{}", strategy.name());
                assert!(
                    p.then(&p.inverse()).is_identity(),
                    "{name}/{}",
                    strategy.name()
                );
            }
        }
    }

    #[test]
    fn counters_are_thread_count_invariant_and_consistent() {
        for (name, g) in graphs() {
            let mut reports = Vec::new();
            for threads in [1usize, 2, 8] {
                let rec = Recorder::new();
                band_order_with(&g, OrderingStrategy::Rcm, threads, 2, &rec);
                let report = rec.snapshot();
                let counter = |c: &str| report.counter_or_zero(c);
                assert_eq!(
                    counter("rcm.frontier_parallel") + counter("rcm.frontier_sequential"),
                    counter("rcm.levels"),
                    "{name} at {threads} threads"
                );
                assert!(
                    counter("rcm.levels") >= counter("rcm.bfs_levels"),
                    "{name} at {threads} threads"
                );
                reports.push((
                    counter("rcm.components"),
                    counter("rcm.bfs_levels"),
                    counter("rcm.levels"),
                    counter("rcm.frontier_parallel"),
                    counter("rcm.frontier_sequential"),
                ));
            }
            assert!(
                reports.windows(2).all(|w| w[0] == w[1]),
                "{name}: counters varied with thread count: {reports:?}"
            );
        }
    }

    #[test]
    fn bfs_strategy_bandwidth_is_reasonable_on_path() {
        // A path ordered by pure BFS from a peripheral end is optimal.
        let g = Graph::from_edges(
            9,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
            ],
        );
        let p = band_order(&g, OrderingStrategy::Bfs, 1);
        assert_eq!(graph_band_stats(&g, &p).bandwidth, 1);
    }

    #[test]
    fn golden_bandwidth_bounds_per_strategy() {
        // 6x6 grid: optimal bandwidth 6. RCM must reach <= 7; BFS from a
        // corner stays within the level-structure width bound (<= 11).
        let (_, grid) = graphs()
            .into_iter()
            .find(|(n, _)| *n == "grid6")
            .expect("grid6 fixture");
        let rcm_bw =
            graph_band_stats(&grid, &band_order(&grid, OrderingStrategy::Rcm, 2)).bandwidth;
        assert!(rcm_bw <= 7, "rcm bandwidth {rcm_bw}");
        let bfs_bw =
            graph_band_stats(&grid, &band_order(&grid, OrderingStrategy::Bfs, 2)).bandwidth;
        assert!(bfs_bw <= 11, "bfs bandwidth {bfs_bw}");
        assert!(rcm_bw <= bfs_bw, "rcm {rcm_bw} worse than bfs {bfs_bw}");
    }

    #[test]
    fn implicit_oracle_matches_explicit_through_the_engine() {
        // A clique-heavy bipartite-ish pattern: rows share items heavily,
        // so the implicit enumeration order differs wildly from the
        // explicit (sorted) order — the canonical within-parent sort must
        // absorb the difference for both strategies.
        let rows: Vec<Vec<u32>> = (0..40u32)
            .map(|i| vec![i % 4, 4 + i % 7, 11 + (i / 3) % 5])
            .collect();
        let a = cahd_sparse::CsrMatrix::from_rows(&rows, 16);
        let ex = RowGraph::build_explicit(&a);
        let im = cahd_sparse::ImplicitRowGraph::new(&a);
        for strategy in [OrderingStrategy::Rcm, OrderingStrategy::Bfs] {
            let reference = band_order_seq(&ex, strategy);
            for threads in [1usize, 8] {
                let p = band_order_with(&im, strategy, threads, 1, &Recorder::disabled());
                assert_eq!(
                    reference.new_to_old_slice(),
                    p.new_to_old_slice(),
                    "{} at {threads} threads",
                    strategy.name()
                );
            }
        }
    }

    use cahd_sparse::RowGraph;
}
