//! Reverse Cuthill-McKee (RCM) bandwidth reduction.
//!
//! Implements the band-matrix reorganization of Section III of the CAHD
//! paper:
//!
//! * [`level::LevelStructure`] — rooted BFS level structures,
//! * [`peripheral`] — the George–Liu pseudo-peripheral root finder (the
//!   paper's "compute pseudo-diameter" step),
//! * [`cm`] — the Cuthill-McKee ordering of one connected component
//!   (Fig. 4 of the paper),
//! * [`rcm`] — multi-component orchestration plus the final reversal,
//! * [`unsym`] — bandwidth reduction for *unsymmetric* (rectangular)
//!   matrices via the `A x A^T` pattern (Fig. 5 of the paper), including the
//!   column-ordering strategies used for reporting and visualization,
//! * [`ordering`] — alternative row orderings (MinHash signatures,
//!   lexicographic) implementing the paper's dimensionality-reduction
//!   future-work direction, comparable against RCM,
//! * [`gps`] — the Gibbs–Poole–Stockmeyer algorithm (the other classic
//!   bandwidth reducer the paper cites), as an ablatable alternative.
//!
//! All algorithms work against the [`cahd_sparse::NeighborOracle`] trait, so
//! they run identically on materialized adjacency and on the inverted-index
//! (implicit) representation used for very large inputs.

pub mod cm;
pub mod gps;
pub mod level;
pub mod ordering;
pub mod peripheral;
pub mod rcm;
pub mod unsym;

pub use cm::{cuthill_mckee_component, cuthill_mckee_component_linear};
pub use gps::gibbs_poole_stockmeyer;
pub use level::LevelStructure;
pub use ordering::{lexicographic_order, minhash_order, RowOrder};
pub use peripheral::pseudo_peripheral;
pub use rcm::{
    cuthill_mckee, cuthill_mckee_traced, reverse_cuthill_mckee, reverse_cuthill_mckee_linear,
    reverse_cuthill_mckee_traced,
};
pub use unsym::{
    reduce_unsymmetric, reduce_unsymmetric_traced, AatMethod, BandReduction, ColumnOrder,
    UnsymOptions,
};
