//! Reverse Cuthill-McKee (RCM) bandwidth reduction.
//!
//! Implements the band-matrix reorganization of Section III of the CAHD
//! paper:
//!
//! * [`level::LevelStructure`] — rooted BFS level structures,
//! * [`peripheral`] — the George–Liu pseudo-peripheral root finder (the
//!   paper's "compute pseudo-diameter" step),
//! * [`cm`] — the Cuthill-McKee ordering of one connected component
//!   (Fig. 4 of the paper),
//! * [`rcm`] — multi-component orchestration plus the final reversal,
//! * [`unsym`] — bandwidth reduction for *unsymmetric* (rectangular)
//!   matrices via the `A x A^T` pattern (Fig. 5 of the paper), including the
//!   column-ordering strategies used for reporting and visualization,
//! * [`ordering`] — alternative row orderings (MinHash signatures,
//!   lexicographic) implementing the paper's dimensionality-reduction
//!   future-work direction, comparable against RCM,
//! * [`gps`] — the Gibbs–Poole–Stockmeyer algorithm (the other classic
//!   bandwidth reducer the paper cites), as an ablatable alternative,
//! * [`parallel`] — the frontier-parallel ordering engine: level-set
//!   Cuthill-McKee and BFS with deterministic claim-by-minimum-parent
//!   reassembly, byte-identical to the sequential reference at every
//!   thread count,
//! * [`strategy`] — the [`OrderingStrategy`] run-time selector
//!   (`--ordering {rcm,bfs,cluster}` / `CAHD_ORDERING`).
//!
//! The frontier engine and the production drivers work against the
//! [`cahd_sparse::ParNeighborOracle`] trait (caller-owned per-worker
//! scratch, `Sync`), so they run identically — and in parallel — on
//! materialized adjacency and on the inverted-index (implicit)
//! representation; the sequential reference algorithms keep the simpler
//! [`cahd_sparse::NeighborOracle`] interface, bridged by
//! [`cahd_sparse::SeqOracle`]. Representation is selected by
//! [`cahd_sparse::RowGraphMode`] (`--rowgraph {auto,explicit,implicit}` /
//! `CAHD_ROWGRAPH`).

pub mod cm;
pub mod gps;
pub mod level;
pub mod ordering;
pub mod parallel;
pub mod peripheral;
pub mod rcm;
pub mod strategy;
pub mod unsym;

pub use cahd_sparse::{resolve_hub_cap, RowGraphMode};
pub use cm::{cuthill_mckee_component, cuthill_mckee_component_linear};
pub use gps::gibbs_poole_stockmeyer;
pub use level::LevelStructure;
pub use ordering::{
    cluster_order, lexicographic_order, minhash_order, RowOrder, CLUSTER_HASHES, CLUSTER_SEED,
};
pub use parallel::{
    band_order, band_order_seq, band_order_seq_traced, band_order_seq_with, band_order_traced,
    band_order_with, PARALLEL_FRONTIER_MIN, PARALLEL_THREADS_MIN,
};
pub use peripheral::pseudo_peripheral;
pub use rcm::{
    cuthill_mckee, cuthill_mckee_traced, reverse_cuthill_mckee, reverse_cuthill_mckee_linear,
    reverse_cuthill_mckee_traced,
};
pub use strategy::OrderingStrategy;
pub use unsym::{
    reduce_unsymmetric, reduce_unsymmetric_traced, AatMethod, BandReduction, ColumnOrder,
    UnsymOptions,
};
