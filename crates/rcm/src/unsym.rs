//! Bandwidth reduction for unsymmetric (rectangular) matrices.
//!
//! The paper's Fig. 5: build the symmetric pattern `B = A x A^T`, run RCM on
//! `B`, and apply the resulting permutation to the *rows* of `A`. Rows that
//! share many items end up adjacent, which is the property the CAHD group
//! formation exploits.
//!
//! A row permutation alone leaves the non-zeros scattered across the full
//! column range; for band-structure reporting and the Fig. 6 visualization a
//! column permutation is also produced (the paper permutes "rows and
//! columns"). Columns are ordered by a statistic of the permuted row
//! positions of their non-zeros, selectable via [`ColumnOrder`].

use std::time::{Duration, Instant};

use cahd_sparse::bandwidth::{rect_band_stats, RectBandStats};
use cahd_sparse::{resolve_hub_cap, CsrMatrix, Permutation, RowGraph, RowGraphMode};

use crate::ordering::cluster_order;
use crate::parallel::band_order_traced;
use crate::rcm::reverse_cuthill_mckee;
use crate::strategy::OrderingStrategy;

/// How to order columns after the RCM row permutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnOrder {
    /// By the mean permuted row position of the column's non-zeros
    /// (empty columns last). Default; gives the smoothest diagonal band.
    MeanRowPos,
    /// By the first (smallest) permuted row position of the column's
    /// non-zeros (empty columns last).
    FirstOccurrence,
    /// Keep the original column order.
    Identity,
}

/// Which symmetrization of the paper's Fig. 5 step 1 to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AatMethod {
    /// Method *(ii)*: `A x A^T` — rows adjacent iff they share a column.
    /// Costlier but much better band quality on far-from-symmetric data;
    /// the paper (and this crate) use it by default.
    #[default]
    Product,
    /// Method *(i)*: `A + A^T` over the zero-padded square matrix — one
    /// vertex per row *and* per column, adjacency directly from the
    /// non-zeros. Cheap, and orders rows and columns simultaneously, but
    /// the paper notes quality suffers when `A` is far from symmetric
    /// (as transaction data is). Kept for the Fig. 5 comparison.
    Sum,
}

/// Options for [`reduce_unsymmetric`].
#[derive(Clone, Copy, Debug)]
pub struct UnsymOptions {
    /// Estimated-edge budget above which the implicit `A x A^T`
    /// representation is used (see [`RowGraph::build`]).
    pub edge_budget: usize,
    /// Column ordering strategy.
    pub column_order: ColumnOrder,
    /// Symmetrization method (paper Fig. 5 step 1).
    pub aat_method: AatMethod,
    /// Worker threads for the explicit `A x A^T` build *and* the
    /// frontier-parallel ordering (see [`crate::parallel`]). The graph
    /// and — under [`OrderingStrategy::Rcm`] — the permutation are
    /// byte-identical for every thread count.
    pub threads: usize,
    /// Band-reducing ordering strategy ([`OrderingStrategy::Rcm`] by
    /// default). Resolved against the `CAHD_ORDERING` environment
    /// variable once per reduction.
    pub ordering: OrderingStrategy,
    /// `A x A^T` representation policy ([`RowGraphMode::Auto`] by
    /// default). Resolved against the `CAHD_ROWGRAPH` environment
    /// variable once per reduction.
    pub rowgraph: RowGraphMode,
    /// Optional hub-item support cap for the implicit representation:
    /// items whose support exceeds the cap are skipped during neighbor
    /// enumeration (see [`cahd_sparse::ImplicitRowGraph::with_options`]).
    /// Overridable via `CAHD_HUB_CAP`. A cap under [`RowGraphMode::Auto`]
    /// forces the implicit representation so it is never silently
    /// ignored.
    pub hub_cap: Option<u32>,
}

impl Default for UnsymOptions {
    fn default() -> Self {
        UnsymOptions {
            edge_budget: RowGraph::DEFAULT_EDGE_BUDGET,
            column_order: ColumnOrder::MeanRowPos,
            aat_method: AatMethod::Product,
            threads: 1,
            ordering: OrderingStrategy::Rcm,
            rowgraph: RowGraphMode::Auto,
            hub_cap: None,
        }
    }
}

/// Result of the unsymmetric bandwidth reduction.
#[derive(Clone, Debug)]
pub struct BandReduction {
    /// RCM row permutation (`old_to_new` places each original row).
    pub row_perm: Permutation,
    /// Column permutation per the requested [`ColumnOrder`].
    pub col_perm: Permutation,
    /// Band statistics of the original matrix (identity permutations).
    pub before: RectBandStats,
    /// Band statistics after applying both permutations.
    pub after: RectBandStats,
    /// Whether the explicit `A x A^T` pattern was materialized.
    pub used_explicit_aat: bool,
    /// Wall-clock time of graph construction + RCM (excludes stats).
    pub rcm_time: Duration,
}

/// Runs the paper's unsymmetric bandwidth-reduction pipeline on `a`.
pub fn reduce_unsymmetric(a: &CsrMatrix, opts: UnsymOptions) -> BandReduction {
    reduce_unsymmetric_traced(a, opts, &cahd_obs::Recorder::disabled())
}

/// Like [`reduce_unsymmetric`], recording per-phase spans and band metrics
/// into `rec`:
///
/// * spans `pipeline/rcm` (whole reduction) with children
///   `pipeline/rcm/aat_build` (row-graph construction, `Product` method
///   only), `pipeline/rcm/order` (the Cuthill-McKee ordering),
///   `pipeline/rcm/columns` (column ordering), and `pipeline/rcm/stats`
///   (band statistics before/after);
/// * the `sparse.*` counters of [`RowGraph::build_traced`] and the
///   `rcm.components` / `rcm.bfs_levels` counters of
///   [`crate::cuthill_mckee_traced`];
/// * gauges `rcm.bandwidth_before` / `rcm.bandwidth_after` (the
///   [`RectBandStats::max_diag_distance`] rectangular-bandwidth analogue)
///   and `rcm.mean_row_span_before` / `rcm.mean_row_span_after`.
pub fn reduce_unsymmetric_traced(
    a: &CsrMatrix,
    opts: UnsymOptions,
    rec: &cahd_obs::Recorder,
) -> BandReduction {
    let whole = rec.span("pipeline/rcm");
    // cahd-lint: allow(L002, reason = "elapsed-time stat only; release bytes never depend on it")
    let t0 = Instant::now();
    let strategy = opts.ordering.resolved();
    let (row_perm, sum_col_perm, used_explicit_aat) = match opts.aat_method {
        // Cluster-then-order works on the matrix itself: no `A x A^T`
        // graph is built at all (`used_explicit_aat` is false).
        AatMethod::Product if strategy == OrderingStrategy::Cluster => {
            let _s = rec.span("pipeline/rcm/order");
            (cluster_order(a, opts.threads), None, false)
        }
        AatMethod::Product => {
            let mode = opts.rowgraph.resolved();
            let hub_cap = resolve_hub_cap(opts.hub_cap);
            let rg = {
                let _s = rec.span("pipeline/rcm/aat_build");
                RowGraph::build_mode_traced(a, mode, opts.edge_budget, hub_cap, opts.threads, rec)
            };
            let explicit = rg.is_explicit();
            let _s = rec.span("pipeline/rcm/order");
            // Both representations are `Sync` oracles now: the frontier-
            // parallel engine runs either one, with byte-identical output
            // and counters (hub cap off).
            let perm = band_order_traced(&rg, strategy, opts.threads, rec);
            (perm, None, explicit)
        }
        AatMethod::Sum => {
            let _s = rec.span("pipeline/rcm/order");
            let (rp, cp) = sum_method_orderings(a);
            (rp, Some(cp), true)
        }
    };
    let rcm_time = t0.elapsed();

    let col_perm = {
        let _s = rec.span("pipeline/rcm/columns");
        match (opts.column_order, sum_col_perm) {
            // Method (i) already produced a joint column ordering; the
            // MeanRowPos default defers to it.
            (ColumnOrder::MeanRowPos, Some(cp)) => cp,
            (order, _) => order_columns(a, &row_perm, order),
        }
    };

    let (before, after) = {
        let _s = rec.span("pipeline/rcm/stats");
        let id_rows = Permutation::identity(a.n_rows());
        let id_cols = Permutation::identity(a.n_cols());
        (
            rect_band_stats(a, &id_rows, &id_cols),
            rect_band_stats(a, &row_perm, &col_perm),
        )
    };
    rec.gauge("rcm.bandwidth_before", before.max_diag_distance as f64);
    rec.gauge("rcm.bandwidth_after", after.max_diag_distance as f64);
    rec.gauge("rcm.mean_row_span_before", before.mean_row_span);
    rec.gauge("rcm.mean_row_span_after", after.mean_row_span);
    drop(whole);

    BandReduction {
        row_perm,
        col_perm,
        before,
        after,
        used_explicit_aat,
        rcm_time,
    }
}

/// The `A + A^T` orderings (paper Fig. 5 method *(i)*): one RCM run over
/// the padded square pattern whose vertices are rows *and* columns, with
/// edges from the non-zeros. The combined ordering is split into its
/// row-vertex and column-vertex subsequences.
fn sum_method_orderings(a: &CsrMatrix) -> (Permutation, Permutation) {
    let n = a.n_rows();
    let d = a.n_cols();
    let size = n.max(d);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(a.nnz());
    for r in 0..n {
        for &c in a.row(r) {
            edges.push((r as u32, c));
        }
    }
    let graph = cahd_sparse::Graph::from_edges(size, &edges);
    let combined = reverse_cuthill_mckee(&graph);
    // Relative order of row vertices / column vertices.
    let mut row_order: Vec<u32> = (0..n as u32).collect();
    row_order.sort_by_key(|&r| combined.old_to_new(r as usize));
    let mut col_order: Vec<u32> = (0..d as u32).collect();
    col_order.sort_by_key(|&c| combined.old_to_new(c as usize));
    (
        // cahd-lint: allow(L003, reason = "row_order is a sort of 0..n, a permutation by construction")
        Permutation::from_new_to_old(row_order).expect("subsequence of a permutation"),
        // cahd-lint: allow(L003, reason = "col_order is a sort of 0..d, a permutation by construction")
        Permutation::from_new_to_old(col_order).expect("subsequence of a permutation"),
    )
}

/// Computes the column permutation for a given row permutation.
pub fn order_columns(a: &CsrMatrix, row_perm: &Permutation, order: ColumnOrder) -> Permutation {
    let d = a.n_cols();
    if matches!(order, ColumnOrder::Identity) {
        return Permutation::identity(d);
    }
    // key[j] = (statistic, j); empty columns sort last.
    let mut key: Vec<(f64, u32)> = (0..d as u32).map(|j| (f64::INFINITY, j)).collect();
    let mut sum = vec![0f64; d];
    let mut cnt = vec![0u32; d];
    let mut min = vec![usize::MAX; d];
    for r in 0..a.n_rows() {
        let pos = row_perm.old_to_new(r);
        for &c in a.row(r) {
            let c = c as usize;
            sum[c] += pos as f64;
            cnt[c] += 1;
            min[c] = min[c].min(pos);
        }
    }
    for j in 0..d {
        if cnt[j] > 0 {
            key[j].0 = match order {
                ColumnOrder::MeanRowPos => sum[j] / cnt[j] as f64,
                ColumnOrder::FirstOccurrence => min[j] as f64,
                // cahd-lint: allow(L003, reason = "Identity early-returns at function entry")
                ColumnOrder::Identity => unreachable!(),
            };
        }
    }
    key.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let order_vec: Vec<u32> = key.into_iter().map(|(_, j)| j).collect();
    // cahd-lint: allow(L003, reason = "order_vec is a sort of 0..d, a permutation by construction")
    Permutation::from_new_to_old(order_vec).expect("each column appears once")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A block-structured matrix scrambled by an interleaving row order:
    /// rows 0,2,4 use items {0,1,2}; rows 1,3,5 use items {3,4,5}.
    fn scrambled_blocks() -> CsrMatrix {
        CsrMatrix::from_rows(
            &[
                vec![0, 1],
                vec![3, 4],
                vec![1, 2],
                vec![4, 5],
                vec![0, 2],
                vec![3, 5],
            ],
            6,
        )
    }

    #[test]
    fn blocks_are_grouped() {
        let a = scrambled_blocks();
        let red = reduce_unsymmetric(&a, UnsymOptions::default());
        // After RCM the two blocks must be contiguous in row order: the
        // positions of even (block A) rows must be {0,1,2} or {3,4,5}.
        let mut pos_a: Vec<usize> = [0usize, 2, 4]
            .iter()
            .map(|&r| red.row_perm.old_to_new(r))
            .collect();
        pos_a.sort_unstable();
        assert!(
            pos_a == vec![0, 1, 2] || pos_a == vec![3, 4, 5],
            "{pos_a:?}"
        );
        // Band quality must improve.
        assert!(red.after.mean_diag_distance < red.before.mean_diag_distance);
    }

    #[test]
    fn column_order_mean_groups_items() {
        let a = scrambled_blocks();
        let red = reduce_unsymmetric(&a, UnsymOptions::default());
        // Items of the first row block should occupy the first 3 column
        // positions (whichever block comes first).
        let mut pos_items_a: Vec<usize> = [0usize, 1, 2]
            .iter()
            .map(|&c| red.col_perm.old_to_new(c))
            .collect();
        pos_items_a.sort_unstable();
        assert!(
            pos_items_a == vec![0, 1, 2] || pos_items_a == vec![3, 4, 5],
            "{pos_items_a:?}"
        );
    }

    #[test]
    fn identity_column_order() {
        let a = scrambled_blocks();
        let red = reduce_unsymmetric(
            &a,
            UnsymOptions {
                column_order: ColumnOrder::Identity,
                ..Default::default()
            },
        );
        assert!(red.col_perm.is_identity());
    }

    #[test]
    fn empty_columns_sort_last() {
        // Column 2 never used.
        let a = CsrMatrix::from_rows(&[vec![0], vec![1]], 3);
        let p = order_columns(&a, &Permutation::identity(2), ColumnOrder::MeanRowPos);
        assert_eq!(p.old_to_new(2), 2);
    }

    #[test]
    fn implicit_and_explicit_agree_on_quality() {
        let a = scrambled_blocks();
        let explicit = reduce_unsymmetric(
            &a,
            UnsymOptions {
                edge_budget: usize::MAX,
                ..Default::default()
            },
        );
        let implicit = reduce_unsymmetric(
            &a,
            UnsymOptions {
                edge_budget: 0,
                ..Default::default()
            },
        );
        assert!(explicit.used_explicit_aat);
        assert!(!implicit.used_explicit_aat);
        assert_eq!(
            explicit.row_perm.new_to_old_slice(),
            implicit.row_perm.new_to_old_slice(),
            "representations must give identical orders"
        );
    }

    #[test]
    fn threaded_aat_build_gives_identical_reduction() {
        let a = scrambled_blocks();
        let seq = reduce_unsymmetric(&a, UnsymOptions::default());
        for threads in [2usize, 4, 16] {
            let par = reduce_unsymmetric(
                &a,
                UnsymOptions {
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(
                seq.row_perm.new_to_old_slice(),
                par.row_perm.new_to_old_slice(),
                "threads={threads}"
            );
            assert_eq!(
                seq.col_perm.new_to_old_slice(),
                par.col_perm.new_to_old_slice(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn traced_reduction_records_phases_and_gauges() {
        let a = scrambled_blocks();
        let rec = cahd_obs::Recorder::new();
        let red = reduce_unsymmetric_traced(&a, UnsymOptions::default(), &rec);
        let report = rec.snapshot();
        for path in [
            "pipeline/rcm",
            "pipeline/rcm/aat_build",
            "pipeline/rcm/order",
            "pipeline/rcm/columns",
            "pipeline/rcm/stats",
        ] {
            assert!(report.span(path).is_some(), "missing span {path}");
        }
        assert_eq!(
            report.gauge("rcm.bandwidth_after"),
            Some(red.after.max_diag_distance as f64)
        );
        assert!(report.counter("rcm.components").unwrap() >= 1);
        assert!(report.counter("rcm.bfs_levels").unwrap() >= 1);
        assert!(
            report.consistency_findings().is_empty(),
            "{:?}",
            report.consistency_findings()
        );
        // The untraced entry point is the disabled-recorder special case.
        let plain = reduce_unsymmetric(&a, UnsymOptions::default());
        assert_eq!(
            plain.row_perm.new_to_old_slice(),
            red.row_perm.new_to_old_slice()
        );
    }

    #[test]
    fn sum_method_produces_valid_orderings() {
        let a = scrambled_blocks();
        let red = reduce_unsymmetric(
            &a,
            UnsymOptions {
                aat_method: AatMethod::Sum,
                ..Default::default()
            },
        );
        assert_eq!(red.row_perm.len(), a.n_rows());
        assert_eq!(red.col_perm.len(), a.n_cols());
        assert!(red.row_perm.then(&red.row_perm.inverse()).is_identity());
        assert!(red.col_perm.then(&red.col_perm.inverse()).is_identity());
        // Note: method (i) shares one index space between rows and columns
        // (row 0 and item 0 are the same vertex), so unlike method (ii) it
        // does NOT cleanly separate the blocks here — exactly the quality
        // deficit the paper describes. The comparison test below quantifies
        // it on rectangular data.
    }

    #[test]
    fn product_not_worse_than_sum_on_rectangular_data() {
        // A wide, far-from-symmetric matrix: the paper's reason to prefer
        // method (ii). Compare band quality.
        let rows: Vec<Vec<u32>> = (0..30u32)
            .map(|i| vec![(i / 3) * 4, (i / 3) * 4 + 1, (i / 3) * 4 + 3])
            .collect();
        let a = CsrMatrix::from_rows(&rows, 40);
        let product = reduce_unsymmetric(&a, UnsymOptions::default());
        let sum = reduce_unsymmetric(
            &a,
            UnsymOptions {
                aat_method: AatMethod::Sum,
                ..Default::default()
            },
        );
        assert!(
            product.after.mean_row_span <= sum.after.mean_row_span + 1e-9,
            "product {} > sum {}",
            product.after.mean_row_span,
            sum.after.mean_row_span
        );
    }

    #[test]
    fn first_occurrence_order() {
        let a = CsrMatrix::from_rows(&[vec![1], vec![0]], 2);
        let p = order_columns(&a, &Permutation::identity(2), ColumnOrder::FirstOccurrence);
        // Column 1 first occurs at row 0, column 0 at row 1.
        assert_eq!(p.old_to_new(1), 0);
        assert_eq!(p.old_to_new(0), 1);
    }
}
