//! The Cuthill-McKee ordering of one connected component.
//!
//! This is the loop of the paper's Fig. 4: a BFS from the root in which the
//! unvisited neighbors of each dequeued vertex are appended in order of
//! increasing degree. Processing the queue front-to-back reproduces exactly
//! the "for each vertex of the previous level, sort its unvisited neighbors
//! by degree and append" formulation.

use cahd_sparse::NeighborOracle;

/// Appends the Cuthill-McKee ordering of the component containing `root`
/// to `order`.
///
/// Shares the reusable `mark`/`stamp` visited convention of
/// [`crate::level::LevelStructure::build`]; all vertices appended are
/// stamped. Returns the number of vertices appended.
pub fn cuthill_mckee_component(
    g: &impl NeighborOracle,
    root: u32,
    order: &mut Vec<u32>,
    mark: &mut [u32],
    stamp: u32,
) -> usize {
    debug_assert_eq!(mark.len(), g.n_vertices());
    let start_len = order.len();
    mark[root as usize] = stamp;
    order.push(root);
    let mut head = start_len;
    let mut nbrs: Vec<u32> = Vec::new();
    let mut fresh: Vec<(u32, u32)> = Vec::new(); // (degree, vertex)
    while head < order.len() {
        let v = order[head] as usize;
        head += 1;
        nbrs.clear();
        g.neighbors_into(v, &mut nbrs);
        fresh.clear();
        for &w in &nbrs {
            if mark[w as usize] != stamp {
                mark[w as usize] = stamp;
                fresh.push((g.degree(w as usize) as u32, w));
            }
        }
        // Increasing degree; vertex id breaks ties deterministically.
        fresh.sort_unstable();
        order.extend(fresh.iter().map(|&(_, w)| w));
    }
    order.len() - start_len
}

/// Reusable counting-sort buckets for the linear-time CM variant.
#[derive(Default)]
pub struct DegreeBuckets {
    buckets: Vec<Vec<u32>>,
    touched: Vec<usize>,
}

/// Linear-time variant of [`cuthill_mckee_component`] (Chan & George, BIT
/// 1980 — the paper's citation \[13\]): the per-vertex neighbor sort is
/// replaced by a counting sort over degrees, removing the `log D` factor
/// from the complexity.
///
/// Produces exactly the same ordering as the comparison-sort version when
/// the oracle enumerates neighbors in ascending vertex order (true for
/// explicit CSR graphs); with unordered oracles, equal-degree neighbors
/// keep enumeration order instead of ascending-id order.
pub fn cuthill_mckee_component_linear(
    g: &impl NeighborOracle,
    root: u32,
    order: &mut Vec<u32>,
    mark: &mut [u32],
    stamp: u32,
    scratch: &mut DegreeBuckets,
) -> usize {
    debug_assert_eq!(mark.len(), g.n_vertices());
    let start_len = order.len();
    mark[root as usize] = stamp;
    order.push(root);
    let mut head = start_len;
    let mut nbrs: Vec<u32> = Vec::new();
    while head < order.len() {
        let v = order[head] as usize;
        head += 1;
        nbrs.clear();
        g.neighbors_into(v, &mut nbrs);
        for &w in &nbrs {
            if mark[w as usize] != stamp {
                mark[w as usize] = stamp;
                let d = g.degree(w as usize);
                if scratch.buckets.len() <= d {
                    scratch.buckets.resize_with(d + 1, Vec::new);
                }
                if scratch.buckets[d].is_empty() {
                    scratch.touched.push(d);
                }
                scratch.buckets[d].push(w);
            }
        }
        // Drain buckets in increasing degree.
        scratch.touched.sort_unstable();
        for &d in &scratch.touched {
            order.append(&mut scratch.buckets[d]);
        }
        scratch.touched.clear();
    }
    order.len() - start_len
}

#[cfg(test)]
mod tests {
    use super::*;
    use cahd_sparse::Graph;

    fn cm(g: &Graph, root: u32) -> Vec<u32> {
        let mut order = Vec::new();
        let mut mark = vec![0u32; g.n_vertices()];
        cuthill_mckee_component(g, root, &mut order, &mut mark, 1);
        order
    }

    fn cm_linear(g: &Graph, root: u32) -> Vec<u32> {
        let mut order = Vec::new();
        let mut mark = vec![0u32; g.n_vertices()];
        let mut scratch = DegreeBuckets::default();
        cuthill_mckee_component_linear(g, root, &mut order, &mut mark, 1, &mut scratch);
        order
    }

    #[test]
    fn linear_matches_comparison_sort_on_csr_graphs() {
        // Deterministic pseudo-random graphs: CSR neighbor lists are
        // sorted, so both variants must agree exactly.
        let mut x = 99u64;
        for trial in 0..20 {
            let n = 10 + trial;
            let mut edges = Vec::new();
            for _ in 0..3 * n {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (x >> 33) as u32 % n as u32;
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = (x >> 33) as u32 % n as u32;
                edges.push((u, v));
            }
            let g = Graph::from_edges(n, &edges);
            assert_eq!(cm(&g, 0), cm_linear(&g, 0), "trial {trial}");
        }
    }

    #[test]
    fn linear_only_component_of_root() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(cm_linear(&g, 0), vec![0, 1]);
    }

    #[test]
    fn path_in_order() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(cm(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(cm(&g, 3), vec![3, 2, 1, 0]);
    }

    #[test]
    fn degree_sorting_within_level() {
        // Root 0 adjacent to 1 (degree 1) and 2 (degree 2): 1 comes first.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (2, 3)]);
        assert_eq!(cm(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn only_component_of_root() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(cm(&g, 0), vec![0, 1]);
    }

    #[test]
    fn tie_broken_by_vertex_id() {
        // 1 and 2 both have degree 1 from root 0.
        let g = Graph::from_edges(3, &[(0, 1), (0, 2)]);
        assert_eq!(cm(&g, 0), vec![0, 1, 2]);
    }

    #[test]
    fn appends_after_existing_order() {
        let g = Graph::from_edges(3, &[(1, 2)]);
        let mut order = vec![0u32];
        let mut mark = vec![0u32; 3];
        mark[0] = 1;
        let added = cuthill_mckee_component(&g, 1, &mut order, &mut mark, 1);
        assert_eq!(added, 2);
        assert_eq!(order, vec![0, 1, 2]);
    }
}
