//! Full (Reverse) Cuthill-McKee over all components.
//!
//! For each connected component, a pseudo-peripheral root is located
//! ([`crate::peripheral`]) and the component is ordered by Cuthill-McKee
//! ([`crate::cm`]). Reversing the concatenated ordering gives RCM, which is
//! known to never worsen — and usually improve — the *profile* relative to
//! plain CM while keeping the same bandwidth.

use cahd_sparse::{NeighborOracle, Permutation};

use crate::cm::cuthill_mckee_component;
use crate::peripheral::pseudo_peripheral_with_scratch;

/// Computes the (non-reversed) Cuthill-McKee ordering of `g`.
///
/// Returned as a [`Permutation`] whose `new_to_old` view is the ordering.
/// Components are processed in order of their smallest vertex id.
pub fn cuthill_mckee(g: &impl NeighborOracle) -> Permutation {
    cuthill_mckee_traced(g, &cahd_obs::Recorder::disabled())
}

/// Like [`cuthill_mckee`], recording ordering metrics into `rec`: counters
/// `rcm.components` (connected components ordered) and `rcm.bfs_levels`
/// (total levels of the pseudo-peripheral level structures, summed over
/// components — the paper's rooted-level-structure depth). RCM is a serial
/// BFS, so both are deterministic.
pub fn cuthill_mckee_traced(g: &impl NeighborOracle, rec: &cahd_obs::Recorder) -> Permutation {
    let n = g.n_vertices();
    let mut order: Vec<u32> = Vec::with_capacity(n);
    // Visited marks are shared between the peripheral search (which must
    // not leak marks into the CM pass) and the CM pass itself, using the
    // stamp convention: stamps strictly increase, so each traversal sees a
    // clean slate.
    let mut mark = vec![0u32; n];
    let mut stamp = 0u32;
    let mut in_order = vec![false; n];
    let mut components = 0u64;
    let mut bfs_levels = 0u64;
    for start in 0..n {
        if in_order[start] {
            continue;
        }
        let (root, levels) = pseudo_peripheral_with_scratch(g, start as u32, &mut mark, &mut stamp);
        components += 1;
        bfs_levels += levels.n_levels() as u64;
        stamp += 1;
        let before = order.len();
        cuthill_mckee_component(g, root, &mut order, &mut mark, stamp);
        for &v in &order[before..] {
            in_order[v as usize] = true;
        }
    }
    rec.add("rcm.components", components);
    rec.add("rcm.bfs_levels", bfs_levels);
    debug_assert_eq!(order.len(), n);
    // cahd-lint: allow(L003, reason = "the component sweep pushes each vertex exactly once (debug_assert_eq above)")
    Permutation::from_new_to_old(order).expect("CM visits every vertex exactly once")
}

/// Computes the Reverse Cuthill-McKee permutation of `g` (the paper's
/// Fig. 4, step 14: "output R in reverse order").
///
/// # Examples
///
/// ```
/// use cahd_rcm::reverse_cuthill_mckee;
/// use cahd_sparse::bandwidth::graph_band_stats;
/// use cahd_sparse::{Graph, Permutation};
///
/// // A path graph with scrambled labels has bandwidth 3 as labeled...
/// let g = Graph::from_edges(4, &[(0, 3), (3, 1), (1, 2)]);
/// let before = graph_band_stats(&g, &Permutation::identity(4)).bandwidth;
/// assert_eq!(before, 3);
/// // ...RCM relabels it down to the optimal 1.
/// let p = reverse_cuthill_mckee(&g);
/// assert_eq!(graph_band_stats(&g, &p).bandwidth, 1);
/// ```
pub fn reverse_cuthill_mckee(g: &impl NeighborOracle) -> Permutation {
    cuthill_mckee(g).reversed()
}

/// [`reverse_cuthill_mckee`] with [`cuthill_mckee_traced`]'s metrics.
pub fn reverse_cuthill_mckee_traced(
    g: &impl NeighborOracle,
    rec: &cahd_obs::Recorder,
) -> Permutation {
    cuthill_mckee_traced(g, rec).reversed()
}

/// RCM using the linear-time (counting-sort) Cuthill-McKee variant of
/// Chan & George (the paper's citation \[13\]). Identical output to
/// [`reverse_cuthill_mckee`] on explicit CSR graphs.
pub fn reverse_cuthill_mckee_linear(g: &impl NeighborOracle) -> Permutation {
    let n = g.n_vertices();
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut mark = vec![0u32; n];
    let mut stamp = 0u32;
    let mut in_order = vec![false; n];
    let mut scratch = crate::cm::DegreeBuckets::default();
    for start in 0..n {
        if in_order[start] {
            continue;
        }
        let (root, _) = pseudo_peripheral_with_scratch(g, start as u32, &mut mark, &mut stamp);
        stamp += 1;
        let before = order.len();
        crate::cm::cuthill_mckee_component_linear(
            g,
            root,
            &mut order,
            &mut mark,
            stamp,
            &mut scratch,
        );
        for &v in &order[before..] {
            in_order[v as usize] = true;
        }
    }
    debug_assert_eq!(order.len(), n);
    Permutation::from_new_to_old(order)
        // cahd-lint: allow(L003, reason = "the component sweep pushes each vertex exactly once (debug_assert_eq above)")
        .expect("CM visits every vertex exactly once")
        .reversed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cahd_sparse::bandwidth::graph_band_stats;
    use cahd_sparse::Graph;

    #[test]
    fn shuffled_path_recovers_bandwidth_one() {
        // Path relabeled badly: 3-0-4-1-2 chain.
        let g = Graph::from_edges(5, &[(3, 0), (0, 4), (4, 1), (1, 2)]);
        let id = Permutation::identity(5);
        let before = graph_band_stats(&g, &id).bandwidth;
        assert!(before > 1);
        let p = reverse_cuthill_mckee(&g);
        let after = graph_band_stats(&g, &p).bandwidth;
        assert_eq!(after, 1);
    }

    #[test]
    fn grid_graph_bandwidth_bounded() {
        // 5x5 grid graph: optimal bandwidth is 5; RCM should reach <= 6.
        let n = 5;
        let mut edges = Vec::new();
        let idx = |r: usize, c: usize| (r * n + c) as u32;
        for r in 0..n {
            for c in 0..n {
                if c + 1 < n {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < n {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        let g = Graph::from_edges(n * n, &edges);
        let p = reverse_cuthill_mckee(&g);
        let s = graph_band_stats(&g, &p);
        assert!(s.bandwidth <= 6, "bandwidth {}", s.bandwidth);
    }

    #[test]
    fn disconnected_components_all_ordered() {
        let g = Graph::from_edges(6, &[(0, 1), (3, 4), (4, 5)]);
        let p = reverse_cuthill_mckee(&g);
        assert_eq!(p.len(), 6);
        // Valid permutation is implied by construction; check bandwidth is 1.
        assert_eq!(graph_band_stats(&g, &p).bandwidth, 1);
    }

    #[test]
    fn reverse_is_reversal_of_cm() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let cm = cuthill_mckee(&g);
        let rcm = reverse_cuthill_mckee(&g);
        for v in 0..4 {
            assert_eq!(rcm.old_to_new(v), 3 - cm.old_to_new(v));
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        let p = reverse_cuthill_mckee(&g);
        assert!(p.is_empty());
    }

    #[test]
    fn rcm_profile_not_worse_than_cm() {
        // Classic property: RCM profile <= CM profile.
        let g = Graph::from_edges(
            8,
            &[
                (0, 2),
                (0, 5),
                (1, 3),
                (2, 6),
                (3, 7),
                (5, 6),
                (6, 7),
                (1, 4),
            ],
        );
        let cm = cuthill_mckee(&g);
        let rcm = reverse_cuthill_mckee(&g);
        let pc = graph_band_stats(&g, &cm).profile;
        let pr = graph_band_stats(&g, &rcm).profile;
        assert!(pr <= pc, "rcm profile {pr} > cm profile {pc}");
    }
}
