//! The Gibbs–Poole–Stockmeyer (GPS) bandwidth-reduction algorithm.
//!
//! GPS is the other classic bandwidth heuristic the paper cites (\[9\],
//! Gibbs, Poole & Stockmeyer, SIAM J. Numer. Anal. 1976). It differs from
//! RCM in two ways:
//!
//! 1. it locates *both* endpoints `(u, v)` of a pseudo-diameter and builds
//!    the two opposing level structures `L(u)`, `L(v)`;
//! 2. it merges them into a combined level assignment of smaller *width*
//!    (each vertex may sit at level `l_u(w)` or `ecc - l_v(w)`; connected
//!    components of the disagreeing vertices are assigned wholesale to
//!    whichever side keeps levels small), then numbers vertices level by
//!    level in increasing-degree order.
//!
//! On many graphs GPS matches RCM's bandwidth with a smaller profile and
//! fewer level-structure rebuilds; here it serves as an alternative
//! ordering for the band-matrix phase, ablatable against RCM (the
//! `rcm/aat_representation`-style benches and `ext-orderings` harness
//! accept any [`cahd_sparse::Permutation`]).

use cahd_sparse::{NeighborOracle, Permutation};

use crate::level::LevelStructure;
use crate::peripheral::pseudo_peripheral_with_scratch;

/// Computes the GPS ordering of `g`, returned like
/// [`crate::reverse_cuthill_mckee`] (the `new_to_old` view is the vertex
/// ordering). Handles disconnected graphs component by component.
pub fn gibbs_poole_stockmeyer(g: &impl NeighborOracle) -> Permutation {
    let n = g.n_vertices();
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut mark = vec![0u32; n];
    let mut stamp = 0u32;
    let mut assigned = vec![false; n];

    for start in 0..n {
        if assigned[start] {
            continue;
        }
        // --- Step 1: pseudo-diameter endpoints u (root) and v. ---
        let (_u, lu) = pseudo_peripheral_with_scratch(g, start as u32, &mut mark, &mut stamp);
        let v = *lu
            .last_level()
            .iter()
            .min_by_key(|&&w| (g.degree(w as usize), w))
            // cahd-lint: allow(L003, reason = "a BFS level structure rooted at u always has a non-empty last level (it contains u at minimum)")
            .expect("non-empty level");
        stamp += 1;
        let lv = LevelStructure::build(g, v, &mut mark, stamp);
        let ecc = lu.eccentricity();

        // --- Step 2: combined level assignment. ---
        // Level from u and reversed level from v; vertices where the two
        // agree are fixed, the rest are assigned by component.
        let comp_verts = lu.vertices();
        let mut level_u = vec![usize::MAX; n];
        let mut level_v = vec![usize::MAX; n];
        for k in 0..lu.n_levels() {
            for &w in lu.level(k) {
                level_u[w as usize] = k;
            }
        }
        for k in 0..lv.n_levels() {
            for &w in lv.level(k) {
                level_v[w as usize] = lv.eccentricity() - k;
            }
        }
        let mut level = vec![usize::MAX; n];
        let mut undecided: Vec<u32> = Vec::new();
        for &w in comp_verts {
            let (a, b) = (level_u[w as usize], level_v[w as usize]);
            if a == b {
                level[w as usize] = a;
            } else {
                undecided.push(w);
            }
        }
        if !undecided.is_empty() {
            assign_undecided(g, &undecided, &level_u, &level_v, &mut level, ecc, n);
        }

        // --- Step 3: number level by level, by increasing degree within a
        // level, parents first (stable BFS-like sweep). ---
        let n_levels = ecc + 1;
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n_levels];
        for &w in comp_verts {
            let l = level[w as usize].min(n_levels - 1);
            buckets[l].push(w);
        }
        for bucket in &mut buckets {
            bucket.sort_by_key(|&w| (g.degree(w as usize), w));
        }
        for bucket in buckets {
            for w in bucket {
                debug_assert!(!assigned[w as usize]);
                assigned[w as usize] = true;
                order.push(w);
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    // cahd-lint: allow(L003, reason = "the component sweep pushes each vertex exactly once (debug_assert_eq above)")
    Permutation::from_new_to_old(order).expect("GPS visits every vertex once")
}

/// Assigns the vertices where `L(u)` and `L(v)` disagree: each connected
/// component of the undecided subgraph goes wholesale to the side (u-levels
/// or v-levels) whose level sizes it inflates less — the GPS width
/// criterion.
fn assign_undecided(
    g: &impl NeighborOracle,
    undecided: &[u32],
    level_u: &[usize],
    level_v: &[usize],
    level: &mut [usize],
    ecc: usize,
    n: usize,
) {
    // Current level populations from the already-fixed vertices.
    let n_levels = ecc + 1;
    let mut pop = vec![0usize; n_levels];
    for w in 0..n {
        if level[w] != usize::MAX {
            pop[level[w].min(n_levels - 1)] += 1;
        }
    }
    let mut in_undecided = vec![false; n];
    for &w in undecided {
        in_undecided[w as usize] = true;
    }
    let mut seen = vec![false; n];
    let mut queue: Vec<u32> = Vec::new();
    let mut nbrs: Vec<u32> = Vec::new();
    // Components in decreasing size order matter in the original; a simple
    // discovery order keeps the implementation lean and near-optimal in
    // practice.
    for &s in undecided {
        if seen[s as usize] {
            continue;
        }
        // Collect the component.
        queue.clear();
        queue.push(s);
        seen[s as usize] = true;
        let mut head = 0;
        while head < queue.len() {
            let w = queue[head] as usize;
            head += 1;
            nbrs.clear();
            g.neighbors_into(w, &mut nbrs);
            for &x in &nbrs {
                if in_undecided[x as usize] && !seen[x as usize] {
                    seen[x as usize] = true;
                    queue.push(x);
                }
            }
        }
        // Width increase if assigned to u-levels vs v-levels.
        let score = |pick_u: bool| -> usize {
            let mut delta = pop.clone();
            for &w in &queue {
                let l = if pick_u {
                    level_u[w as usize]
                } else {
                    level_v[w as usize]
                };
                delta[l.min(n_levels - 1)] += 1;
            }
            delta.into_iter().max().unwrap_or(0)
        };
        let pick_u = score(true) <= score(false);
        for &w in &queue {
            let l = if pick_u {
                level_u[w as usize]
            } else {
                level_v[w as usize]
            };
            level[w as usize] = l;
            pop[l.min(n_levels - 1)] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cahd_sparse::bandwidth::graph_band_stats;
    use cahd_sparse::Graph;

    #[test]
    fn path_graph_optimal() {
        let g = Graph::from_edges(6, &[(3, 0), (0, 5), (5, 1), (1, 4), (4, 2)]);
        let p = gibbs_poole_stockmeyer(&g);
        assert_eq!(graph_band_stats(&g, &p).bandwidth, 1);
    }

    #[test]
    fn grid_graph_bounded() {
        let n = 5;
        let mut edges = Vec::new();
        let idx = |r: usize, c: usize| (r * n + c) as u32;
        for r in 0..n {
            for c in 0..n {
                if c + 1 < n {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < n {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        let g = Graph::from_edges(n * n, &edges);
        let p = gibbs_poole_stockmeyer(&g);
        let b = graph_band_stats(&g, &p).bandwidth;
        assert!(b <= 7, "bandwidth {b}");
    }

    #[test]
    fn disconnected_graph_complete() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (4, 5)]);
        let p = gibbs_poole_stockmeyer(&g);
        assert_eq!(p.len(), 7);
        assert!(p.then(&p.inverse()).is_identity());
    }

    #[test]
    fn star_graph() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let p = gibbs_poole_stockmeyer(&g);
        // Star bandwidth is at best 2 with center in the middle.
        assert!(graph_band_stats(&g, &p).bandwidth <= 3);
    }

    #[test]
    fn single_vertex_and_empty() {
        let g = Graph::from_edges(1, &[]);
        assert_eq!(gibbs_poole_stockmeyer(&g).len(), 1);
        let e = Graph::from_edges(0, &[]);
        assert!(gibbs_poole_stockmeyer(&e).is_empty());
    }

    #[test]
    fn comparable_to_rcm_on_random_sparse() {
        use crate::rcm::reverse_cuthill_mckee;
        // Deterministic pseudo-random sparse graph.
        let n = 60u32;
        let mut edges = Vec::new();
        let mut x = 12345u64;
        for _ in 0..150 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (x >> 33) as u32 % n;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) as u32 % n;
            edges.push((u, v));
        }
        let g = Graph::from_edges(n as usize, &edges);
        let gps = gibbs_poole_stockmeyer(&g);
        let rcm = reverse_cuthill_mckee(&g);
        let b_gps = graph_band_stats(&g, &gps).bandwidth;
        let b_rcm = graph_band_stats(&g, &rcm).bandwidth;
        // GPS must be in the same quality class (within 2x of RCM here).
        assert!(b_gps <= b_rcm * 2, "gps {b_gps} vs rcm {b_rcm}");
    }
}
