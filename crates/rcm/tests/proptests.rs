//! Property-based tests for RCM.

use cahd_rcm::{
    cuthill_mckee, gibbs_poole_stockmeyer, reduce_unsymmetric, reverse_cuthill_mckee,
    reverse_cuthill_mckee_linear, UnsymOptions,
};
use cahd_sparse::bandwidth::graph_band_stats;
use cahd_sparse::{CsrMatrix, Graph, Permutation};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..30).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..60)
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

proptest! {
    #[test]
    fn rcm_is_a_permutation(g in arb_graph()) {
        let p = reverse_cuthill_mckee(&g);
        prop_assert_eq!(p.len(), g.n_vertices());
        // from_new_to_old already validates bijectivity; composing with the
        // inverse must be the identity.
        prop_assert!(p.then(&p.inverse()).is_identity());
    }

    #[test]
    fn rcm_and_cm_have_equal_bandwidth(g in arb_graph()) {
        // Reversal cannot change the bandwidth, only the profile.
        let cm = cuthill_mckee(&g);
        let rcm = reverse_cuthill_mckee(&g);
        let bc = graph_band_stats(&g, &cm).bandwidth;
        let br = graph_band_stats(&g, &rcm).bandwidth;
        prop_assert_eq!(bc, br);
    }

    #[test]
    fn rcm_profile_le_cm_profile(g in arb_graph()) {
        // The classic Liu–Sherman result: reversing CM never increases the
        // envelope/profile.
        let cm = cuthill_mckee(&g);
        let rcm = reverse_cuthill_mckee(&g);
        let pc = graph_band_stats(&g, &cm).profile;
        let pr = graph_band_stats(&g, &rcm).profile;
        prop_assert!(pr <= pc, "rcm profile {} > cm profile {}", pr, pc);
    }

    #[test]
    fn linear_rcm_identical_to_comparison_rcm(g in arb_graph()) {
        let a = reverse_cuthill_mckee(&g);
        let b = reverse_cuthill_mckee_linear(&g);
        prop_assert_eq!(a.new_to_old_slice(), b.new_to_old_slice());
    }

    #[test]
    fn gps_is_a_valid_permutation(g in arb_graph()) {
        let p = gibbs_poole_stockmeyer(&g);
        prop_assert_eq!(p.len(), g.n_vertices());
        prop_assert!(p.then(&p.inverse()).is_identity());
    }

    #[test]
    fn components_stay_contiguous(g in arb_graph()) {
        let p = reverse_cuthill_mckee(&g);
        let (comp, _) = g.connected_components();
        // Vertices of one component must occupy a contiguous position range.
        let n = g.n_vertices();
        let mut comp_of_pos: Vec<u32> = vec![0; n];
        for v in 0..n {
            comp_of_pos[p.old_to_new(v)] = comp[v];
        }
        let mut seen = std::collections::HashSet::new();
        let mut prev = u32::MAX;
        for &c in &comp_of_pos {
            if c != prev {
                prop_assert!(seen.insert(c), "component {} split", c);
                prev = c;
            }
        }
    }

    #[test]
    fn unsym_pipeline_valid_permutations(
        rows in proptest::collection::vec(proptest::collection::vec(0u32..15, 0..6), 1..20)
    ) {
        let a = CsrMatrix::from_rows(&rows, 15);
        let red = reduce_unsymmetric(&a, UnsymOptions::default());
        prop_assert_eq!(red.row_perm.len(), a.n_rows());
        prop_assert_eq!(red.col_perm.len(), a.n_cols());
        // Permuting and measuring with identity must equal measuring the
        // original with the permutations.
        let pa = a.permute_rows(&red.row_perm).permute_cols(&red.col_perm);
        let id_r = Permutation::identity(a.n_rows());
        let id_c = Permutation::identity(a.n_cols());
        let direct = cahd_sparse::rect_band_stats(&pa, &id_r, &id_c);
        prop_assert_eq!(direct.max_row_span, red.after.max_row_span);
        prop_assert!((direct.mean_row_span - red.after.mean_row_span).abs() < 1e-9);
    }
}
