//! Representation-equivalence harness: the implicit (inverted-index)
//! `A x A^T` oracle against the explicit (materialized) one.
//!
//! The tentpole contract of the implicit-first ordering backend:
//!
//! 1. **Byte-identity across representations**: with the hub cap off,
//!    [`band_order_with`] over [`ImplicitRowGraph`] equals the same call
//!    over the explicit [`RowGraph`] — same bytes — for strategies
//!    `{rcm, bfs}` at thread counts `{1, 8}` (plus `CAHD_TEST_THREADS`),
//!    with the parallel claim path forced onto every frontier
//!    (`frontier_min = 1`). The implicit oracle enumerates neighbors in
//!    posting-list order, not sorted order, so this proves the engine's
//!    canonical within-parent rule absorbs representation-defined
//!    enumeration order.
//! 2. **Counter invariance**: the `rcm.*` counters are identical across
//!    representations and thread counts (same level sets, same
//!    expansions), and the `sparse.implicit_*` build counters satisfy the
//!    `CAHD-O001` accounting identities.
//! 3. **End-to-end agreement**: [`reduce_unsymmetric`] forced explicit
//!    and forced implicit produce identical row and column permutations
//!    at every thread count (the pipeline-level byte-identity is also
//!    proven over full releases in `cahd-core`'s representation tests).
//!
//! The `CAHD_TEST_THREADS` environment variable (used by the CI
//! representation matrix) adds one more thread count to every sweep.

use cahd_obs::Recorder;
use cahd_rcm::{band_order_with, OrderingStrategy, RowGraphMode, UnsymOptions};
use cahd_sparse::{CsrMatrix, ImplicitRowGraph, RowGraph};
use proptest::prelude::*;

/// Thread counts the matrix sweeps: `{1, 8}` plus an optional override
/// from `CAHD_TEST_THREADS`.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 8];
    if let Ok(v) = std::env::var("CAHD_TEST_THREADS") {
        if let Ok(extra) = v.trim().parse::<usize>() {
            if extra >= 1 && !counts.contains(&extra) {
                counts.push(extra);
            }
        }
    }
    counts
}

/// The two graph-traversal strategies the implicit backend serves.
const STRATEGIES: [OrderingStrategy; 2] = [OrderingStrategy::Rcm, OrderingStrategy::Bfs];

/// Whether run-time environment overrides would redirect
/// [`reduce_unsymmetric`] away from the options under test.
/// `UnsymOptions.{ordering,rowgraph,hub_cap}` resolve against
/// `CAHD_ORDERING`/`CAHD_ROWGRAPH`/`CAHD_HUB_CAP`, so with any of them
/// set the end-to-end sweep cannot pin the representation per run (the
/// CI matrix jobs set them deliberately).
fn env_overrides_active() -> bool {
    ["CAHD_ORDERING", "CAHD_ROWGRAPH", "CAHD_HUB_CAP"]
        .iter()
        .any(|v| std::env::var_os(v).is_some())
}

/// Random sparse binary matrices biased toward transaction-data shapes:
/// plain random rows, hub-heavy rows (a few very frequent items inducing
/// the k-clique blow-up), block-structured rows, and matrices with empty
/// rows.
fn arb_matrix() -> impl Strategy<Value = CsrMatrix> {
    (
        0usize..4,
        1usize..24,
        proptest::collection::vec(proptest::collection::vec(0u32..24, 0..6), 0..32),
    )
        .prop_map(|(kind, n_cols, rows)| {
            let d = n_cols as u32;
            let shaped: Vec<Vec<u32>> = match kind {
                // Plain random rows (duplicates inside a row are fine:
                // CsrMatrix::from_rows dedups).
                0 => rows
                    .iter()
                    .map(|r| r.iter().map(|&c| c % d).collect())
                    .collect(),
                // Hub-heavy: every non-empty row also contains item 0.
                1 => rows
                    .iter()
                    .map(|r| {
                        let mut v: Vec<u32> = r.iter().map(|&c| c % d).collect();
                        if !v.is_empty() {
                            v.push(0);
                        }
                        v
                    })
                    .collect(),
                // Block-structured: row i draws from a d/2-wide block.
                2 => rows
                    .iter()
                    .enumerate()
                    .map(|(i, r)| {
                        let half = (d / 2).max(1);
                        let base = if i % 2 == 0 { 0 } else { d - half };
                        r.iter().map(|&c| base + c % half).collect()
                    })
                    .collect(),
                // Leading empty rows (isolated vertices in the row graph).
                _ => {
                    let mut v: Vec<Vec<u32>> = vec![Vec::new(); 3];
                    v.extend(
                        rows.iter()
                            .map(|r| r.iter().map(|&c| c % d).collect::<Vec<u32>>()),
                    );
                    v
                }
            };
            CsrMatrix::from_rows(&shaped, n_cols)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn implicit_ordering_is_byte_identical_to_explicit(a in arb_matrix()) {
        let ex = RowGraph::build_explicit(&a);
        let im = ImplicitRowGraph::new(&a);
        for strategy in STRATEGIES {
            // The explicit single-threaded run is the reference bytes.
            let reference = band_order_with(&ex, strategy, 1, 1, &Recorder::disabled());
            for threads in thread_counts() {
                for (name, p) in [
                    ("explicit", band_order_with(&ex, strategy, threads, 1, &Recorder::disabled())),
                    ("implicit", band_order_with(&im, strategy, threads, 1, &Recorder::disabled())),
                ] {
                    prop_assert_eq!(
                        reference.new_to_old_slice(),
                        p.new_to_old_slice(),
                        "{} {} threads={}", name, strategy.name(), threads
                    );
                }
            }
        }
    }

    #[test]
    fn rcm_counters_are_representation_and_thread_invariant(a in arb_matrix()) {
        for strategy in STRATEGIES {
            let ex = RowGraph::build_explicit(&a);
            let im = ImplicitRowGraph::new(&a);
            let mut seen: Option<(u64, u64, u64, u64, u64)> = None;
            for threads in thread_counts() {
                for explicit in [true, false] {
                    let rec = Recorder::new();
                    if explicit {
                        band_order_with(&ex, strategy, threads, 2, &rec);
                    } else {
                        band_order_with(&im, strategy, threads, 2, &rec);
                    }
                    let report = rec.snapshot();
                    let counter = |c: &str| report.counter_or_zero(c);
                    let tuple = (
                        counter("rcm.components"),
                        counter("rcm.bfs_levels"),
                        counter("rcm.levels"),
                        counter("rcm.frontier_parallel"),
                        counter("rcm.frontier_sequential"),
                    );
                    prop_assert_eq!(
                        tuple.3 + tuple.4, tuple.2,
                        "split identity, explicit={} threads={}", explicit, threads
                    );
                    prop_assert!(
                        tuple.2 >= tuple.1,
                        "levels >= bfs_levels, explicit={} threads={}", explicit, threads
                    );
                    if let Some(prev) = seen {
                        prop_assert_eq!(
                            prev, tuple,
                            "counters drifted (explicit={} threads={})", explicit, threads
                        );
                    }
                    seen = Some(tuple);
                }
            }
        }
    }

    #[test]
    fn implicit_build_counters_satisfy_o001_identities(a in arb_matrix()) {
        for (hub_cap, threads) in [(None, 1usize), (None, 8), (Some(3u32), 1), (Some(3), 8)] {
            let rec = Recorder::new();
            let rg = RowGraph::build_mode_traced(
                &a,
                RowGraphMode::Implicit,
                usize::MAX,
                hub_cap,
                threads,
                &rec,
            );
            prop_assert!(!rg.is_explicit());
            let report = rec.snapshot();
            let counter = |c: &str| report.counter_or_zero(c);
            prop_assert_eq!(counter("sparse.implicit_builds"), 1);
            // Every nonzero lands on exactly one side of the hub cap.
            prop_assert_eq!(
                counter("sparse.implicit_postings") + counter("sparse.implicit_capped_postings"),
                counter("sparse.aat_nnz"),
                "posting split, hub_cap={:?} threads={}", hub_cap, threads
            );
            prop_assert!(
                counter("sparse.implicit_capped_postings") >= counter("sparse.implicit_hub_items"),
                "a hub item caps at least one posting"
            );
            prop_assert_eq!(
                counter("sparse.implicit_capped_postings") > 0,
                counter("sparse.implicit_hub_items") > 0,
                "capped postings and hub items appear together"
            );
            if hub_cap.is_none() {
                prop_assert_eq!(counter("sparse.implicit_hub_items"), 0);
            }
            // Explicit-build counters never appear on the implicit path.
            prop_assert_eq!(counter("sparse.aat_edges"), 0);
        }
    }

    #[test]
    fn reductions_agree_end_to_end_across_representations(a in arb_matrix()) {
        if env_overrides_active() {
            // The env override pins every run to one representation or
            // strategy; the direct band_order_with properties above still
            // cover representation identity under the matrix.
            return Ok(());
        }
        for strategy in STRATEGIES {
            let mut reference: Option<cahd_rcm::BandReduction> = None;
            for threads in thread_counts() {
                for mode in [RowGraphMode::Explicit, RowGraphMode::Implicit] {
                    let red = cahd_rcm::reduce_unsymmetric(
                        &a,
                        UnsymOptions {
                            threads,
                            ordering: strategy,
                            rowgraph: mode,
                            ..Default::default()
                        },
                    );
                    prop_assert_eq!(
                        red.used_explicit_aat,
                        mode == RowGraphMode::Explicit,
                        "mode not honored"
                    );
                    if let Some(r) = &reference {
                        prop_assert_eq!(
                            r.row_perm.new_to_old_slice(),
                            red.row_perm.new_to_old_slice(),
                            "row perm drifted: {} mode={:?} threads={}",
                            strategy.name(), mode, threads
                        );
                        prop_assert_eq!(
                            r.col_perm.new_to_old_slice(),
                            red.col_perm.new_to_old_slice(),
                            "col perm drifted: {} mode={:?} threads={}",
                            strategy.name(), mode, threads
                        );
                    } else {
                        reference = Some(red);
                    }
                }
            }
        }
    }
}
