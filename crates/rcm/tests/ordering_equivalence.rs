//! Ordering-equivalence harness for the frontier-parallel engine.
//!
//! The properties the parallel ordering subsystem must uphold:
//!
//! 1. **Byte-identity of RCM**: [`band_order`] under
//!    [`OrderingStrategy::Rcm`] equals the sequential reference
//!    [`reverse_cuthill_mckee`] exactly — same bytes — at every thread
//!    count in `{1, 2, 8}` and with the parallel claim path forced onto
//!    *every* frontier (`frontier_min = 1`), so the equivalence is proven
//!    for the parallel code itself, not for a sequential fallback.
//! 2. **Validity of every strategy**: `rcm`, `bfs` and `cluster` each
//!    emit a bijective permutation that keeps every connected component
//!    contiguous (graph strategies) on random sparse graphs including
//!    disconnected, star, path and empty-row shapes.
//! 3. **Driver agreement**: the sequential driver (the plain-marks
//!    reference twin) and the atomic driver produce identical bytes and
//!    identical `rcm.*` counters for every strategy.
//! 4. **Counter identities**: `rcm.frontier_parallel +
//!    rcm.frontier_sequential == rcm.levels >= rcm.bfs_levels`, at every
//!    thread count — the `CAHD-O001` contract.
//!
//! The `CAHD_TEST_THREADS` environment variable (used by the CI matrix)
//! adds one more thread count to every sweep.

use cahd_obs::Recorder;
use cahd_rcm::{band_order_seq_with, band_order_with, reverse_cuthill_mckee, OrderingStrategy};
use cahd_sparse::Graph;
use proptest::prelude::*;

/// Thread counts every determinism check sweeps: the fixed `{1, 2, 8}` of
/// the harness spec plus an optional override from `CAHD_TEST_THREADS`.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 8];
    if let Ok(v) = std::env::var("CAHD_TEST_THREADS") {
        if let Ok(extra) = v.trim().parse::<usize>() {
            if extra >= 1 && !counts.contains(&extra) {
                counts.push(extra);
            }
        }
    }
    counts
}

/// Random sparse graphs, biased toward interesting shapes: plain random
/// edge sets (which naturally include disconnected pieces and isolated
/// vertices), stars, paths, and graphs whose first vertices have no
/// edges at all (the "empty row" shape of transaction data).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        0usize..4,
        2usize..40,
        2usize..16,
        proptest::collection::vec((0u32..40, 0u32..40), 0..80),
    )
        .prop_map(|(kind, n, iso, raw_edges)| {
            let clamp = |edges: &[(u32, u32)], m: usize, shift: u32| -> Vec<(u32, u32)> {
                edges
                    .iter()
                    .map(|&(a, b)| (a % m as u32 + shift, b % m as u32 + shift))
                    .collect()
            };
            match kind {
                // Plain random edge set: naturally includes disconnected
                // pieces and isolated vertices.
                0 => Graph::from_edges(n, &clamp(&raw_edges, n, 0)),
                // Star: one hub, n-1 leaves.
                1 => {
                    let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
                    Graph::from_edges(n, &edges)
                }
                // Path.
                2 => {
                    let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
                    Graph::from_edges(n, &edges)
                }
                // `iso` leading vertices stay edge-free (the "empty row"
                // shape of transaction data); the rest is random.
                _ => Graph::from_edges(iso + n, &clamp(&raw_edges, n, iso as u32)),
            }
        })
}

/// Positions of each component's vertices must be contiguous in the new
/// order: the engine processes components one after another.
fn components_contiguous(g: &Graph, p: &cahd_sparse::Permutation) -> bool {
    let (comp, k) = g.connected_components();
    let mut lo = vec![usize::MAX; k];
    let mut hi = vec![0usize; k];
    let mut size = vec![0usize; k];
    for (v, &cv) in comp.iter().enumerate() {
        let c = cv as usize;
        let pos = p.old_to_new(v);
        lo[c] = lo[c].min(pos);
        hi[c] = hi[c].max(pos);
        size[c] += 1;
    }
    (0..k).all(|c| size[c] == 0 || hi[c] - lo[c] + 1 == size[c])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parallel_rcm_is_byte_identical_to_sequential_reference(g in arb_graph()) {
        let reference = reverse_cuthill_mckee(&g);
        for threads in thread_counts() {
            // frontier_min = 1 forces the bid/claim path onto every level.
            for frontier_min in [1usize, 2] {
                let p = band_order_with(
                    &g,
                    OrderingStrategy::Rcm,
                    threads,
                    frontier_min,
                    &Recorder::disabled(),
                );
                prop_assert_eq!(
                    reference.new_to_old_slice(),
                    p.new_to_old_slice(),
                    "threads={} frontier_min={}",
                    threads,
                    frontier_min
                );
            }
        }
    }

    #[test]
    fn every_strategy_emits_a_valid_component_contiguous_permutation(g in arb_graph()) {
        for strategy in OrderingStrategy::ALL {
            for threads in thread_counts() {
                let p = band_order_with(
                    &g,
                    strategy,
                    threads,
                    1,
                    &Recorder::disabled(),
                );
                prop_assert_eq!(p.len(), g.n_vertices(), "{}", strategy.name());
                prop_assert!(
                    p.then(&p.inverse()).is_identity(),
                    "{} not bijective", strategy.name()
                );
                prop_assert!(
                    components_contiguous(&g, &p),
                    "{} split a component", strategy.name()
                );
            }
        }
    }

    #[test]
    fn sequential_driver_matches_atomic_driver_bytes_and_counters(g in arb_graph()) {
        for strategy in OrderingStrategy::ALL {
            for frontier_min in [1usize, 3] {
                let seq_rec = Recorder::new();
                let seq = band_order_seq_with(&g, strategy, frontier_min, &seq_rec);
                let par_rec = Recorder::new();
                let par = band_order_with(&g, strategy, 8, frontier_min, &par_rec);
                prop_assert_eq!(
                    seq.new_to_old_slice(),
                    par.new_to_old_slice(),
                    "{} frontier_min={}", strategy.name(), frontier_min
                );
                let (seq_report, par_report) = (seq_rec.snapshot(), par_rec.snapshot());
                for c in [
                    "rcm.components",
                    "rcm.bfs_levels",
                    "rcm.levels",
                    "rcm.frontier_parallel",
                    "rcm.frontier_sequential",
                ] {
                    prop_assert_eq!(
                        seq_report.counter(c),
                        par_report.counter(c),
                        "counter {} drifted between drivers ({})", c, strategy.name()
                    );
                }
            }
        }
    }

    #[test]
    fn counters_satisfy_o001_identities_at_every_thread_count(g in arb_graph()) {
        for strategy in OrderingStrategy::ALL {
            let mut seen: Option<(u64, u64, u64, u64, u64)> = None;
            for threads in thread_counts() {
                let rec = Recorder::new();
                band_order_with(&g, strategy, threads, 2, &rec);
                let report = rec.snapshot();
                let counter = |c: &str| report.counter_or_zero(c);
                let tuple = (
                    counter("rcm.components"),
                    counter("rcm.bfs_levels"),
                    counter("rcm.levels"),
                    counter("rcm.frontier_parallel"),
                    counter("rcm.frontier_sequential"),
                );
                prop_assert_eq!(tuple.3 + tuple.4, tuple.2, "split identity, threads={}", threads);
                prop_assert!(tuple.2 >= tuple.1, "levels >= bfs_levels, threads={}", threads);
                if let Some(prev) = seen {
                    prop_assert_eq!(prev, tuple, "thread-variant counters at {}", threads);
                }
                seen = Some(tuple);
            }
        }
    }
}
