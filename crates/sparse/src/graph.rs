//! Undirected graphs in CSR adjacency form.
//!
//! RCM operates on the graph whose adjacency pattern is a symmetric sparse
//! matrix (paper Section III). A [`Graph`] is that pattern with self-loops
//! removed, plus the degree and connected-component queries RCM needs.

use crate::csr::CsrMatrix;

/// An undirected graph stored as symmetric CSR adjacency (no self-loops).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    adj: CsrMatrix,
}

impl Graph {
    /// Builds a graph from a symmetric pattern matrix, dropping diagonal
    /// entries.
    ///
    /// # Panics
    /// Panics if the matrix is not square. Symmetry is the caller's
    /// responsibility (checked in debug builds only — it is O(nnz) but the
    /// matrices can be large).
    pub fn from_symmetric_pattern(m: &CsrMatrix) -> Self {
        assert_eq!(m.n_rows(), m.n_cols(), "adjacency must be square");
        debug_assert!(m.is_symmetric(), "adjacency must be symmetric");
        let rows: Vec<Vec<u32>> = (0..m.n_rows())
            .map(|r| {
                m.row(r)
                    .iter()
                    .copied()
                    .filter(|&c| c as usize != r)
                    .collect()
            })
            .collect();
        Graph {
            adj: CsrMatrix::from_rows(&rows, m.n_cols()),
        }
    }

    /// Builds a graph from an undirected edge list on `n` vertices.
    /// Each `(u, v)` is inserted in both directions; self-loops are ignored.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            if u == v {
                continue;
            }
            assert!((u as usize) < n && (v as usize) < n, "vertex out of range");
            rows[u as usize].push(v);
            rows[v as usize].push(u);
        }
        Graph {
            adj: CsrMatrix::from_rows(&rows, n),
        }
    }

    /// Builds directly from an adjacency matrix known to be symmetric and
    /// loop-free (used by the `A x A^T` construction which guarantees both).
    pub(crate) fn from_adjacency_unchecked(adj: CsrMatrix) -> Self {
        Graph { adj }
    }

    /// Number of vertices.
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.adj.n_rows()
    }

    /// Number of undirected edges.
    pub fn n_edges(&self) -> usize {
        self.adj.nnz() / 2
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        self.adj.row(v)
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.adj.row_len(v)
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n_vertices())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// The underlying adjacency pattern.
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adj
    }

    /// Assigns each vertex a component id (`0..k`), in order of first
    /// discovery, and returns `(component_of, k)`.
    pub fn connected_components(&self) -> (Vec<u32>, usize) {
        let n = self.n_vertices();
        let mut comp = vec![u32::MAX; n];
        let mut k = 0u32;
        let mut queue: Vec<u32> = Vec::new();
        for start in 0..n {
            if comp[start] != u32::MAX {
                continue;
            }
            comp[start] = k;
            queue.clear();
            queue.push(start as u32);
            let mut head = 0;
            while head < queue.len() {
                let v = queue[head] as usize;
                head += 1;
                for &w in self.neighbors(v) {
                    if comp[w as usize] == u32::MAX {
                        comp[w as usize] = k;
                        queue.push(w);
                    }
                }
            }
            k += 1;
        }
        (comp, k as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_symmetric_dedup() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 0), (2, 2), (1, 3)]);
        assert_eq!(g.n_vertices(), 4);
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 3]);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn from_symmetric_pattern_drops_diagonal() {
        let m = CsrMatrix::from_rows(&[vec![0, 1], vec![0, 1]], 2);
        let g = Graph::from_symmetric_pattern(&m);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn components_found_in_discovery_order() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3), (3, 4)]);
        let (comp, k) = g.connected_components();
        assert_eq!(k, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[2]);
        assert_eq!(comp[5], 2); // isolated vertex discovered last
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.n_vertices(), 0);
        assert_eq!(g.connected_components().1, 0);
        assert_eq!(g.max_degree(), 0);
    }
}
