//! Density-grid visualization of sparse matrices.
//!
//! The paper's Fig. 6 uses the MatView tool to show the non-zero structure
//! of 1000 x 1000 matrices before and after RCM. We reproduce the panels as
//! coarse density grids: the matrix is divided into `grid_rows x grid_cols`
//! cells, non-zeros are counted per cell, and counts are rendered either as
//! ASCII shades or as a binary PGM image.

use crate::csr::CsrMatrix;
use crate::perm::Permutation;

/// A coarse non-zero density grid over a (permuted) sparse matrix.
#[derive(Clone, Debug)]
pub struct DensityGrid {
    grid_rows: usize,
    grid_cols: usize,
    /// Row-major non-zero counts per cell.
    counts: Vec<u32>,
    max_count: u32,
}

impl DensityGrid {
    /// Builds the grid for `a` with rows and columns rearranged by the given
    /// permutations.
    ///
    /// # Panics
    /// Panics if a permutation length mismatches or a grid dimension is 0.
    pub fn new(
        a: &CsrMatrix,
        row_perm: &Permutation,
        col_perm: &Permutation,
        grid_rows: usize,
        grid_cols: usize,
    ) -> Self {
        assert!(
            grid_rows > 0 && grid_cols > 0,
            "grid dimensions must be positive"
        );
        assert_eq!(
            row_perm.len(),
            a.n_rows(),
            "row permutation length mismatch"
        );
        assert_eq!(
            col_perm.len(),
            a.n_cols(),
            "column permutation length mismatch"
        );
        let mut counts = vec![0u32; grid_rows * grid_cols];
        let n = a.n_rows().max(1);
        let d = a.n_cols().max(1);
        for r in 0..a.n_rows() {
            let gr = row_perm.old_to_new(r) * grid_rows / n;
            for &c in a.row(r) {
                let gc = col_perm.old_to_new(c as usize) * grid_cols / d;
                counts[gr * grid_cols + gc] += 1;
            }
        }
        let max_count = counts.iter().copied().max().unwrap_or(0);
        DensityGrid {
            grid_rows,
            grid_cols,
            counts,
            max_count,
        }
    }

    /// Grid height in cells.
    pub fn grid_rows(&self) -> usize {
        self.grid_rows
    }

    /// Grid width in cells.
    pub fn grid_cols(&self) -> usize {
        self.grid_cols
    }

    /// Non-zero count of cell `(r, c)`.
    pub fn count(&self, r: usize, c: usize) -> u32 {
        self.counts[r * self.grid_cols + c]
    }

    /// Largest cell count.
    pub fn max_count(&self) -> u32 {
        self.max_count
    }

    /// Renders the grid as ASCII art, one character per cell, darker
    /// characters meaning denser cells.
    pub fn to_ascii(&self) -> String {
        const SHADES: &[u8] = b" .:-=+*#%@";
        let mut out = String::with_capacity(self.grid_rows * (self.grid_cols + 1));
        for r in 0..self.grid_rows {
            for c in 0..self.grid_cols {
                let v = self.count(r, c);
                let idx = if self.max_count == 0 || v == 0 {
                    0
                } else {
                    // log-ish scale keeps sparse structure visible
                    let frac = (v as f64).ln_1p() / (self.max_count as f64).ln_1p();
                    1 + ((frac * (SHADES.len() - 2) as f64).round() as usize).min(SHADES.len() - 2)
                };
                out.push(SHADES[idx] as char);
            }
            out.push('\n');
        }
        out
    }

    /// Renders the grid as an ASCII (P2) PGM image string; darker pixels are
    /// denser cells.
    pub fn to_pgm(&self) -> String {
        let mut out = String::new();
        out.push_str("P2\n");
        out.push_str(&format!("{} {}\n255\n", self.grid_cols, self.grid_rows));
        for r in 0..self.grid_rows {
            let mut first = true;
            for c in 0..self.grid_cols {
                if !first {
                    out.push(' ');
                }
                first = false;
                let v = self.count(r, c);
                let px = if self.max_count == 0 || v == 0 {
                    255u32
                } else {
                    let frac = (v as f64).ln_1p() / (self.max_count as f64).ln_1p();
                    255 - (frac * 255.0).round() as u32
                };
                out.push_str(&px.to_string());
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_correct_cells() {
        // 4x4 matrix, 2x2 grid: entry (0,0) -> cell (0,0), entry (3,3) -> (1,1)
        let a = CsrMatrix::from_rows(&[vec![0], vec![], vec![], vec![3]], 4);
        let id = Permutation::identity(4);
        let g = DensityGrid::new(&a, &id, &id, 2, 2);
        assert_eq!(g.count(0, 0), 1);
        assert_eq!(g.count(1, 1), 1);
        assert_eq!(g.count(0, 1), 0);
        assert_eq!(g.max_count(), 1);
    }

    #[test]
    fn permutation_moves_mass() {
        let a = CsrMatrix::from_rows(&[vec![0], vec![], vec![], vec![]], 4);
        let flip = Permutation::identity(4).reversed();
        let g = DensityGrid::new(&a, &flip, &Permutation::identity(4), 2, 2);
        // row 0 moved to position 3 -> bottom half
        assert_eq!(g.count(1, 0), 1);
        assert_eq!(g.count(0, 0), 0);
    }

    #[test]
    fn ascii_dimensions() {
        let a = CsrMatrix::from_rows(&[vec![0, 1], vec![0]], 2);
        let id2 = Permutation::identity(2);
        let g = DensityGrid::new(&a, &id2, &id2, 3, 5);
        let art = g.to_ascii();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.chars().count() == 5));
    }

    #[test]
    fn pgm_header() {
        let a = CsrMatrix::from_rows(&[vec![0]], 1);
        let id = Permutation::identity(1);
        let g = DensityGrid::new(&a, &id, &id, 2, 2);
        let pgm = g.to_pgm();
        assert!(pgm.starts_with("P2\n2 2\n255\n"));
    }

    #[test]
    fn empty_matrix_all_blank() {
        let a = CsrMatrix::from_rows(&[], 0);
        let g = DensityGrid::new(
            &a,
            &Permutation::identity(0),
            &Permutation::identity(0),
            2,
            2,
        );
        assert_eq!(g.max_count(), 0);
        assert!(g.to_ascii().chars().all(|c| c == ' ' || c == '\n'));
    }
}
