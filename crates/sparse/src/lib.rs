//! Sparse binary matrices and graph kernels for the CAHD anonymization
//! pipeline.
//!
//! Transaction data is modeled as an `n x d` binary *pattern* matrix: entry
//! `(i, j)` is set iff transaction `i` contains item `j`. Only the pattern
//! (the positions of the non-zero entries) is stored, in [CSR
//! form](csr::CsrMatrix).
//!
//! The crate provides the substrates that the Reverse Cuthill-McKee
//! implementation in `cahd-rcm` is built on:
//!
//! * [`csr::CsrMatrix`] — compressed sparse row binary matrix with
//!   transpose, row/column permutation and symmetry checks,
//! * [`perm::Permutation`] — validated bijections with composition and
//!   inversion,
//! * [`graph::Graph`] — undirected adjacency built from a symmetric pattern,
//!   with degrees and connected components,
//! * [`aat::RowGraph`] — the pattern of `A x A^T` (two rows are adjacent iff
//!   they share a column), either materialized or evaluated lazily through a
//!   `Sync` inverted index ([`aat::ImplicitRowGraph`]) when the explicit edge
//!   set would be too large, selected by [`aat::RowGraphMode`],
//! * [`bandwidth`] — bandwidth/profile metrics for square graphs and
//!   rectangular matrices under row+column permutations,
//! * [`viz`] — density-grid renderers used to reproduce the paper's Fig. 6
//!   matrix plots.

pub mod aat;
pub mod bandwidth;
pub mod csr;
pub mod graph;
pub mod perm;
pub mod viz;

pub use aat::{
    resolve_hub_cap, ImplicitRowGraph, NeighborOracle, OracleScratch, ParNeighborOracle, RowGraph,
    RowGraphMode, SeqOracle,
};
pub use bandwidth::{rect_band_stats, GraphBandStats, RectBandStats};
pub use csr::CsrMatrix;
pub use graph::Graph;
pub use perm::Permutation;
