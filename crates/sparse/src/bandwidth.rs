//! Bandwidth and profile metrics.
//!
//! For a symmetric matrix (graph `G` with labeling `delta`), the paper
//! defines `B(G) = max |delta(v1) - delta(v2)|` over edges. For the
//! rectangular transaction matrix we additionally report *row-span* metrics
//! under a joint row/column permutation: the extent of each row's non-zeros
//! in permuted column space, which is what Fig. 6's plots make visible.

use crate::csr::CsrMatrix;
use crate::graph::Graph;
use crate::perm::Permutation;

/// Bandwidth/profile of a graph under a vertex labeling.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphBandStats {
    /// `max |pos(u) - pos(v)|` over edges (0 for edgeless graphs).
    pub bandwidth: usize,
    /// Sum over vertices of `pos(v) - min(pos of v's closed neighborhood)`;
    /// the classic envelope/profile measure.
    pub profile: u64,
    /// Mean of `|pos(u) - pos(v)|` over directed edges (0.0 if edgeless).
    pub mean_edge_span: f64,
}

/// Computes [`GraphBandStats`] for `g` with vertices placed according to
/// `perm` (`old_to_new` gives each vertex its position).
///
/// # Panics
/// Panics if `perm.len() != g.n_vertices()`.
pub fn graph_band_stats(g: &Graph, perm: &Permutation) -> GraphBandStats {
    assert_eq!(perm.len(), g.n_vertices(), "permutation length mismatch");
    let mut bandwidth = 0usize;
    let mut profile = 0u64;
    let mut span_sum = 0u64;
    let mut span_count = 0u64;
    for v in 0..g.n_vertices() {
        let pv = perm.old_to_new(v);
        let mut min_pos = pv;
        for &w in g.neighbors(v) {
            let pw = perm.old_to_new(w as usize);
            let span = pv.abs_diff(pw);
            bandwidth = bandwidth.max(span);
            span_sum += span as u64;
            span_count += 1;
            min_pos = min_pos.min(pw);
        }
        profile += (pv - min_pos) as u64;
    }
    GraphBandStats {
        bandwidth,
        profile,
        mean_edge_span: if span_count == 0 {
            0.0
        } else {
            span_sum as f64 / span_count as f64
        },
    }
}

/// Band statistics of a rectangular binary matrix under a row and a column
/// permutation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RectBandStats {
    /// Max over rows of (max col pos − min col pos) among the row's
    /// non-zeros; 0 if every row has ≤ 1 non-zero.
    pub max_row_span: usize,
    /// Mean row span over rows with ≥ 1 non-zero.
    pub mean_row_span: f64,
    /// Max over non-zeros `(i, j)` of `|rpos(i)/n - cpos(j)/d|` scaled to
    /// `max(n, d)`: distance from the (scaled) main diagonal. This is the
    /// "total bandwidth" analogue for non-square matrices.
    pub max_diag_distance: usize,
    /// Mean scaled diagonal distance over non-zeros.
    pub mean_diag_distance: f64,
}

/// Computes [`RectBandStats`] for matrix `a` with rows placed by `row_perm`
/// and columns by `col_perm`.
///
/// # Panics
/// Panics on permutation length mismatches.
pub fn rect_band_stats(
    a: &CsrMatrix,
    row_perm: &Permutation,
    col_perm: &Permutation,
) -> RectBandStats {
    assert_eq!(
        row_perm.len(),
        a.n_rows(),
        "row permutation length mismatch"
    );
    assert_eq!(
        col_perm.len(),
        a.n_cols(),
        "column permutation length mismatch"
    );
    let n = a.n_rows().max(1) as f64;
    let d = a.n_cols().max(1) as f64;
    let scale = a.n_rows().max(a.n_cols()) as f64;

    let mut max_row_span = 0usize;
    let mut span_sum = 0u64;
    let mut span_rows = 0u64;
    let mut max_diag = 0f64;
    let mut diag_sum = 0f64;
    let mut nnz = 0u64;

    for r in 0..a.n_rows() {
        let row = a.row(r);
        if row.is_empty() {
            continue;
        }
        let rpos = row_perm.old_to_new(r);
        let mut min_c = usize::MAX;
        let mut max_c = 0usize;
        for &c in row {
            let cpos = col_perm.old_to_new(c as usize);
            min_c = min_c.min(cpos);
            max_c = max_c.max(cpos);
            let dist = ((rpos as f64 / n) - (cpos as f64 / d)).abs() * scale;
            max_diag = max_diag.max(dist);
            diag_sum += dist;
            nnz += 1;
        }
        let span = max_c - min_c;
        max_row_span = max_row_span.max(span);
        span_sum += span as u64;
        span_rows += 1;
    }

    RectBandStats {
        max_row_span,
        mean_row_span: if span_rows == 0 {
            0.0
        } else {
            span_sum as f64 / span_rows as f64
        },
        max_diag_distance: max_diag.round() as usize,
        mean_diag_distance: if nnz == 0 { 0.0 } else { diag_sum / nnz as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_identity_vs_bad_order() {
        // Path 0-1-2-3: identity labeling has bandwidth 1.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let id = Permutation::identity(4);
        let s = graph_band_stats(&g, &id);
        assert_eq!(s.bandwidth, 1);
        assert_eq!(s.profile, 3); // vertices 1,2,3 each look back 1

        // Bad order 0,2,1,3 -> positions: 0->0, 2->1, 1->2, 3->3
        let bad = Permutation::from_new_to_old(vec![0, 2, 1, 3]).unwrap();
        let sb = graph_band_stats(&g, &bad);
        assert_eq!(sb.bandwidth, 2);
        assert!(sb.profile > s.profile);
        assert!(sb.mean_edge_span > s.mean_edge_span);
    }

    #[test]
    fn edgeless_graph_zero() {
        let g = Graph::from_edges(3, &[]);
        let s = graph_band_stats(&g, &Permutation::identity(3));
        assert_eq!(s.bandwidth, 0);
        assert_eq!(s.profile, 0);
        assert_eq!(s.mean_edge_span, 0.0);
    }

    #[test]
    fn rect_stats_diagonal_matrix() {
        // Perfect diagonal: spans 0, diag distance 0.
        let a = CsrMatrix::from_rows(&[vec![0], vec![1], vec![2]], 3);
        let id = Permutation::identity(3);
        let s = rect_band_stats(&a, &id, &id);
        assert_eq!(s.max_row_span, 0);
        assert_eq!(s.max_diag_distance, 0);
        assert_eq!(s.mean_diag_distance, 0.0);
    }

    #[test]
    fn rect_stats_antidiagonal_is_worst() {
        let a = CsrMatrix::from_rows(&[vec![2], vec![1], vec![0]], 3);
        let id = Permutation::identity(3);
        let s = rect_band_stats(&a, &id, &id);
        assert_eq!(s.max_diag_distance, 2);
        // Flipping the rows recovers the diagonal.
        let flip = Permutation::identity(3).reversed();
        let s2 = rect_band_stats(&a, &flip, &id);
        assert_eq!(s2.max_diag_distance, 0);
    }

    #[test]
    fn row_span_measures_extent() {
        let a = CsrMatrix::from_rows(&[vec![0, 4], vec![2]], 5);
        let s = rect_band_stats(&a, &Permutation::identity(2), &Permutation::identity(5));
        assert_eq!(s.max_row_span, 4);
        assert_eq!(s.mean_row_span, 2.0);
    }

    #[test]
    fn empty_matrix_is_all_zero() {
        let a = CsrMatrix::from_rows(&[], 0);
        let s = rect_band_stats(&a, &Permutation::identity(0), &Permutation::identity(0));
        assert_eq!(s.max_row_span, 0);
        assert_eq!(s.mean_diag_distance, 0.0);
    }
}
