//! Compressed sparse row binary pattern matrices.
//!
//! A [`CsrMatrix`] stores only the *positions* of non-zero entries: per row,
//! a sorted, duplicate-free slice of column indices. This is exactly the
//! information the anonymization pipeline needs — a transaction either
//! contains an item or it does not.

use crate::perm::Permutation;

/// A binary sparse matrix in compressed sparse row format.
///
/// # Examples
///
/// ```
/// use cahd_sparse::CsrMatrix;
///
/// // Two transactions over three items.
/// let m = CsrMatrix::from_rows(&[vec![0, 2], vec![1]], 3);
/// assert_eq!(m.row(0), &[0, 2]);
/// assert!(m.get(1, 1));
/// assert_eq!(m.transpose().row(2), &[0]); // item 2 occurs in row 0
/// ```
///
/// Invariants (enforced by all constructors):
/// * `indptr.len() == n_rows + 1`, `indptr[0] == 0`, non-decreasing,
///   `indptr[n_rows] == indices.len()`;
/// * column indices within each row are strictly increasing (sorted, no
///   duplicates) and `< n_cols`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
}

impl CsrMatrix {
    /// Builds a matrix from per-row column lists.
    ///
    /// Rows are sorted and de-duplicated; the only failure mode is a column
    /// index out of range.
    ///
    /// # Panics
    /// Panics if any column index is `>= n_cols`.
    pub fn from_rows(rows: &[Vec<u32>], n_cols: usize) -> Self {
        let nnz: usize = rows.iter().map(Vec::len).sum();
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        let mut indices = Vec::with_capacity(nnz);
        indptr.push(0usize);
        let mut scratch: Vec<u32> = Vec::new();
        for row in rows {
            scratch.clear();
            scratch.extend_from_slice(row);
            scratch.sort_unstable();
            scratch.dedup();
            if let Some(&max) = scratch.last() {
                assert!(
                    (max as usize) < n_cols,
                    "column index {max} out of range for {n_cols} columns"
                );
            }
            indices.extend_from_slice(&scratch);
            indptr.push(indices.len());
        }
        CsrMatrix {
            n_rows: rows.len(),
            n_cols,
            indptr,
            indices,
        }
    }

    /// Builds a matrix from raw CSR parts that are already valid.
    ///
    /// # Panics
    /// Panics (cheaply, without scanning entries in release builds beyond
    /// the structural checks) if the invariants listed on [`CsrMatrix`] do
    /// not hold.
    pub fn from_raw_parts(
        n_rows: usize,
        n_cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
    ) -> Self {
        assert_eq!(indptr.len(), n_rows + 1, "indptr length mismatch");
        assert_eq!(indptr[0], 0, "indptr must start at 0");
        assert_eq!(
            // cahd-lint: allow(L003, reason = "indptr.len() == n_rows + 1 >= 1 was just asserted")
            *indptr.last().unwrap(),
            indices.len(),
            "indptr end mismatch"
        );
        for w in indptr.windows(2) {
            assert!(w[0] <= w[1], "indptr must be non-decreasing");
        }
        for r in 0..n_rows {
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                assert!(w[0] < w[1], "row {r} not strictly sorted");
            }
            if let Some(&max) = row.last() {
                assert!((max as usize) < n_cols, "column index out of range");
            }
        }
        CsrMatrix {
            n_rows,
            n_cols,
            indptr,
            indices,
        }
    }

    /// Builds an `n x n` matrix from an (unordered, possibly duplicated)
    /// edge/entry list.
    pub fn from_entries(n_rows: usize, n_cols: usize, entries: &[(u32, u32)]) -> Self {
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); n_rows];
        for &(r, c) in entries {
            assert!((r as usize) < n_rows, "row index out of range");
            rows[r as usize].push(c);
        }
        Self::from_rows(&rows, n_cols)
    }

    /// The empty `0 x 0` matrix.
    pub fn empty() -> Self {
        CsrMatrix {
            n_rows: 0,
            n_cols: 0,
            indptr: vec![0],
            indices: Vec::new(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored (non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Fraction of entries that are non-zero; `0.0` for an empty matrix.
    pub fn density(&self) -> f64 {
        let cells = self.n_rows as f64 * self.n_cols as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.nnz() as f64 / cells
        }
    }

    /// The sorted column indices of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[u32] {
        &self.indices[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Number of non-zeros in row `r`.
    #[inline]
    pub fn row_len(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Whether entry `(r, c)` is set.
    pub fn get(&self, r: usize, c: u32) -> bool {
        self.row(r).binary_search(&c).is_ok()
    }

    /// Iterates over rows as sorted column slices.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[u32]> + '_ {
        (0..self.n_rows).map(move |r| self.row(r))
    }

    /// The raw `indptr` array (length `n_rows + 1`).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// The raw concatenated column-index array.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Number of non-zeros in each column.
    pub fn col_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_cols];
        for &c in &self.indices {
            counts[c as usize] += 1;
        }
        counts
    }

    /// The transpose pattern: a `n_cols x n_rows` matrix whose row `j` lists
    /// the rows of `self` containing column `j` (an inverted index).
    pub fn transpose(&self) -> CsrMatrix {
        let counts = self.col_counts();
        let mut indptr = Vec::with_capacity(self.n_cols + 1);
        indptr.push(0usize);
        for &c in &counts {
            // cahd-lint: allow(L003, reason = "indptr starts with a pushed 0, so last() is always Some")
            indptr.push(indptr.last().unwrap() + c);
        }
        let mut cursor = indptr[..self.n_cols].to_vec();
        let mut indices = vec![0u32; self.nnz()];
        for r in 0..self.n_rows {
            for &c in self.row(r) {
                indices[cursor[c as usize]] = r as u32;
                cursor[c as usize] += 1;
            }
        }
        // Rows of the transpose are automatically sorted because we visit
        // rows of `self` in increasing order.
        CsrMatrix {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            indptr,
            indices,
        }
    }

    /// Whether the pattern is square and symmetric.
    pub fn is_symmetric(&self) -> bool {
        if self.n_rows != self.n_cols {
            return false;
        }
        self.transpose().indices == self.indices && self.transpose().indptr == self.indptr
    }

    /// Reorders rows: row `r` of the result is row `perm.new_to_old(r)` of
    /// `self`.
    ///
    /// # Panics
    /// Panics if `perm.len() != n_rows`.
    pub fn permute_rows(&self, perm: &Permutation) -> CsrMatrix {
        assert_eq!(perm.len(), self.n_rows, "row permutation length mismatch");
        let mut indptr = Vec::with_capacity(self.n_rows + 1);
        let mut indices = Vec::with_capacity(self.nnz());
        indptr.push(0usize);
        for new_r in 0..self.n_rows {
            let old_r = perm.new_to_old(new_r);
            indices.extend_from_slice(self.row(old_r));
            indptr.push(indices.len());
        }
        CsrMatrix {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            indptr,
            indices,
        }
    }

    /// Relabels columns: column `c` becomes `perm.old_to_new(c)`; rows are
    /// re-sorted.
    ///
    /// # Panics
    /// Panics if `perm.len() != n_cols`.
    pub fn permute_cols(&self, perm: &Permutation) -> CsrMatrix {
        assert_eq!(
            perm.len(),
            self.n_cols,
            "column permutation length mismatch"
        );
        let mut indptr = Vec::with_capacity(self.n_rows + 1);
        let mut indices = Vec::with_capacity(self.nnz());
        indptr.push(0usize);
        let mut scratch: Vec<u32> = Vec::new();
        for r in 0..self.n_rows {
            scratch.clear();
            scratch.extend(
                self.row(r)
                    .iter()
                    .map(|&c| perm.old_to_new(c as usize) as u32),
            );
            scratch.sort_unstable();
            indices.extend_from_slice(&scratch);
            indptr.push(indices.len());
        }
        CsrMatrix {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            indptr,
            indices,
        }
    }

    /// Size of the intersection of two sorted index slices.
    ///
    /// Exposed because QID-overlap scoring in CAHD and the candidate
    /// selection tests both need it.
    pub fn intersection_len(a: &[u32], b: &[u32]) -> usize {
        let mut i = 0;
        let mut j = 0;
        let mut n = 0;
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_rows(&[vec![0, 2], vec![1], vec![], vec![2, 3, 0]], 4)
    }

    #[test]
    fn from_rows_sorts_and_dedups() {
        let m = CsrMatrix::from_rows(&[vec![3, 1, 3, 0]], 4);
        assert_eq!(m.row(0), &[0, 1, 3]);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn basic_accessors() {
        let m = sample();
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.n_cols(), 4);
        assert_eq!(m.nnz(), 6);
        assert_eq!(m.row(3), &[0, 2, 3]);
        assert_eq!(m.row_len(2), 0);
        assert!(m.get(0, 2));
        assert!(!m.get(0, 1));
        assert!((m.density() - 6.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn transpose_is_inverted_index() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.row(0), &[0, 3]); // item 0 in rows 0 and 3
        assert_eq!(t.row(1), &[1]);
        assert_eq!(t.row(2), &[0, 3]);
        assert_eq!(t.row(3), &[3]);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn symmetry_check() {
        let sym = CsrMatrix::from_rows(&[vec![0, 1], vec![0, 1]], 2);
        assert!(sym.is_symmetric());
        let asym = CsrMatrix::from_rows(&[vec![1], vec![]], 2);
        assert!(!asym.is_symmetric());
        let rect = CsrMatrix::from_rows(&[vec![0]], 2);
        assert!(!rect.is_symmetric());
    }

    #[test]
    fn permute_rows_reorders() {
        let m = sample();
        let p = Permutation::from_new_to_old(vec![3, 2, 1, 0]).unwrap();
        let pm = m.permute_rows(&p);
        assert_eq!(pm.row(0), m.row(3));
        assert_eq!(pm.row(3), m.row(0));
        assert_eq!(pm.nnz(), m.nnz());
    }

    #[test]
    fn permute_cols_relabels() {
        let m = CsrMatrix::from_rows(&[vec![0, 1]], 3);
        // old->new: 0->2, 1->0, 2->1
        let p = Permutation::from_old_to_new(vec![2, 0, 1]).unwrap();
        let pm = m.permute_cols(&p);
        assert_eq!(pm.row(0), &[0, 2]);
    }

    #[test]
    fn from_entries_dedups() {
        let m = CsrMatrix::from_entries(2, 2, &[(0, 1), (0, 1), (1, 0)]);
        assert_eq!(m.row(0), &[1]);
        assert_eq!(m.row(1), &[0]);
    }

    #[test]
    fn intersection_len_works() {
        assert_eq!(CsrMatrix::intersection_len(&[1, 3, 5], &[2, 3, 5, 9]), 2);
        assert_eq!(CsrMatrix::intersection_len(&[], &[1]), 0);
        assert_eq!(CsrMatrix::intersection_len(&[7], &[7]), 1);
    }

    #[test]
    #[should_panic(expected = "column index")]
    fn out_of_range_panics() {
        CsrMatrix::from_rows(&[vec![5]], 3);
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::empty();
        assert_eq!(m.n_rows(), 0);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.density(), 0.0);
        assert_eq!(m.transpose(), m);
    }
}
