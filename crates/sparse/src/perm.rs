//! Validated permutations (bijections on `0..n`).
//!
//! RCM produces an ordering of graph vertices; applying it to a matrix and
//! measuring bandwidth both need the mapping in each direction, so a
//! [`Permutation`] stores both the `old -> new` and `new -> old` views.

use std::fmt;

/// Error returned when a vector of indices is not a bijection on `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotAPermutation {
    /// The first offending index, if one exists (out of range or repeated).
    pub offending: Option<usize>,
}

impl fmt::Display for NotAPermutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offending {
            Some(i) => write!(f, "index {i} is out of range or repeated"),
            None => write!(f, "vector is not a permutation"),
        }
    }
}

impl std::error::Error for NotAPermutation {}

/// A bijection on `0..n` with O(1) lookup in both directions.
///
/// # Examples
///
/// ```
/// use cahd_sparse::Permutation;
///
/// // An ordering: position 0 holds old index 2, etc.
/// let p = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
/// assert_eq!(p.old_to_new(2), 0);
/// assert!(p.then(&p.inverse()).is_identity());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    /// `old_to_new[i]` is the new position of old index `i`.
    old_to_new: Vec<u32>,
    /// `new_to_old[i]` is the old index placed at new position `i`.
    new_to_old: Vec<u32>,
}

impl Permutation {
    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        let v: Vec<u32> = (0..n as u32).collect();
        Permutation {
            old_to_new: v.clone(),
            new_to_old: v,
        }
    }

    /// Builds from an *ordering*: `order[k]` is the old index placed at new
    /// position `k`. This is the natural output format of RCM ("output R in
    /// reverse order").
    pub fn from_new_to_old(order: Vec<u32>) -> Result<Self, NotAPermutation> {
        let n = order.len();
        let mut inv = vec![u32::MAX; n];
        for (new, &old) in order.iter().enumerate() {
            let old = old as usize;
            if old >= n || inv[old] != u32::MAX {
                return Err(NotAPermutation {
                    offending: Some(old),
                });
            }
            inv[old] = new as u32;
        }
        Ok(Permutation {
            old_to_new: inv,
            new_to_old: order,
        })
    }

    /// Builds from a *relabeling*: `map[i]` is the new position of old index
    /// `i` (the `delta` of the paper's Section III).
    pub fn from_old_to_new(map: Vec<u32>) -> Result<Self, NotAPermutation> {
        let inv = Permutation::from_new_to_old(map)?;
        Ok(Permutation {
            old_to_new: inv.new_to_old,
            new_to_old: inv.old_to_new,
        })
    }

    /// Number of elements permuted.
    #[inline]
    pub fn len(&self) -> usize {
        self.old_to_new.len()
    }

    /// Whether the permutation is on the empty set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.old_to_new.is_empty()
    }

    /// New position of old index `i`.
    #[inline]
    pub fn old_to_new(&self, i: usize) -> usize {
        self.old_to_new[i] as usize
    }

    /// Old index at new position `i`.
    #[inline]
    pub fn new_to_old(&self, i: usize) -> usize {
        self.new_to_old[i] as usize
    }

    /// The `old -> new` view as a slice.
    pub fn old_to_new_slice(&self) -> &[u32] {
        &self.old_to_new
    }

    /// The `new -> old` view as a slice.
    pub fn new_to_old_slice(&self) -> &[u32] {
        &self.new_to_old
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation {
            old_to_new: self.new_to_old.clone(),
            new_to_old: self.old_to_new.clone(),
        }
    }

    /// Composition: applies `self` first, then `other` (so
    /// `result.old_to_new(i) == other.old_to_new(self.old_to_new(i))`).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn then(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len(), "permutation length mismatch");
        let old_to_new: Vec<u32> = self
            .old_to_new
            .iter()
            .map(|&mid| other.old_to_new[mid as usize])
            .collect();
        // cahd-lint: allow(L003, reason = "composing two validated bijections yields a bijection")
        Permutation::from_old_to_new(old_to_new).expect("composition of bijections")
    }

    /// Reverses the ordering: new position `k` becomes `n - 1 - k`. This is
    /// the "reverse" step of Reverse Cuthill-McKee.
    pub fn reversed(&self) -> Permutation {
        let n = self.len() as u32;
        let new_to_old: Vec<u32> = self.new_to_old.iter().rev().copied().collect();
        let mut old_to_new = self.old_to_new.clone();
        for v in &mut old_to_new {
            *v = n - 1 - *v;
        }
        Permutation {
            old_to_new,
            new_to_old,
        }
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.old_to_new
            .iter()
            .enumerate()
            .all(|(i, &v)| i as u32 == v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(5);
        assert!(p.is_identity());
        assert_eq!(p.old_to_new(3), 3);
        assert_eq!(p.new_to_old(3), 3);
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn from_order_and_inverse() {
        let p = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
        assert_eq!(p.new_to_old(0), 2);
        assert_eq!(p.old_to_new(2), 0);
        let inv = p.inverse();
        assert_eq!(inv.old_to_new(0), 2);
        assert!(p.then(&inv).is_identity());
        assert!(inv.then(&p).is_identity());
    }

    #[test]
    fn rejects_non_bijections() {
        assert!(Permutation::from_new_to_old(vec![0, 0]).is_err());
        assert!(Permutation::from_new_to_old(vec![0, 2]).is_err());
        assert!(Permutation::from_old_to_new(vec![1, 1, 0]).is_err());
    }

    #[test]
    fn reversed_flips_positions() {
        let p = Permutation::identity(4).reversed();
        assert_eq!(p.old_to_new(0), 3);
        assert_eq!(p.old_to_new(3), 0);
        assert_eq!(p.new_to_old(0), 3);
        assert!(p.reversed().is_identity());
    }

    #[test]
    fn composition_applies_in_order() {
        // p: 0->1->2->0 cycle; q: swap 0,1
        let p = Permutation::from_old_to_new(vec![1, 2, 0]).unwrap();
        let q = Permutation::from_old_to_new(vec![1, 0, 2]).unwrap();
        let pq = p.then(&q);
        assert_eq!(pq.old_to_new(0), 0); // 0 -p-> 1 -q-> 0
        assert_eq!(pq.old_to_new(1), 2); // 1 -p-> 2 -q-> 2
        assert_eq!(pq.old_to_new(2), 1); // 2 -p-> 0 -q-> 1
    }

    #[test]
    fn empty_permutation() {
        let p = Permutation::identity(0);
        assert!(p.is_empty());
        assert!(p.is_identity());
    }
}
