//! The row-similarity graph: the pattern of `A x A^T`.
//!
//! Two transactions (rows of the binary matrix `A`) are adjacent iff they
//! share at least one item. The paper (Fig. 5) reduces the bandwidth of the
//! unsymmetric `A` by running RCM on this symmetric pattern.
//!
//! Frequent items are a hazard: an item contained in `k` transactions
//! induces a `k`-clique, i.e. `k(k-1)` directed edges. Real basket data has
//! items with thousands of occurrences, so materializing the explicit edge
//! set can explode. [`RowGraph::build`] therefore estimates the edge count
//! first and falls back to an *implicit* representation — an inverted index
//! from which the neighbor list of a vertex is computed on demand — when the
//! estimate exceeds a budget. RCM only ever touches neighbor lists of
//! vertices it visits, once each, so the implicit form trades memory for a
//! modest amount of recomputation.

use std::cell::RefCell;

use crate::csr::CsrMatrix;
use crate::graph::Graph;

/// Vertex-neighborhood access used by the RCM implementation, abstracting
/// over explicit and implicit row graphs.
pub trait NeighborOracle {
    /// Number of vertices.
    fn n_vertices(&self) -> usize;

    /// Appends the distinct neighbors of `v` (excluding `v` itself) to
    /// `out`, in unspecified order.
    fn neighbors_into(&self, v: usize, out: &mut Vec<u32>);

    /// Number of distinct neighbors of `v`.
    fn degree(&self, v: usize) -> usize;
}

impl NeighborOracle for Graph {
    fn n_vertices(&self) -> usize {
        Graph::n_vertices(self)
    }

    fn neighbors_into(&self, v: usize, out: &mut Vec<u32>) {
        out.extend_from_slice(self.neighbors(v));
    }

    fn degree(&self, v: usize) -> usize {
        Graph::degree(self, v)
    }
}

/// Implicit `A x A^T` pattern: neighbor lists are computed on demand from
/// the matrix and its transpose (inverted index).
///
/// Degrees are cached lazily. Interior mutability makes queries `&self`;
/// the type is consequently not `Sync` — RCM is single-threaded, as in the
/// paper.
pub struct ImplicitRowGraph {
    rows: CsrMatrix,
    cols: CsrMatrix,
    scratch: RefCell<Scratch>,
}

struct Scratch {
    /// Visit stamp per vertex; avoids clearing between queries.
    mark: Vec<u32>,
    stamp: u32,
    /// Lazily computed degrees (`u32::MAX` = unknown).
    degree: Vec<u32>,
    buf: Vec<u32>,
}

impl ImplicitRowGraph {
    /// Builds the implicit graph for the rows of `a`.
    pub fn new(a: &CsrMatrix) -> Self {
        let n = a.n_rows();
        ImplicitRowGraph {
            rows: a.clone(),
            cols: a.transpose(),
            scratch: RefCell::new(Scratch {
                mark: vec![0; n],
                stamp: 0,
                degree: vec![u32::MAX; n],
                buf: Vec::new(),
            }),
        }
    }

    fn collect_neighbors(&self, v: usize, out: &mut Vec<u32>) {
        let mut s = self.scratch.borrow_mut();
        s.stamp = s.stamp.wrapping_add(1);
        if s.stamp == 0 {
            // Stamp wrapped; reset marks so stale stamps cannot collide.
            s.mark.iter_mut().for_each(|m| *m = 0);
            s.stamp = 1;
        }
        let stamp = s.stamp;
        s.mark[v] = stamp; // exclude self
        for &item in self.rows.row(v) {
            for &r in self.cols.row(item as usize) {
                if s.mark[r as usize] != stamp {
                    s.mark[r as usize] = stamp;
                    out.push(r);
                }
            }
        }
        s.degree[v] = out.len() as u32;
    }
}

impl NeighborOracle for ImplicitRowGraph {
    fn n_vertices(&self) -> usize {
        self.rows.n_rows()
    }

    fn neighbors_into(&self, v: usize, out: &mut Vec<u32>) {
        self.collect_neighbors(v, out);
    }

    fn degree(&self, v: usize) -> usize {
        {
            let s = self.scratch.borrow();
            if s.degree[v] != u32::MAX {
                return s.degree[v] as usize;
            }
        }
        let mut buf = {
            let mut s = self.scratch.borrow_mut();
            std::mem::take(&mut s.buf)
        };
        buf.clear();
        self.collect_neighbors(v, &mut buf);
        let d = buf.len();
        self.scratch.borrow_mut().buf = buf;
        d
    }
}

/// The row-similarity graph of a binary matrix, explicit or implicit.
pub enum RowGraph {
    /// Materialized adjacency.
    Explicit(Graph),
    /// Inverted-index backed adjacency.
    Implicit(ImplicitRowGraph),
}

impl RowGraph {
    /// Default edge budget for [`RowGraph::build`]: beyond this many
    /// (estimated, directed) edges the implicit representation is used.
    pub const DEFAULT_EDGE_BUDGET: usize = 50_000_000;

    /// Upper bound on the number of directed edges of the `A x A^T`
    /// pattern: every column containing `k` rows contributes at most
    /// `k (k - 1)` ordered pairs.
    pub fn estimate_directed_edges(a: &CsrMatrix) -> usize {
        a.col_counts()
            .iter()
            .map(|&k| k.saturating_mul(k.saturating_sub(1)))
            .fold(0usize, usize::saturating_add)
    }

    /// Builds the row graph, choosing the explicit form when the estimated
    /// edge count fits in `edge_budget` and the implicit form otherwise.
    pub fn build(a: &CsrMatrix, edge_budget: usize) -> Self {
        Self::build_with_threads(a, edge_budget, 1)
    }

    /// Like [`RowGraph::build`], but materializing the explicit form with
    /// `threads` workers (see [`RowGraph::build_explicit_threaded`]). The
    /// implicit fallback is unaffected by the thread count — it builds no
    /// adjacency up front.
    pub fn build_with_threads(a: &CsrMatrix, edge_budget: usize, threads: usize) -> Self {
        Self::build_traced(a, edge_budget, threads, &cahd_obs::Recorder::disabled())
    }

    /// Like [`RowGraph::build_with_threads`], recording `sparse.*` build
    /// metrics into `rec`:
    ///
    /// * counters `sparse.aat_rows`, `sparse.aat_nnz`,
    ///   `sparse.aat_edges_estimate`, and (explicit form only)
    ///   `sparse.aat_edges` — all scheduling-invariant;
    /// * gauge `sparse.aat_partition_imbalance` — for the threaded
    ///   explicit build, the heaviest worker chunk's directed-edge count
    ///   over the mean chunk's (1.0 = perfectly balanced); depends on the
    ///   thread count, hence a gauge.
    pub fn build_traced(
        a: &CsrMatrix,
        edge_budget: usize,
        threads: usize,
        rec: &cahd_obs::Recorder,
    ) -> Self {
        let n = a.n_rows();
        let estimate = Self::estimate_directed_edges(a);
        rec.add("sparse.aat_rows", n as u64);
        rec.add("sparse.aat_nnz", a.nnz() as u64);
        rec.add("sparse.aat_edges_estimate", estimate as u64);
        if estimate > edge_budget {
            return RowGraph::Implicit(ImplicitRowGraph::new(a));
        }
        let g = Self::build_explicit_threaded(a, threads);
        if rec.is_enabled() {
            let degrees: Vec<usize> = (0..n).map(|v| Graph::degree(&g, v)).collect();
            rec.add(
                "sparse.aat_edges",
                degrees.iter().map(|&d| d as u64).sum::<u64>(),
            );
            // Reconstruct the worker partition of `build_explicit_threaded`
            // (contiguous chunks of ceil(n / threads) rows) and compare
            // per-chunk edge loads.
            let threads = threads.max(1).min(n.max(1));
            if threads > 1 {
                let chunk = n.div_ceil(threads);
                let loads: Vec<u64> = degrees
                    .chunks(chunk)
                    .map(|c| c.iter().map(|&d| d as u64).sum())
                    .collect();
                let max = loads.iter().copied().max().unwrap_or(0);
                let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
                let imbalance = if mean > 0.0 { max as f64 / mean } else { 1.0 };
                rec.gauge("sparse.aat_partition_imbalance", imbalance);
            }
        }
        RowGraph::Explicit(g)
    }

    /// Always materializes the adjacency.
    pub fn build_explicit(a: &CsrMatrix) -> Graph {
        Self::build_explicit_threaded(a, 1)
    }

    /// Materializes the adjacency with `threads` workers, each owning a
    /// contiguous row range (and its own scratch, so workers share nothing
    /// mutable). The output is identical for every thread count: each
    /// neighbor list depends only on its own row and the transpose.
    ///
    /// Each worker emits its chunk directly as flat CSR pieces with every
    /// neighbor list already sorted — short rows by a k-way merge of the
    /// (ascending) transpose lists, long rows by a stamped gather plus one
    /// per-row sort — so assembly is a concatenation, not a re-sort of the
    /// full edge set.
    pub fn build_explicit_threaded(a: &CsrMatrix, threads: usize) -> Graph {
        let n = a.n_rows();
        let cols = a.transpose();
        let threads = threads.max(1).min(n.max(1));
        let chunk = n.div_ceil(threads.max(1)).max(1);
        let chunks: Vec<ChunkAdjacency> = if threads <= 1 {
            vec![fill_chunk(a, &cols, 0, n)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n.div_ceil(chunk))
                    .map(|wi| {
                        let cols = &cols;
                        let lo = wi * chunk;
                        let hi = (lo + chunk).min(n);
                        scope.spawn(move || fill_chunk(a, cols, lo, hi))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            // cahd-lint: allow(L003, reason = "worker panics only propagate caller bugs; fill_chunk itself cannot panic on in-range rows")
                            .expect("A x A^T build worker panicked")
                    })
                    .collect()
            })
        };
        let nnz: usize = chunks.iter().map(|c| c.indices.len()).sum();
        let mut indptr: Vec<usize> = Vec::with_capacity(n + 1);
        indptr.push(0);
        let mut indices: Vec<u32> = Vec::with_capacity(nnz);
        for c in &chunks {
            let base = indices.len();
            indptr.extend(c.indptr.iter().skip(1).map(|&rel| base + rel));
            indices.extend_from_slice(&c.indices);
        }
        Graph::from_adjacency_unchecked(CsrMatrix::from_raw_parts(n, n, indptr, indices))
    }

    /// Always uses the implicit form.
    pub fn build_implicit(a: &CsrMatrix) -> ImplicitRowGraph {
        ImplicitRowGraph::new(a)
    }

    /// Whether the explicit representation was chosen.
    pub fn is_explicit(&self) -> bool {
        matches!(self, RowGraph::Explicit(_))
    }
}

/// One worker's contiguous slice of the adjacency, as relative CSR parts
/// (`indptr[0] == 0`; every row strictly ascending).
struct ChunkAdjacency {
    indptr: Vec<usize>,
    indices: Vec<u32>,
}

/// Builds the sorted distinct neighbor lists of rows `lo..hi` (each
/// excluding the row itself) as one flat chunk. The transpose rows are
/// ascending, so one- and two-item rows emit pre-sorted lists by a plain
/// merge; wider rows use a stamped gather plus one per-row sort.
fn fill_chunk(a: &CsrMatrix, cols: &CsrMatrix, lo: usize, hi: usize) -> ChunkAdjacency {
    let mut indptr: Vec<usize> = Vec::with_capacity(hi - lo + 1);
    indptr.push(0);
    // Reserve for the raw traversal count of this chunk; duplicates make
    // this an over-estimate, which trades memory for zero reallocation.
    let raw: usize = (lo..hi)
        .flat_map(|v| a.row(v))
        .map(|&i| cols.row(i as usize).len())
        .sum();
    let mut indices: Vec<u32> = Vec::with_capacity(raw);
    let mut scratch = MergeScratch::default();
    for v in lo..hi {
        let items = a.row(v);
        let vv = v as u32;
        match *items {
            [] => {}
            [item] => {
                indices.extend(cols.row(item as usize).iter().copied().filter(|&r| r != vv));
            }
            [i0, i1] => {
                // Two-way merge of two ascending, distinct lists.
                let (x, y) = (cols.row(i0 as usize), cols.row(i1 as usize));
                let (mut p, mut q) = (0usize, 0usize);
                while p < x.len() && q < y.len() {
                    let (rx, ry) = (x[p], y[q]);
                    let min = rx.min(ry);
                    p += usize::from(rx == min);
                    q += usize::from(ry == min);
                    if min != vv {
                        indices.push(min);
                    }
                }
                indices.extend(x[p..].iter().copied().filter(|&r| r != vv));
                indices.extend(y[q..].iter().copied().filter(|&r| r != vv));
            }
            _ => {
                merge_lists(cols, items, vv, &mut indices, &mut scratch);
            }
        }
        indptr.push(indices.len());
    }
    ChunkAdjacency { indptr, indices }
}

/// Ping-pong buffers for [`merge_lists`].
#[derive(Default)]
struct MergeScratch {
    buf: [Vec<u32>; 2],
    bounds: [Vec<usize>; 2],
}

/// Merges `k >= 3` ascending distinct lists (the transpose rows of
/// `items`) into one ascending distinct list appended to `out`, excluding
/// `v`: balanced rounds of two-way merges, so each element is touched
/// `ceil(log2 k)` times instead of paying a comparison sort.
fn merge_lists(cols: &CsrMatrix, items: &[u32], v: u32, out: &mut Vec<u32>, s: &mut MergeScratch) {
    // Round 0 merges the borrowed transpose rows into buffer 0; later
    // rounds ping-pong between the two scratch buffers until one list
    // remains, which is drained into `out` with `v` filtered.
    let (mut cur, mut nxt) = (0usize, 1usize);
    s.buf[cur].clear();
    s.bounds[cur].clear();
    s.bounds[cur].push(0);
    let mut i = 0;
    while i < items.len() {
        let x = cols.row(items[i] as usize);
        if i + 1 < items.len() {
            merge_two(x, cols.row(items[i + 1] as usize), &mut s.buf[cur]);
        } else {
            s.buf[cur].extend_from_slice(x);
        }
        s.bounds[cur].push(s.buf[cur].len());
        i += 2;
    }
    while s.bounds[cur].len() > 2 {
        let (bufs, boundss) = (&mut s.buf, &mut s.bounds);
        let (lo, hi) = split_pair(bufs, cur, nxt);
        let (blo, bhi) = split_pair(boundss, cur, nxt);
        hi.clear();
        bhi.clear();
        bhi.push(0);
        let mut p = 0;
        while p + 1 < blo.len() {
            let x = &lo[blo[p]..blo[p + 1]];
            if p + 2 < blo.len() {
                merge_two(x, &lo[blo[p + 1]..blo[p + 2]], hi);
            } else {
                hi.extend_from_slice(x);
            }
            bhi.push(hi.len());
            p += 2;
        }
        std::mem::swap(&mut cur, &mut nxt);
    }
    out.extend(s.buf[cur].iter().copied().filter(|&r| r != v));
}

/// Indexes two distinct slots of a length-2 array mutably.
fn split_pair<T>(arr: &mut [T; 2], cur: usize, nxt: usize) -> (&T, &mut T) {
    debug_assert!(cur != nxt && cur < 2 && nxt < 2);
    let (a, b) = arr.split_at_mut(1);
    if cur == 0 {
        (&a[0], &mut b[0])
    } else {
        (&b[0], &mut a[0])
    }
}

/// Appends the ascending distinct union of two ascending distinct lists.
fn merge_two(x: &[u32], y: &[u32], out: &mut Vec<u32>) {
    let (mut p, mut q) = (0usize, 0usize);
    while p < x.len() && q < y.len() {
        let (rx, ry) = (x[p], y[q]);
        let min = rx.min(ry);
        p += usize::from(rx == min);
        q += usize::from(ry == min);
        out.push(min);
    }
    out.extend_from_slice(&x[p..]);
    out.extend_from_slice(&y[q..]);
}

impl NeighborOracle for RowGraph {
    fn n_vertices(&self) -> usize {
        match self {
            RowGraph::Explicit(g) => g.n_vertices(),
            RowGraph::Implicit(g) => g.n_vertices(),
        }
    }

    fn neighbors_into(&self, v: usize, out: &mut Vec<u32>) {
        match self {
            RowGraph::Explicit(g) => g.neighbors_into(v, out),
            RowGraph::Implicit(g) => g.neighbors_into(v, out),
        }
    }

    fn degree(&self, v: usize) -> usize {
        match self {
            RowGraph::Explicit(g) => NeighborOracle::degree(g, v),
            RowGraph::Implicit(g) => g.degree(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // rows 0 and 1 share item 0; rows 1 and 2 share item 2; row 3 isolated
        CsrMatrix::from_rows(&[vec![0, 1], vec![0, 2], vec![2], vec![3]], 4)
    }

    fn sorted_neighbors(o: &dyn NeighborOracle, v: usize) -> Vec<u32> {
        let mut out = Vec::new();
        o.neighbors_into(v, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn explicit_matches_expected() {
        let g = RowGraph::build_explicit(&sample());
        assert_eq!(sorted_neighbors(&g, 0), vec![1]);
        assert_eq!(sorted_neighbors(&g, 1), vec![0, 2]);
        assert_eq!(sorted_neighbors(&g, 2), vec![1]);
        assert_eq!(sorted_neighbors(&g, 3), Vec::<u32>::new());
    }

    #[test]
    fn implicit_matches_explicit() {
        let a = sample();
        let ex = RowGraph::build_explicit(&a);
        let im = ImplicitRowGraph::new(&a);
        for v in 0..a.n_rows() {
            assert_eq!(
                sorted_neighbors(&ex, v),
                sorted_neighbors(&im, v),
                "vertex {v}"
            );
            assert_eq!(NeighborOracle::degree(&ex, v), im.degree(v));
        }
    }

    #[test]
    fn implicit_degree_cached_and_repeatable() {
        let im = ImplicitRowGraph::new(&sample());
        assert_eq!(im.degree(1), 2);
        assert_eq!(im.degree(1), 2);
        assert_eq!(sorted_neighbors(&im, 1), vec![0, 2]);
        assert_eq!(sorted_neighbors(&im, 1), vec![0, 2]);
    }

    #[test]
    fn edge_estimate_is_upper_bound() {
        let a = sample();
        let est = RowGraph::estimate_directed_edges(&a);
        let g = RowGraph::build_explicit(&a);
        let actual: usize = (0..4).map(|v| NeighborOracle::degree(&g, v)).sum();
        assert!(est >= actual);
        assert_eq!(est, 2 + 2); // item0: 2 rows -> 2; item2: 2 rows -> 2
    }

    #[test]
    fn threaded_build_matches_sequential_for_any_thread_count() {
        let rows: Vec<Vec<u32>> = (0..23u32).map(|i| vec![i % 5, 5 + i % 3]).collect();
        let a = CsrMatrix::from_rows(&rows, 8);
        let seq = RowGraph::build_explicit(&a);
        for threads in [2usize, 3, 8, 64] {
            let par = RowGraph::build_explicit_threaded(&a, threads);
            for v in 0..a.n_rows() {
                assert_eq!(
                    sorted_neighbors(&seq, v),
                    sorted_neighbors(&par, v),
                    "vertex {v}, threads {threads}"
                );
            }
        }
        // Zero threads is clamped, and the budget gate still applies.
        let par0 = RowGraph::build_explicit_threaded(&a, 0);
        assert_eq!(sorted_neighbors(&seq, 1), sorted_neighbors(&par0, 1));
        assert!(RowGraph::build_with_threads(&a, usize::MAX, 4).is_explicit());
        assert!(!RowGraph::build_with_threads(&a, 0, 4).is_explicit());
    }

    #[test]
    fn traced_build_records_invariant_counters() {
        let rows: Vec<Vec<u32>> = (0..23u32).map(|i| vec![i % 5, 5 + i % 3]).collect();
        let a = CsrMatrix::from_rows(&rows, 8);
        let mut reports = Vec::new();
        for threads in [1usize, 4] {
            let rec = cahd_obs::Recorder::new();
            let g = RowGraph::build_traced(&a, usize::MAX, threads, &rec);
            assert!(g.is_explicit());
            reports.push(rec.snapshot());
        }
        let [seq, par] = &reports[..] else {
            unreachable!()
        };
        // Counters are identical across thread counts...
        assert_eq!(seq.counters, par.counters);
        assert_eq!(seq.counter("sparse.aat_rows"), Some(23));
        assert_eq!(seq.counter("sparse.aat_nnz"), Some(46));
        assert!(seq.counter("sparse.aat_edges").unwrap() > 0);
        // ...while the imbalance gauge only exists for the threaded build.
        assert!(seq.gauge("sparse.aat_partition_imbalance").is_none());
        assert!(par.gauge("sparse.aat_partition_imbalance").unwrap() >= 1.0);
        // The implicit fallback records sizes but no edge count.
        let rec = cahd_obs::Recorder::new();
        let g = RowGraph::build_traced(&a, 0, 4, &rec);
        assert!(!g.is_explicit());
        assert_eq!(rec.snapshot().counter("sparse.aat_edges"), None);
    }

    #[test]
    fn budget_selects_representation() {
        let a = sample();
        assert!(RowGraph::build(&a, 1_000).is_explicit());
        assert!(!RowGraph::build(&a, 1).is_explicit());
    }

    #[test]
    fn no_self_loops() {
        let a = CsrMatrix::from_rows(&[vec![0], vec![0]], 1);
        let g = RowGraph::build_explicit(&a);
        assert_eq!(sorted_neighbors(&g, 0), vec![1]);
        let im = ImplicitRowGraph::new(&a);
        assert_eq!(sorted_neighbors(&im, 0), vec![1]);
    }
}
