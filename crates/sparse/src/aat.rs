//! The row-similarity graph: the pattern of `A x A^T`.
//!
//! Two transactions (rows of the binary matrix `A`) are adjacent iff they
//! share at least one item. The paper (Fig. 5) reduces the bandwidth of the
//! unsymmetric `A` by running RCM on this symmetric pattern.
//!
//! Frequent items are a hazard: an item contained in `k` transactions
//! induces a `k`-clique, i.e. `k(k-1)` directed edges. Real basket data has
//! items with thousands of occurrences, so materializing the explicit edge
//! set can explode. [`RowGraph::build`] therefore estimates the edge count
//! first and falls back to an *implicit* representation — an inverted index
//! from which the neighbor list of a vertex is computed on demand — when the
//! estimate exceeds a budget. RCM only ever touches neighbor lists of
//! vertices it visits, once each, so the implicit form trades memory for a
//! modest amount of recomputation.

use std::cell::RefCell;

use crate::csr::CsrMatrix;
use crate::graph::Graph;

/// Vertex-neighborhood access used by the RCM implementation, abstracting
/// over explicit and implicit row graphs.
pub trait NeighborOracle {
    /// Number of vertices.
    fn n_vertices(&self) -> usize;

    /// Appends the distinct neighbors of `v` (excluding `v` itself) to
    /// `out`, in unspecified order.
    fn neighbors_into(&self, v: usize, out: &mut Vec<u32>);

    /// Number of distinct neighbors of `v`.
    fn degree(&self, v: usize) -> usize;
}

impl NeighborOracle for Graph {
    fn n_vertices(&self) -> usize {
        Graph::n_vertices(self)
    }

    fn neighbors_into(&self, v: usize, out: &mut Vec<u32>) {
        out.extend_from_slice(self.neighbors(v));
    }

    fn degree(&self, v: usize) -> usize {
        Graph::degree(self, v)
    }
}

/// Implicit `A x A^T` pattern: neighbor lists are computed on demand from
/// the matrix and its transpose (inverted index).
///
/// Degrees are cached lazily. Interior mutability makes queries `&self`;
/// the type is consequently not `Sync` — RCM is single-threaded, as in the
/// paper.
pub struct ImplicitRowGraph {
    rows: CsrMatrix,
    cols: CsrMatrix,
    scratch: RefCell<Scratch>,
}

struct Scratch {
    /// Visit stamp per vertex; avoids clearing between queries.
    mark: Vec<u32>,
    stamp: u32,
    /// Lazily computed degrees (`u32::MAX` = unknown).
    degree: Vec<u32>,
    buf: Vec<u32>,
}

impl ImplicitRowGraph {
    /// Builds the implicit graph for the rows of `a`.
    pub fn new(a: &CsrMatrix) -> Self {
        let n = a.n_rows();
        ImplicitRowGraph {
            rows: a.clone(),
            cols: a.transpose(),
            scratch: RefCell::new(Scratch {
                mark: vec![0; n],
                stamp: 0,
                degree: vec![u32::MAX; n],
                buf: Vec::new(),
            }),
        }
    }

    fn collect_neighbors(&self, v: usize, out: &mut Vec<u32>) {
        let mut s = self.scratch.borrow_mut();
        s.stamp = s.stamp.wrapping_add(1);
        if s.stamp == 0 {
            // Stamp wrapped; reset marks so stale stamps cannot collide.
            s.mark.iter_mut().for_each(|m| *m = 0);
            s.stamp = 1;
        }
        let stamp = s.stamp;
        s.mark[v] = stamp; // exclude self
        for &item in self.rows.row(v) {
            for &r in self.cols.row(item as usize) {
                if s.mark[r as usize] != stamp {
                    s.mark[r as usize] = stamp;
                    out.push(r);
                }
            }
        }
        s.degree[v] = out.len() as u32;
    }
}

impl NeighborOracle for ImplicitRowGraph {
    fn n_vertices(&self) -> usize {
        self.rows.n_rows()
    }

    fn neighbors_into(&self, v: usize, out: &mut Vec<u32>) {
        self.collect_neighbors(v, out);
    }

    fn degree(&self, v: usize) -> usize {
        {
            let s = self.scratch.borrow();
            if s.degree[v] != u32::MAX {
                return s.degree[v] as usize;
            }
        }
        let mut buf = {
            let mut s = self.scratch.borrow_mut();
            std::mem::take(&mut s.buf)
        };
        buf.clear();
        self.collect_neighbors(v, &mut buf);
        let d = buf.len();
        self.scratch.borrow_mut().buf = buf;
        d
    }
}

/// The row-similarity graph of a binary matrix, explicit or implicit.
pub enum RowGraph {
    /// Materialized adjacency.
    Explicit(Graph),
    /// Inverted-index backed adjacency.
    Implicit(ImplicitRowGraph),
}

impl RowGraph {
    /// Default edge budget for [`RowGraph::build`]: beyond this many
    /// (estimated, directed) edges the implicit representation is used.
    pub const DEFAULT_EDGE_BUDGET: usize = 50_000_000;

    /// Upper bound on the number of directed edges of the `A x A^T`
    /// pattern: every column containing `k` rows contributes at most
    /// `k (k - 1)` ordered pairs.
    pub fn estimate_directed_edges(a: &CsrMatrix) -> usize {
        a.col_counts()
            .iter()
            .map(|&k| k.saturating_mul(k.saturating_sub(1)))
            .fold(0usize, usize::saturating_add)
    }

    /// Builds the row graph, choosing the explicit form when the estimated
    /// edge count fits in `edge_budget` and the implicit form otherwise.
    pub fn build(a: &CsrMatrix, edge_budget: usize) -> Self {
        Self::build_with_threads(a, edge_budget, 1)
    }

    /// Like [`RowGraph::build`], but materializing the explicit form with
    /// `threads` workers (see [`RowGraph::build_explicit_threaded`]). The
    /// implicit fallback is unaffected by the thread count — it builds no
    /// adjacency up front.
    pub fn build_with_threads(a: &CsrMatrix, edge_budget: usize, threads: usize) -> Self {
        Self::build_traced(a, edge_budget, threads, &cahd_obs::Recorder::disabled())
    }

    /// Like [`RowGraph::build_with_threads`], recording `sparse.*` build
    /// metrics into `rec`:
    ///
    /// * counters `sparse.aat_rows`, `sparse.aat_nnz`,
    ///   `sparse.aat_edges_estimate`, and (explicit form only)
    ///   `sparse.aat_edges` — all scheduling-invariant;
    /// * gauge `sparse.aat_partition_imbalance` — for the threaded
    ///   explicit build, the heaviest worker chunk's directed-edge count
    ///   over the mean chunk's (1.0 = perfectly balanced); depends on the
    ///   thread count, hence a gauge.
    pub fn build_traced(
        a: &CsrMatrix,
        edge_budget: usize,
        threads: usize,
        rec: &cahd_obs::Recorder,
    ) -> Self {
        let n = a.n_rows();
        let estimate = Self::estimate_directed_edges(a);
        rec.add("sparse.aat_rows", n as u64);
        rec.add("sparse.aat_nnz", a.nnz() as u64);
        rec.add("sparse.aat_edges_estimate", estimate as u64);
        if estimate > edge_budget {
            return RowGraph::Implicit(ImplicitRowGraph::new(a));
        }
        let g = Self::build_explicit_threaded(a, threads);
        if rec.is_enabled() {
            let degrees: Vec<usize> = (0..n).map(|v| Graph::degree(&g, v)).collect();
            rec.add(
                "sparse.aat_edges",
                degrees.iter().map(|&d| d as u64).sum::<u64>(),
            );
            // Reconstruct the worker partition of `build_explicit_threaded`
            // (contiguous chunks of ceil(n / threads) rows) and compare
            // per-chunk edge loads.
            let threads = threads.max(1).min(n.max(1));
            if threads > 1 {
                let chunk = n.div_ceil(threads);
                let loads: Vec<u64> = degrees
                    .chunks(chunk)
                    .map(|c| c.iter().map(|&d| d as u64).sum())
                    .collect();
                let max = loads.iter().copied().max().unwrap_or(0);
                let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
                let imbalance = if mean > 0.0 { max as f64 / mean } else { 1.0 };
                rec.gauge("sparse.aat_partition_imbalance", imbalance);
            }
        }
        RowGraph::Explicit(g)
    }

    /// Always materializes the adjacency.
    pub fn build_explicit(a: &CsrMatrix) -> Graph {
        Self::build_explicit_threaded(a, 1)
    }

    /// Materializes the adjacency with `threads` workers, each owning a
    /// contiguous row range (and its own marker array, so workers share
    /// nothing mutable). The output is identical for every thread count:
    /// each neighbor list depends only on its own row and the transpose.
    pub fn build_explicit_threaded(a: &CsrMatrix, threads: usize) -> Graph {
        let n = a.n_rows();
        let cols = a.transpose();
        let threads = threads.max(1).min(n.max(1));
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); n];
        if threads <= 1 {
            fill_neighbor_rows(a, &cols, 0, &mut rows);
        } else {
            let chunk = n.div_ceil(threads);
            std::thread::scope(|scope| {
                for (wi, slice) in rows.chunks_mut(chunk).enumerate() {
                    let cols = &cols;
                    scope.spawn(move || fill_neighbor_rows(a, cols, wi * chunk, slice));
                }
            });
        }
        Graph::from_adjacency_unchecked(CsrMatrix::from_rows(&rows, n))
    }

    /// Always uses the implicit form.
    pub fn build_implicit(a: &CsrMatrix) -> ImplicitRowGraph {
        ImplicitRowGraph::new(a)
    }

    /// Whether the explicit representation was chosen.
    pub fn is_explicit(&self) -> bool {
        matches!(self, RowGraph::Explicit(_))
    }
}

/// Fills `out[i]` with the distinct neighbors of row `base + i` (excluding
/// the row itself), using a stamped marker array local to the caller.
fn fill_neighbor_rows(a: &CsrMatrix, cols: &CsrMatrix, base: usize, out: &mut [Vec<u32>]) {
    let mut mark = vec![u32::MAX; a.n_rows()];
    for (i, nbrs) in out.iter_mut().enumerate() {
        let v = base + i;
        mark[v] = v as u32;
        for &item in a.row(v) {
            for &r in cols.row(item as usize) {
                if mark[r as usize] != v as u32 {
                    mark[r as usize] = v as u32;
                    nbrs.push(r);
                }
            }
        }
    }
}

impl NeighborOracle for RowGraph {
    fn n_vertices(&self) -> usize {
        match self {
            RowGraph::Explicit(g) => g.n_vertices(),
            RowGraph::Implicit(g) => g.n_vertices(),
        }
    }

    fn neighbors_into(&self, v: usize, out: &mut Vec<u32>) {
        match self {
            RowGraph::Explicit(g) => g.neighbors_into(v, out),
            RowGraph::Implicit(g) => g.neighbors_into(v, out),
        }
    }

    fn degree(&self, v: usize) -> usize {
        match self {
            RowGraph::Explicit(g) => NeighborOracle::degree(g, v),
            RowGraph::Implicit(g) => g.degree(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // rows 0 and 1 share item 0; rows 1 and 2 share item 2; row 3 isolated
        CsrMatrix::from_rows(&[vec![0, 1], vec![0, 2], vec![2], vec![3]], 4)
    }

    fn sorted_neighbors(o: &dyn NeighborOracle, v: usize) -> Vec<u32> {
        let mut out = Vec::new();
        o.neighbors_into(v, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn explicit_matches_expected() {
        let g = RowGraph::build_explicit(&sample());
        assert_eq!(sorted_neighbors(&g, 0), vec![1]);
        assert_eq!(sorted_neighbors(&g, 1), vec![0, 2]);
        assert_eq!(sorted_neighbors(&g, 2), vec![1]);
        assert_eq!(sorted_neighbors(&g, 3), Vec::<u32>::new());
    }

    #[test]
    fn implicit_matches_explicit() {
        let a = sample();
        let ex = RowGraph::build_explicit(&a);
        let im = ImplicitRowGraph::new(&a);
        for v in 0..a.n_rows() {
            assert_eq!(
                sorted_neighbors(&ex, v),
                sorted_neighbors(&im, v),
                "vertex {v}"
            );
            assert_eq!(NeighborOracle::degree(&ex, v), im.degree(v));
        }
    }

    #[test]
    fn implicit_degree_cached_and_repeatable() {
        let im = ImplicitRowGraph::new(&sample());
        assert_eq!(im.degree(1), 2);
        assert_eq!(im.degree(1), 2);
        assert_eq!(sorted_neighbors(&im, 1), vec![0, 2]);
        assert_eq!(sorted_neighbors(&im, 1), vec![0, 2]);
    }

    #[test]
    fn edge_estimate_is_upper_bound() {
        let a = sample();
        let est = RowGraph::estimate_directed_edges(&a);
        let g = RowGraph::build_explicit(&a);
        let actual: usize = (0..4).map(|v| NeighborOracle::degree(&g, v)).sum();
        assert!(est >= actual);
        assert_eq!(est, 2 + 2); // item0: 2 rows -> 2; item2: 2 rows -> 2
    }

    #[test]
    fn threaded_build_matches_sequential_for_any_thread_count() {
        let rows: Vec<Vec<u32>> = (0..23u32).map(|i| vec![i % 5, 5 + i % 3]).collect();
        let a = CsrMatrix::from_rows(&rows, 8);
        let seq = RowGraph::build_explicit(&a);
        for threads in [2usize, 3, 8, 64] {
            let par = RowGraph::build_explicit_threaded(&a, threads);
            for v in 0..a.n_rows() {
                assert_eq!(
                    sorted_neighbors(&seq, v),
                    sorted_neighbors(&par, v),
                    "vertex {v}, threads {threads}"
                );
            }
        }
        // Zero threads is clamped, and the budget gate still applies.
        let par0 = RowGraph::build_explicit_threaded(&a, 0);
        assert_eq!(sorted_neighbors(&seq, 1), sorted_neighbors(&par0, 1));
        assert!(RowGraph::build_with_threads(&a, usize::MAX, 4).is_explicit());
        assert!(!RowGraph::build_with_threads(&a, 0, 4).is_explicit());
    }

    #[test]
    fn traced_build_records_invariant_counters() {
        let rows: Vec<Vec<u32>> = (0..23u32).map(|i| vec![i % 5, 5 + i % 3]).collect();
        let a = CsrMatrix::from_rows(&rows, 8);
        let mut reports = Vec::new();
        for threads in [1usize, 4] {
            let rec = cahd_obs::Recorder::new();
            let g = RowGraph::build_traced(&a, usize::MAX, threads, &rec);
            assert!(g.is_explicit());
            reports.push(rec.snapshot());
        }
        let [seq, par] = &reports[..] else {
            unreachable!()
        };
        // Counters are identical across thread counts...
        assert_eq!(seq.counters, par.counters);
        assert_eq!(seq.counter("sparse.aat_rows"), Some(23));
        assert_eq!(seq.counter("sparse.aat_nnz"), Some(46));
        assert!(seq.counter("sparse.aat_edges").unwrap() > 0);
        // ...while the imbalance gauge only exists for the threaded build.
        assert!(seq.gauge("sparse.aat_partition_imbalance").is_none());
        assert!(par.gauge("sparse.aat_partition_imbalance").unwrap() >= 1.0);
        // The implicit fallback records sizes but no edge count.
        let rec = cahd_obs::Recorder::new();
        let g = RowGraph::build_traced(&a, 0, 4, &rec);
        assert!(!g.is_explicit());
        assert_eq!(rec.snapshot().counter("sparse.aat_edges"), None);
    }

    #[test]
    fn budget_selects_representation() {
        let a = sample();
        assert!(RowGraph::build(&a, 1_000).is_explicit());
        assert!(!RowGraph::build(&a, 1).is_explicit());
    }

    #[test]
    fn no_self_loops() {
        let a = CsrMatrix::from_rows(&[vec![0], vec![0]], 1);
        let g = RowGraph::build_explicit(&a);
        assert_eq!(sorted_neighbors(&g, 0), vec![1]);
        let im = ImplicitRowGraph::new(&a);
        assert_eq!(sorted_neighbors(&im, 0), vec![1]);
    }
}
